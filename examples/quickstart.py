#!/usr/bin/env python
"""Quickstart: compile a MiniC program with GECKO and survive power failures.

Run:  python examples/quickstart.py
"""

from repro import compile_gecko, compile_nvp, simulate_program
from repro.energy import Capacitor, PowerSystem, SquareWaveHarvester
from repro.runtime import GeckoRuntime, Machine, run_to_completion

SOURCE = """
// A tiny sensing application: checksum a rolling window of samples.
int window[32];

void main() {
    int checksum = 0;
    for (int i = 0; i < 32; i = i + 1) {
        window[i] = sense();
        checksum = (checksum * 31 + window[i]) % 65521;
    }
    out(checksum);
}
"""


def main() -> None:
    # 1. Compile with the GECKO pipeline: idempotent regions, WCET-bounded
    #    splitting, pruned + 2-colored checkpoints, recovery blocks.
    program = compile_gecko(SOURCE)
    stats = program.stats
    print("== GECKO compilation ==")
    print(f"  regions:            {stats.regions}")
    print(f"  checkpoint stores:  {stats.checkpoints_after_pruning} "
          f"(pruning removed {stats.pruning_reduction:.0%})")
    print(f"  recovery blocks:    {stats.recovery_blocks} "
          f"(avg {stats.avg_recovery_block_len:.1f} instrs)")
    print(f"  code size:          {stats.code_size} instrs "
          f"(+{stats.lookup_table_size} lookup table)")

    # 2. Run once on stable power: the golden output.
    golden = run_to_completion(program.linked).committed_out
    print(f"\n== Stable power ==\n  committed output: {golden}")

    # 3. Same binary, but on a harvested supply that dies twice a second —
    #    the intermittent-computing regime.  Output must be identical.
    power = PowerSystem(
        capacitor=Capacitor(22e-6),
        harvester=SquareWaveHarvester(on_power_w=6e-3, period_s=0.02,
                                      duty=0.4),
    )
    result = simulate_program(program, duration_s=0.25, power=power)
    outputs_ok = all(run == golden for run in result.committed_outputs)
    print("\n== Intermittent power (outages every 20 ms) ==")
    print(f"  completions: {result.completions}   reboots: {result.reboots}")
    print(f"  every committed output identical to golden: {outputs_ok}")

    # 4. Kill power at arbitrary instruction boundaries, using rollback
    #    recovery only (the mode GECKO runs in while under attack).
    machine = Machine(program.linked)
    runtime = GeckoRuntime(program.linked)
    runtime.on_reboot(machine)
    machine.write_word("__mode", 0, 1)  # force rollback recovery
    crashes = 0
    since = 0
    while not machine.halted:
        since += machine.step()
        if since >= 421 and not machine.halted:   # crash every 421 cycles
            since = 0
            crashes += 1
            machine.power_off()                   # all volatile state gone
            runtime.on_reboot(machine)            # recovery blocks rebuild it
            machine.write_word("__mode", 0, 1)
    print("\n== Rollback recovery torture ==")
    print(f"  {crashes} power failures injected")
    print(f"  output: {machine.committed_out}")
    print(f"  matches golden: {machine.committed_out == golden}")

    # 5. Compare against the unprotected baseline's cost.
    nvp = compile_nvp(SOURCE)
    nvp_cycles = run_to_completion(nvp.linked).cycles
    gecko_cycles = run_to_completion(program.linked).cycles
    print("\n== Overhead vs JIT-checkpointing baseline (NVP) ==")
    print(f"  NVP:   {nvp_cycles} cycles")
    print(f"  GECKO: {gecko_cycles} cycles "
          f"({gecko_cycles / nvp_cycles - 1:+.1%})")


if __name__ == "__main__":
    main()
