#!/usr/bin/env python
"""Compiler explorer: watch GECKO transform a program, pass by pass.

Shows, for one workload: the IR after lowering, idempotent region
formation, WCET-driven splitting, checkpoint insertion, pruning decisions
with their recovery blocks, and the final coloring — the whole §VI
pipeline, inspectable.

Run:  python examples/compiler_explorer.py [workload]
"""

import sys

from repro.compiler import (
    allocate_module,
    form_regions,
    insert_checkpoints,
    split_regions,
)
from repro.core import compile_gecko, compile_nvp
from repro.core.pruning import prune_function, readonly_symbols
from repro.core.plans import SliceExec, SlotLoad
from repro.ir.wcet import region_gap
from repro.isa import Opcode
from repro.lang import compile_source
from repro.workloads import WORKLOAD_NAMES, source


def marks(fn):
    return sum(1 for _, _, i in fn.instructions() if i.op is Opcode.MARK)


def ckpts(fn):
    return sum(1 for _, _, i in fn.instructions() if i.op is Opcode.CKPT)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dijkstra"
    if name not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {name!r}; pick from "
                         f"{', '.join(WORKLOAD_NAMES)}")
    src = source(name)

    module = compile_source(src)
    # Walk the pipeline on the meatiest function (kernels often live in a
    # helper rather than main).
    main_fn = max(
        module.functions.values(),
        key=lambda fn: sum(len(b.instrs) for b in fn.blocks.values()),
    )
    print(f"== {name}: lowered IR ==")
    print(f"  functions: {sorted(module.functions)}  "
          f"(exploring {main_fn.name!r})")
    print(f"  {main_fn.name}: {len(main_fn.block_order)} blocks, "
          f"{sum(len(b.instrs) for b in main_fn.blocks.values())} instrs")

    allocate_module(module)

    stats = form_regions(main_fn)
    print("\n== step 2: idempotent region formation ==")
    print(f"  boundaries: {stats.boundaries} "
          f"(anti-dependence cuts: {stats.antidep_cuts}, "
          f"I/O: {stats.io_boundaries}, calls: {stats.call_boundaries})")

    budget = 50_000
    inserted = split_regions(main_fn, budget)
    analysis = region_gap(main_fn)
    print("\n== steps 3-4: WCET analysis + splitting ==")
    print(f"  power-on budget: {budget} cycles")
    print(f"  boundaries inserted by splitting: {inserted}")
    print(f"  worst region gap after splitting: {analysis.worst:.0f} cycles")

    form_regions(main_fn)  # re-establish idempotence after splits
    inserted_ckpts = insert_checkpoints(main_fn, policy="gecko")
    print("\n== step 5a: checkpoint insertion (region register inputs) ==")
    print(f"  checkpoint stores inserted: {inserted_ckpts}")

    result = prune_function(main_fn, readonly_symbols(module))
    print("\n== step 5b: checkpoint pruning (§VI-C) ==")
    print(f"  pruned {result.pruned} of {result.total} "
          f"({result.reduction:.0%})")
    for info in result.checkpoints:
        state = "KEPT  " if info.kept else "pruned"
        extra = ""
        if not info.kept and info.slice_elements:
            kinds = [type(e).__name__.replace("Element", "")
                     for e in info.slice_elements]
            extra = f" <- recovery block [{', '.join(kinds)}]"
        print(f"    R{info.reg_index:<2} at {info.site}  {state}{extra}")

    # The full pipeline, for the finished artifact.
    program = compile_gecko(src)
    nvp = compile_nvp(src)
    print("\n== final binary ==")
    print(f"  regions: {program.region_count}   "
          f"checkpoints: {program.checkpoint_stores}")
    print(f"  recovery blocks: {program.stats.recovery_blocks} "
          f"(avg {program.stats.avg_recovery_block_len:.1f} instrs), "
          f"lookup table ~{program.stats.lookup_table_size} words")
    print(f"  code size: {program.stats.code_size} vs NVP "
          f"{nvp.stats.code_size} "
          f"({program.stats.total_code_size / nvp.stats.code_size - 1:+.0%} "
          f"incl. tables)")

    print("\n== restore plans (first three regions) ==")
    shown = 0
    for instr in program.linked.instrs:
        if instr.op is not Opcode.MARK or shown >= 3:
            continue
        plan = instr.meta["plan"]
        actions = []
        for reg, action in sorted(plan.restores.items()):
            if isinstance(action, SlotLoad):
                color = "dyn" if action.color is None else action.color
                actions.append(f"R{reg}<-slot[{action.reg_index}][{color}]")
            elif isinstance(action, SliceExec):
                actions.append(f"R{reg}<-block({len(action)} instrs)")
        print(f"  region {plan.region}: {', '.join(actions) or '(no inputs)'}")
        shown += 1


if __name__ == "__main__":
    main()
