#!/usr/bin/env python
"""EMI red-team lab: characterize the attack surface of the device catalog.

Reproduces the paper's §IV methodology interactively:

  * sweep a remote 35 dBm tone across frequencies for every platform and
    find each board's vulnerable band (Fig. 5 / Table I);
  * compare ADC vs comparator monitors on the FR5994 (Fig. 7);
  * map attack effectiveness over distance and transmit power (Fig. 8).

Run:  python examples/emi_attack_lab.py
"""

from repro.emi import device, device_names
from repro.eval import (
    distance_grid,
    fmt_pct,
    max_effective_distance,
    sweep_device,
)


def bar(rate: float, width: int = 24) -> str:
    return "#" * int(round((1.0 - rate) * width))


def main() -> None:
    freqs = [5, 9, 13, 17, 21, 25, 27, 29, 33, 37, 45, 80, 200]

    print("== Remote sweep, ADC monitors (35 dBm @ 5 m) ==")
    print("   deeper bar = less forward progress (DoS)")
    for name in device_names():
        sweep = sweep_device(name, "adc", freqs_mhz=freqs, duration_s=0.02)
        print(f"\n  {name}")
        for point in sweep.points:
            print(f"    {point.freq_mhz:5.0f} MHz "
                  f"R={fmt_pct(point.progress_rate):>8} "
                  f"|{bar(point.progress_rate)}")
        print(f"    -> most effective tone: "
              f"{sweep.min_rate_freq_mhz:.0f} MHz "
              f"(R = {fmt_pct(sweep.min_rate)})")

    print("\n== ADC vs comparator on the MSP430FR5994 ==")
    comp_freqs = [3, 5, 6, 8, 15, 27]
    adc = sweep_device("TI-MSP430FR5994", "adc", freqs_mhz=comp_freqs,
                       duration_s=0.02)
    comp = sweep_device("TI-MSP430FR5994", "comp", freqs_mhz=comp_freqs,
                        duration_s=0.02)
    print(f"  {'MHz':>5} {'ADC':>9} {'comparator':>11}")
    for a, c in zip(adc.points, comp.points):
        print(f"  {a.freq_mhz:5.0f} {fmt_pct(a.progress_rate):>9} "
              f"{fmt_pct(c.progress_rate):>11}")

    print("\n== Attack range (through one wall) ==")
    points = distance_grid(distances_m=[0.5, 1, 2, 3, 5, 8, 12],
                           powers_dbm=[10, 20, 30, 35], duration_s=0.02)
    for dbm in (10, 20, 30, 35):
        reach = max_effective_distance(points, dbm)
        print(f"  {dbm:2d} dBm: effective to ~{reach:.1f} m")


if __name__ == "__main__":
    main()
