#!/usr/bin/env python
"""The paper's motivating application: a batteryless continuous glucose
monitor (§III, "Applications") under an EMI attack.

The device harvests ambient energy, continuously senses glucose, smooths
the samples, and raises an alarm when readings leave the safe band.  We
run the same firmware three ways:

  1. benign harvesting, JIT checkpointing (NVP)      — works;
  2. under a 27 MHz, 35 dBm tone from 5 m, NVP       — DoS + corruption;
  3. same attack, GECKO                              — detects, survives.

Run:  python examples/glucose_monitor.py
"""

from repro import compile_gecko, compile_nvp, simulate_program
from repro.emi import AttackSchedule, EMISource, RemotePath, device
from repro.energy import Capacitor, PowerSystem, SquareWaveHarvester
from repro.runtime import SimConfig, check_outputs, run_to_completion

FIRMWARE = """
// Continuous glucose monitor: sense, smooth, classify, alarm.
int readings[16];
int alarms;

int classify(int level) {
    if (level < 300) { return 1; }     // hypo
    if (level > 700) { return 2; }     // hyper
    return 0;
}

void main() {
    alarms = 0;
    int smoothed = 500;
    for (int i = 0; i < 16; i = i + 1) {
        int raw = sense();
        smoothed = (smoothed * 3 + raw) / 4;   // EWMA pre-filter
        readings[i] = smoothed;
        int state = classify(smoothed);
        if (state != 0) {
            alarms = alarms + 1;
            out(state);            // transmit the alarm
        }
    }
    out(alarms);
    out(smoothed);
}
"""

ATTACK_FREQ = device("TI-MSP430FR5994").adc_curve.peak_frequency()


def harvesting_power():
    """A weak wearable harvester: outages every 160 ms."""
    return PowerSystem(
        capacitor=Capacitor(4.7e-6),
        harvester=SquareWaveHarvester(on_power_w=5e-3, period_s=0.16,
                                      duty=0.4),
    )


def report(title, result, golden):
    integrity = check_outputs(result, golden)
    print(f"\n== {title} ==")
    print(f"  monitoring runs completed: {result.completions}")
    print(f"  reboots: {result.reboots}   "
          f"checkpoints: {result.jit_checkpoints} "
          f"({result.jit_checkpoint_failures} failed)")
    if result.attacks_detected:
        print(f"  attacks detected by firmware: {result.attacks_detected}")
    if result.machine_fault:
        print(f"  DEVICE BRICKED: {result.machine_fault}")
    if integrity.runs:
        print(f"  corrupted runs: {integrity.corrupted}/{integrity.runs}")
    return integrity


def main() -> None:
    config = SimConfig(quantum=64, sleep_min_s=1e-3)
    attack = AttackSchedule.always(EMISource(ATTACK_FREQ, 35.0))
    path = RemotePath(distance_m=5.0, walls=1)  # from the next room

    nvp = compile_nvp(FIRMWARE)
    golden = run_to_completion(nvp.linked).committed_out
    print(f"golden output per monitoring run: {golden}")

    benign = simulate_program(nvp, duration_s=0.6, power=harvesting_power(),
                              config=config)
    report("NVP, benign harvesting", benign, golden)

    attacked = simulate_program(nvp, duration_s=0.6,
                                power=harvesting_power(), attack=attack,
                                path=path, config=config)
    nvp_integrity = report(
        f"NVP under {ATTACK_FREQ/1e6:.0f} MHz tone (next room)",
        attacked, golden,
    )

    gecko = compile_gecko(FIRMWARE, region_budget=20_000)
    golden_g = run_to_completion(gecko.linked).committed_out
    defended = simulate_program(gecko, duration_s=0.6,
                                power=harvesting_power(), attack=attack,
                                path=path, config=config)
    gecko_integrity = report("GECKO under the same attack", defended, golden_g)

    print("\n== Verdict ==")
    nvp_broken = (attacked.completions < benign.completions * 0.5
                  or not nvp_integrity.clean
                  or attacked.machine_fault is not None)
    print(f"  NVP compromised (DoS or corruption): {nvp_broken}")
    print(f"  GECKO served {defended.completions} clean runs "
          f"({gecko_integrity.corrupted} corrupted) while attacked")


if __name__ == "__main__":
    main()
