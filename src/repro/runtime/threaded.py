"""Threaded-code execution backend: precompiled basic-block closures.

The reference interpreter (:meth:`repro.runtime.machine.Machine.step`)
fetches one :class:`~repro.isa.instructions.Instr` dataclass per cycle and
re-decodes its operands every time.  This backend instead compiles each
machine-level basic block — once, lazily, per :class:`LinkedProgram` —
into a specialized Python function in which every compile-time-known
quantity is already a literal:

* register indices and immediates are inlined (no ``_value`` dispatch),
* symbol base addresses are resolved (a static ``LD``/``ST`` offset
  becomes one constant list index, bounds-checked at compile time),
* 32-bit wrapping is inlined as integer arithmetic,
* per-block cycle/instruction costs are pre-summed and flushed in
  batches.

Equivalence contract (checked byte-for-byte by ``tests/test_backends.py``
and the CI cross-check):

* **State** — registers, memory, wear counters, output buffers, sensor
  cursor, checkpoint/commit bookkeeping, ``pc``, ``cycles``,
  ``instr_count`` all match the interpreter after every
  :meth:`ThreadedBackend.run_slice`, because block code performs the
  same effects in the same order with the same wrapping quirks (e.g.
  ``ST`` stores unwrapped operand values, ``CALL`` return-slot writes
  bump no wear, comparison results are ``int`` not ``bool``).
* **Traps** — division by zero, out-of-bounds accesses and runaway
  program counters raise :class:`~repro.errors.MachineFault` with the
  interpreter's exact message, and with ``pc``/``cycles``/
  ``instr_count`` reflecting only the instructions *before* the faulting
  one (the interpreter charges cost after dispatch).
* **Hooks** — a fault hook registered via :meth:`Machine.attach`
  forces exact per-instruction stepping while it is *armed*: blocks are
  bypassed until the hook's one-shot ``fired`` flag flips, after which
  whole-block execution resumes (``before_step`` of a fired
  :class:`~repro.faultsim.injector.FaultInjector` is a no-op, so
  skipping the call is observationally identical).  A hook without a
  ``fired`` attribute, or an attached profiler (whose per-opcode cycle
  attribution is inherently per-instruction), pins the whole slice to
  the reference path.
* **Peripherals** — for programs linked with the :mod:`repro.periph`
  control block, a store to peripheral MMIO ends its block, the hub's
  boundary hook runs after every block, and a block whose cycle span
  contains a device event is demoted to exact single-stepping
  (:meth:`~repro.periph.hub.PeriphHub.event_before`) — interrupt
  delivery, handler returns, device fires, and stale-frame healing all
  land on the interpreter's exact instruction boundaries.
* **Interruptible points** — ``MARK`` region commits and ``SENSE``
  reads call out of the block (observability bus, user sensor streams),
  so generated code synchronizes ``pc``/``cycles``/``instr_count``
  exactly before them.  Power events and monitor sampling only happen
  between slices, and a slice never executes more instructions than its
  budget: oversized blocks fall back to single-stepping, so
  slice-boundary timing is identical to the interpreter's.

Block functions close over nothing picklable-hostile on the program:
compiled blocks live in a module-level cache keyed by ``id(program)``
with a weakref guard, so :class:`LinkedProgram` instances remain
picklable for campaign worker pools.

Because blocks are compiled lazily *per entry pc*, a ``pc`` that lands
mid-block — a JIT-checkpoint restore, or a
:meth:`~repro.runtime.machine.Machine.restore` from a
:class:`~repro.runtime.machine.MachineSnapshot` taken between block
boundaries (how ``repro.exhaustive`` forks injections off the golden
trace) — simply becomes the leader of a fresh suffix block; no
alignment with the static block leaders is required.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..errors import MachineFault, SimulationError
from ..isa.instructions import BLOCK_ENDERS, Instr, Opcode
from ..isa.operands import Imm, PReg, trunc_div, trunc_rem
from ..isa.program import PERIPH_CONTROL_SYMBOLS, LinkedProgram
from .machine import Machine

#: Maximum instructions per compiled block.  Bounded so that the
#: budget-respecting fallback ("block longer than the remaining slice
#: budget → single-step") degrades at most the tail of a slice, and so
#: a block is never larger than the simulator's default quantum.
MAX_BLOCK_LEN = 32

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000


class CompiledBlock:
    """One compiled straight-line block: a closure plus its static costs."""

    __slots__ = ("fn", "n", "cycles", "start")

    def __init__(self, fn, n: int, cycles: int, start: int) -> None:
        self.fn = fn
        self.n = n
        self.cycles = cycles
        self.start = start


def _wrap(expr: str) -> str:
    """Inline ``wrap32`` (signed 32-bit two's complement) as arithmetic."""
    return f"((({expr}) & {_MASK}) ^ {_SIGN}) - {_SIGN}"


def _operand(operand) -> str:
    """Expression for an operand's value: register read or literal."""
    if isinstance(operand, PReg):
        return f"regs[{operand.index}]"
    if isinstance(operand, Imm):
        return repr(operand.value)
    raise MachineFault(f"bad operand {operand!r}")


class _BlockCompiler:
    """Compiles the block starting at one pc into a Python closure."""

    def __init__(self, program: LinkedProgram, start: int,
                 leaders: frozenset) -> None:
        self.program = program
        self.start = start
        self.leaders = leaders
        self.lines: List[str] = []
        self.env: Dict[str, object] = {
            "MachineFault": MachineFault,
            "trunc_div": trunc_div,
            "trunc_rem": trunc_rem,
        }
        # Cycles/instructions accumulated since the last flush; traps and
        # out-of-block calls flush so observers see exact interpreter
        # accounting (cost lands *after* an instruction dispatches).
        self.pending_cycles = 0
        self.pending_count = 0
        self.total_cycles = 0
        self.count = 0

    # -- emission helpers ----------------------------------------------
    def emit(self, line: str, depth: int = 1) -> None:
        self.lines.append("    " * depth + line)

    def flush_stmts(self) -> List[str]:
        stmts = []
        if self.pending_cycles:
            stmts.append(f"m.cycles += {self.pending_cycles}")
        if self.pending_count:
            stmts.append(f"m.instr_count += {self.pending_count}")
        return stmts

    def flush(self, depth: int = 1) -> None:
        for stmt in self.flush_stmts():
            self.emit(stmt, depth)
        self.pending_cycles = 0
        self.pending_count = 0

    def trap(self, pc: int, message_expr: str, depth: int) -> None:
        """Emit a trap path: exact pc/cycle state, interpreter message."""
        self.emit(f"m.pc = {pc}", depth)
        for stmt in self.flush_stmts():
            self.emit(stmt, depth)
        self.emit(f"raise MachineFault({message_expr})", depth)

    def addr_expr(self, pc: int, instr: Instr) -> str:
        """Effective-address expression for LD/ST, guards included."""
        base, size = self.program.symtab[instr.sym.name]
        if isinstance(instr.off, Imm):
            offset = instr.off.value
            if 0 <= offset < size:
                return repr(base + offset)
            # Statically out of bounds: always traps, exact message.
            message = (f"pc={pc}: access {instr.sym.name}[{offset}] out "
                       f"of bounds (size {size})")
            self.emit("if True:")
            self.trap(pc, repr(message), depth=2)
            return repr(base)  # unreachable
        off = _operand(instr.off)
        self.emit(f"_o = {off}")
        self.emit(f"if _o < 0 or _o >= {size}:")
        message = (f'f"pc={pc}: access {instr.sym.name}[{{_o}}] '
                   f'out of bounds (size {size})"')
        self.trap(pc, message, depth=2)
        return f"{base} + _o"

    # -- per-opcode code generation ------------------------------------
    def compile(self) -> CompiledBlock:
        program = self.program
        instrs = program.instrs
        pc = self.start
        while True:
            instr = instrs[pc]
            self.instruction(pc, instr)
            self.pending_cycles += instr.cycles
            self.total_cycles += instr.cycles
            self.pending_count += 1
            self.count += 1
            if instr.op in BLOCK_ENDERS:
                break
            if (instr.op is Opcode.ST and instr.sym is not None
                    and instr.sym.name in PERIPH_CONTROL_SYMBOLS):
                # A store to peripheral MMIO can re-arm a device or
                # unmask an interrupt: end the block so the hub sees the
                # same boundary the interpreter does.
                self.emit(f"m.pc = {pc + 1}")
                pc += 1
                break
            pc += 1
            if (pc >= len(instrs) or pc in self.leaders
                    or self.count >= MAX_BLOCK_LEN):
                self.emit(f"m.pc = {pc}")
                break
        self.flush()
        body = "\n".join(self.lines) or "    pass"
        source = f"def __tblock(m, regs, mem, wear):\n{body}\n"
        code = compile(source, f"<threaded-block@{self.start}>", "exec")
        namespace = dict(self.env)
        exec(code, namespace)  # noqa: S102 - trusted generated code
        return CompiledBlock(namespace["__tblock"], self.count,
                             self.total_cycles, self.start)

    def instruction(self, pc: int, instr: Instr) -> None:  # noqa: C901
        op = instr.op
        emit = self.emit
        if op is Opcode.LI or op is Opcode.MOV:
            emit(f"regs[{instr.dst.index}] = {_operand(instr.a)}")
        elif op is Opcode.ADD:
            expr = f"{_operand(instr.a)} + {_operand(instr.b)}"
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.SUB:
            expr = f"{_operand(instr.a)} - {_operand(instr.b)}"
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.MUL:
            expr = f"{_operand(instr.a)} * {_operand(instr.b)}"
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.DIV or op is Opcode.REM:
            fn = "trunc_div" if op is Opcode.DIV else "trunc_rem"
            divisor = instr.b
            if isinstance(divisor, Imm) and divisor.value != 0:
                emit(f"regs[{instr.dst.index}] = "
                     f"{fn}({_operand(instr.a)}, {divisor.value})")
            else:
                emit(f"_b = {_operand(divisor)}")
                emit("if _b == 0:")
                self.trap(pc, repr(f"pc={pc}: division by zero"), depth=2)
                emit(f"regs[{instr.dst.index}] = "
                     f"{fn}({_operand(instr.a)}, _b)")
        elif op is Opcode.AND:
            expr = f"{_operand(instr.a)} & {_operand(instr.b)}"
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.OR:
            expr = f"{_operand(instr.a)} | {_operand(instr.b)}"
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.XOR:
            expr = f"{_operand(instr.a)} ^ {_operand(instr.b)}"
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.SHL:
            expr = f"{_operand(instr.a)} << ({_operand(instr.b)} & 31)"
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.SHR:
            expr = (f"(({_operand(instr.a)}) & {_MASK}) >> "
                    f"({_operand(instr.b)} & 31)")
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.SAR:
            expr = f"{_operand(instr.a)} >> ({_operand(instr.b)} & 31)"
            emit(f"regs[{instr.dst.index}] = {_wrap(expr)}")
        elif op is Opcode.NEG:
            emit(f"regs[{instr.dst.index}] = {_wrap('-' + _operand(instr.a))}")
        elif op is Opcode.NOT:
            emit(f"regs[{instr.dst.index}] = {_wrap('~' + _operand(instr.a))}")
        elif op in _COMPARES:
            # ``1 if … else 0`` keeps the result an int (not bool), like
            # the interpreter's ``int(a < b)``.
            emit(f"regs[{instr.dst.index}] = 1 if {_operand(instr.a)} "
                 f"{_COMPARES[op]} {_operand(instr.b)} else 0")
        elif op is Opcode.LD:
            address = self.addr_expr(pc, instr)
            emit(f"regs[{instr.dst.index}] = mem[{address}]")
        elif op is Opcode.ST:
            address = self.addr_expr(pc, instr)
            if address.isdigit():
                emit(f"mem[{address}] = {_operand(instr.a)}")
                emit(f"wear[{address}] += 1")
            else:
                emit(f"_a = {address}")
                # The interpreter stores the raw operand value (no wrap).
                emit(f"mem[_a] = {_operand(instr.a)}")
                emit("wear[_a] += 1")
        elif op is Opcode.BNZ:
            target = self.program.targets[pc]
            emit(f"m.pc = {target} if {_operand(instr.a)} != 0 else {pc + 1}")
        elif op is Opcode.JMP:
            emit(f"m.pc = {self.program.targets[pc]}")
        elif op is Opcode.CALL:
            slot = self.program.ret_slot[instr.callee]
            # Return-slot write: raw value, no wear bump (interpreter quirk).
            emit(f"mem[{slot}] = {pc + 1}")
            emit(f"m.pc = {self.program.targets[pc]}")
        elif op is Opcode.RET:
            owner = self.program.owner[pc]
            emit(f"m.pc = mem[{self.program.ret_slot[owner]}]")
        elif op is Opcode.HALT:
            emit(f"m.pc = {pc}")
            emit("m.halted = True")
            emit("m._commit_output()")
        elif op is Opcode.OUT:
            emit(f"m.out_buffer.append({_operand(instr.a)})")
        elif op is Opcode.SENSE:
            # The sensor stream is user code: synchronize exact state first.
            self.flush()
            emit(f"m.pc = {pc}")
            value = "m.sensor_stream(m.sensor_cursor)"
            emit(f"regs[{instr.dst.index}] = {_wrap(value)}")
            emit("m.sensor_cursor += 1")
        elif op is Opcode.CKPT:
            self.ckpt(instr)
        elif op is Opcode.MARK:
            # Region commit emits on the observability bus: synchronize
            # exact state, then reuse the interpreter's commit routine
            # verbatim (it reads ``self.pc + 1`` for the re-entry pc).
            self.flush()
            emit(f"m.pc = {pc}")
            name = f"_instr_{pc}"
            self.env[name] = instr
            emit(f"m._commit_region({name})")
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - exhaustive dispatch
            emit(f"m.pc = {pc}")
            self.flush()
            raise MachineFault(f"unimplemented opcode {op}")

    def ckpt(self, instr: Instr) -> None:
        emit = self.emit
        symtab = self.program.symtab
        ckpt0, _ = symtab["__ckpt0"]
        ckpt1, _ = symtab["__ckpt1"]
        source = f"regs[{instr.a.index}]"
        if instr.color is not None:
            address = (ckpt1 if instr.color else ckpt0) + instr.reg_index
            emit(f"mem[{address}] = {_wrap(source)}")
            emit(f"wear[{address}] += 1")
        elif instr.meta.get("per_reg"):
            rcolor, _ = symtab["__rcolor"]
            emit(f"_c = 1 - (mem[{rcolor + instr.reg_index}] & 1)")
            emit(f"m._pending_rcolor.add({instr.reg_index})")
            emit(f"_a = {ckpt1 + instr.reg_index} if _c else "
                 f"{ckpt0 + instr.reg_index}")
            emit(f"mem[_a] = {_wrap(source)}")
            emit("wear[_a] += 1")
        else:
            color, _ = symtab["__color"]
            emit(f"_c = 1 - (mem[{color}] & 1)")
            emit(f"_a = {ckpt1 + instr.reg_index} if _c else "
                 f"{ckpt0 + instr.reg_index}")
            emit(f"mem[_a] = {_wrap(source)}")
            emit("wear[_a] += 1")
        emit("m.ckpt_stores_executed += 1")


_COMPARES = {
    Opcode.SLT: "<", Opcode.SLE: "<=", Opcode.SEQ: "==",
    Opcode.SNE: "!=", Opcode.SGT: ">", Opcode.SGE: ">=",
}


class _ProgramBlocks:
    """Lazily compiled blocks of one program, indexed by start pc."""

    __slots__ = ("blocks", "leaders")

    def __init__(self, program: LinkedProgram) -> None:
        self.blocks: List[Optional[CompiledBlock]] = [None] * len(
            program.instrs)
        self.leaders = program.block_leaders()


#: Per-program block caches, keyed by ``id(program)``.  Closures are not
#: picklable, so blocks must never live on the ``LinkedProgram`` itself
#: (campaign compile caches are pickled into worker pools); the weakref
#: guards against id reuse and a finalizer drops dead entries.
_CACHES: Dict[int, Tuple["weakref.ref", _ProgramBlocks]] = {}


def _blocks_for(program: LinkedProgram) -> _ProgramBlocks:
    key = id(program)
    entry = _CACHES.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    cache = _ProgramBlocks(program)
    _CACHES[key] = (weakref.ref(program), cache)
    weakref.finalize(program, _CACHES.pop, key, None)
    return cache


def compile_block(program: LinkedProgram, start: int) -> CompiledBlock:
    """Compile (or fetch) the block starting at ``start`` — test hook."""
    cache = _blocks_for(program)
    block = cache.blocks[start]
    if block is None:
        block = _BlockCompiler(program, start, cache.leaders).compile()
        cache.blocks[start] = block
    return block


class ThreadedBackend:
    """Threaded-code backend: whole-block execution, exact semantics."""

    name = "threaded"

    _shared: Optional["ThreadedBackend"] = None

    @classmethod
    def shared(cls) -> "ThreadedBackend":
        if cls._shared is None:
            cls._shared = cls()
        return cls._shared

    def run_slice(self, machine: Machine,
                  budget: int) -> Tuple[int, Optional[Exception]]:
        cycles_start = machine.cycles
        try:
            hook = machine._fault_hook
            if machine._prof is not None or (
                    hook is not None and not hasattr(hook, "fired")):
                # Profiler attribution is per-instruction, and a hook
                # without a one-shot ``fired`` flag may act on any step:
                # the whole slice runs on the reference path.
                for _ in range(budget):
                    if machine.halted:
                        break
                    machine.step()
                return machine.cycles - cycles_start, None
            cache = _blocks_for(machine.program)
            blocks = cache.blocks
            leaders = cache.leaders
            program = machine.program
            size = len(program.instrs)
            hub = machine._periph
            executed = 0
            while executed < budget:
                if machine.halted or not machine.powered:
                    break
                if hook is not None and not hook.fired:
                    # Armed fault hook: step exactly until it fires.
                    machine.step()
                    executed += 1
                    continue
                pc = machine.pc
                if not 0 <= pc < size:
                    raise MachineFault(
                        f"program counter out of range: {pc}")
                block = blocks[pc]
                if block is None:
                    block = _BlockCompiler(program, pc, leaders).compile()
                    blocks[pc] = block
                if block.n > budget - executed:
                    # Never overshoot the slice budget: monitor/power
                    # sampling at slice boundaries must stay exact.
                    machine.step()
                    executed += 1
                    continue
                if hub is not None and hub.event_before(machine,
                                                        block.cycles):
                    # A device fire, delivery, handler return, or heal
                    # falls inside this block's cycle span: single-step
                    # so it lands at the interpreter's exact boundary.
                    machine.step()
                    executed += 1
                    continue
                block.fn(machine, machine.regs, machine.mem, machine.wear)
                executed += block.n
                if hub is not None:
                    hub.on_boundary(machine)
            return machine.cycles - cycles_start, None
        except (MachineFault, SimulationError) as exc:
            return machine.cycles - cycles_start, exc
