"""Evaluation metrics matching the paper's definitions.

* Forward-progress rate (§IV-A2): ``R = T_forward / T_guarantee`` — the
  attacked run's useful execution relative to what the same system sustains
  unattacked over the same window.
* Checkpoint-failure rate (§IV-B2): ``F = N_fail / N_checkpoints``.
* Throughput (§VII-B3): application completions per minute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .simulator import SimResult


def forward_progress_rate(attacked: SimResult, baseline: SimResult) -> float:
    """R = attacked useful cycles / baseline useful cycles (0..~1)."""
    if baseline.executed_cycles <= 0:
        return 0.0
    return min(1.0, attacked.executed_cycles / baseline.executed_cycles)


def checkpoint_failure_rate(result: SimResult) -> float:
    """F = failed checkpoints / attempted checkpoints."""
    return result.checkpoint_failure_rate


def relative_throughput(result: SimResult, baseline: SimResult) -> float:
    """Completions relative to an unattacked baseline run."""
    if baseline.completions == 0:
        return 0.0
    return result.completions / baseline.completions


@dataclass
class OutputCheck:
    """Integrity verdict of committed outputs against a golden run."""

    runs: int
    corrupted: int

    @property
    def corruption_rate(self) -> float:
        return self.corrupted / self.runs if self.runs else 0.0

    @property
    def clean(self) -> bool:
        return self.corrupted == 0


def check_outputs(result: SimResult, golden: Sequence[int]) -> OutputCheck:
    """Compare each completed run's committed output against the golden one.

    Partial prefixes are not accepted: every completion must reproduce the
    failure-free output exactly (crash-consistency invariant 1).
    """
    golden_list = list(golden)
    corrupted = sum(
        1 for outputs in result.committed_outputs if outputs != golden_list
    )
    return OutputCheck(runs=len(result.committed_outputs), corrupted=corrupted)


def progress_timeline(result: SimResult,
                      bucket_s: float = 1.0) -> List[float]:
    """Completions per bucket over the run (the Fig. 13 series)."""
    if result.duration_s <= 0:
        return []
    buckets = int(result.duration_s / bucket_s) + 1
    series = [0.0] * buckets
    for t in result.completion_times:
        index = min(buckets - 1, int(t / bucket_s))
        series[index] += 1
    return series
