"""Pluggable execution backends (the ``ExecutionBackend`` protocol).

Every consumer that advances a :class:`~repro.runtime.machine.Machine` —
the intermittent simulator's run slices, stable-power convenience runs,
fault campaigns — does so through a backend implementing one method::

    run_slice(machine, budget) -> (cycles, fault)

A slice executes *at most* ``budget`` instructions (fewer when the
machine halts, loses power, or traps), returns the cycles consumed, and
returns — never raises — any :class:`~repro.errors.MachineFault` or
:class:`~repro.errors.SimulationError` raised mid-slice.  Cycles already
consumed before a fault are still reported, matching the simulator's
partial-cycle charging: a trapped instruction's predecessors still drew
energy.

Two backends ship:

* :class:`InterpreterBackend` — the reference semantics: a thin loop
  over :meth:`Machine.step`.
* :class:`~repro.runtime.threaded.ThreadedBackend` — precompiled
  basic-block closures (threaded code); byte-identical results, ~10×
  faster.  See ``docs/execution-backends.md``.

Backends are stateless and shareable; resolve one by name with
:func:`backend_for`.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

from ..errors import MachineFault, SimulationError
from .machine import Machine

#: Names accepted by :func:`backend_for` (and every ``--backend`` flag).
BACKEND_NAMES: Tuple[str, ...] = ("interpreter", "threaded")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Protocol every execution backend implements."""

    #: Registry / display name ("interpreter", "threaded", ...).
    name: str

    def run_slice(self, machine: Machine,
                  budget: int) -> Tuple[int, Optional[Exception]]:
        """Execute at most ``budget`` instructions on ``machine``.

        Returns ``(cycles, fault)``: the cycles consumed this slice and
        the :class:`MachineFault`/:class:`SimulationError` that ended it
        early (``None`` on a clean slice).  Stops without consuming the
        whole budget when the machine halts or loses power.  Must never
        raise those simulation exceptions — callers decide whether a
        fault is fatal (stable-power runs) or survivable (the
        intermittent simulator's brownout handling).
        """
        ...


class InterpreterBackend:
    """Reference backend: per-instruction :meth:`Machine.step` dispatch.

    This is the semantics oracle — every other backend must match it
    byte-for-byte (state, cycles, traps, hook observations).
    """

    name = "interpreter"

    def run_slice(self, machine: Machine,
                  budget: int) -> Tuple[int, Optional[Exception]]:
        cycles = 0
        try:
            for _ in range(budget):
                if machine.halted:
                    break
                cycles += machine.step()
        except (MachineFault, SimulationError) as exc:
            return cycles, exc
        return cycles, None


def drain(machine: Machine, backend: ExecutionBackend,
          max_steps: int) -> Optional[Exception]:
    """Run ``machine`` through ``backend`` until it halts, traps, or
    exhausts ``max_steps``.

    The slice-loop idiom shared by stable-power consumers (golden runs,
    snapshot-forked fault injections): returns the fault that ended
    execution (``None`` on a clean drain); whether the budget sufficed is
    ``machine.halted``.  Stops early if a slice makes no progress (an
    unpowered machine), leaving the caller to inspect state.
    """
    remaining = max_steps
    while remaining > 0 and not machine.halted:
        before = machine.instr_count
        _, fault = backend.run_slice(machine, remaining)
        if fault is not None:
            return fault
        executed = machine.instr_count - before
        if executed == 0:
            break
        remaining -= executed
    return None


def backend_for(name: str) -> ExecutionBackend:
    """Resolve a backend by name ("interpreter" | "threaded").

    Backends are stateless, so repeated calls return shared instances.
    """
    if name == "interpreter":
        return _INTERPRETER
    if name == "threaded":
        from .threaded import ThreadedBackend

        return ThreadedBackend.shared()
    raise ValueError(
        f"unknown execution backend {name!r}; expected one of "
        f"{', '.join(BACKEND_NAMES)}"
    )


_INTERPRETER = InterpreterBackend()
