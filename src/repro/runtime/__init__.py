"""Runtimes and the intermittent-system simulator."""

from .backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    InterpreterBackend,
    backend_for,
    drain,
)
from .gecko_runtime import GeckoRuntime, MODE_JIT, MODE_ROLLBACK
from .machine import (
    Machine,
    MachineSnapshot,
    StepResult,
    default_sensor_stream,
    run_to_completion,
)
from .metrics import (
    OutputCheck,
    check_outputs,
    checkpoint_failure_rate,
    forward_progress_rate,
    progress_timeline,
    relative_throughput,
)
from .nvp import NVPRuntime, RuntimeStats
from .rollback import RollbackRuntime, build_region_table, execute_slice
from .simulator import (
    ATTACK_HARVEST_EFFICIENCY,
    DeviceState,
    IntermittentSimulator,
    SimConfig,
    SimResult,
)
from .threaded import ThreadedBackend
from .trace import TraceEvent, Tracer

__all__ = [
    "ATTACK_HARVEST_EFFICIENCY", "BACKEND_NAMES", "DeviceState",
    "ExecutionBackend", "GeckoRuntime",
    "IntermittentSimulator", "InterpreterBackend", "MODE_JIT",
    "MODE_ROLLBACK", "Machine", "MachineSnapshot",
    "NVPRuntime", "OutputCheck", "RollbackRuntime", "RuntimeStats",
    "SimConfig", "SimResult", "StepResult", "ThreadedBackend",
    "TraceEvent", "Tracer",
    "backend_for", "build_region_table",
    "check_outputs", "checkpoint_failure_rate", "default_sensor_stream",
    "drain", "execute_slice", "forward_progress_rate", "progress_timeline",
    "relative_throughput", "run_to_completion",
]


def runtime_for(compiled, scheme: str = None):
    """Instantiate the crash-consistency runtime matching a compiled program.

    ``nvp`` -> :class:`NVPRuntime`, ``ratchet`` -> :class:`RollbackRuntime`,
    ``gecko``/``gecko-nopruning`` -> :class:`GeckoRuntime`.
    """
    name = scheme or compiled.scheme
    if name == "nvp":
        return NVPRuntime()
    if name == "ratchet":
        return RollbackRuntime(compiled.linked)
    if name in ("gecko", "gecko-nopruning"):
        return GeckoRuntime(compiled.linked)
    raise ValueError(f"no runtime for scheme {name!r}")
