"""The target machine: a 16-register core with non-volatile main memory.

Models the MSP430FR-class MCUs of the paper: all of main memory is FRAM
(survives power loss), the register file and program counter are volatile,
and instruction costs follow :data:`repro.isa.instructions.CYCLES`.

Peripheral semantics chosen for deterministic crash-consistency testing:

* ``OUT`` values are buffered in a *volatile* output buffer and become
  externally observable (``committed_out``) only at a commit point — a
  ``MARK`` (region commit) or ``HALT``.  Because the compiler places a
  boundary immediately after every I/O operation, committed output is
  exactly-once under rollback re-execution.
* ``SENSE`` reads a deterministic sensor stream through a volatile cursor
  that commits at ``MARK`` (word ``__sensor_idx``) and is part of the JIT
  checkpoint, so replayed regions re-observe identical samples.
* ``MARK`` additionally persists the region id, the re-entry PC, a
  completion counter (GECKO's timer-based detection input) and flips the
  committed double-buffer color (Ratchet's dynamic convention).
* ``CKPT`` stores one register into ``__ckpt0``/``__ckpt1``; a static color
  comes from the instruction, the dynamic convention writes the complement
  of the committed color.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..errors import MachineFault
from ..isa.instructions import Instr, Opcode
from ..obs import REGION_COMMIT
from ..isa.operands import (
    Imm,
    MASK32,
    NUM_REGS,
    PReg,
    trunc_div,
    trunc_rem,
    wrap32,
)
from ..isa.program import LinkedProgram

#: Maximum OUT values the JIT checkpoint can persist (area ``__jit_out``).
JIT_OUT_CAPACITY = 32


def default_sensor_stream(index: int) -> int:
    """Deterministic pseudo-sensor: a cheap integer hash of the cursor."""
    value = (index * 2654435761) & MASK32
    return (value >> 16) & 0x3FF  # 10-bit ADC-style reading


def _opcode_classes() -> dict:
    """Opcode -> profiler cycle-category ("where do the cycles go?")."""
    classes = {}
    mem = {Opcode.LD, Opcode.ST}
    ctrl = {Opcode.BNZ, Opcode.JMP, Opcode.CALL, Opcode.RET, Opcode.HALT,
            Opcode.NOP}
    io = {Opcode.OUT, Opcode.SENSE}
    ckpt = {Opcode.CKPT, Opcode.MARK}
    for op in Opcode:
        if op in mem:
            classes[op] = "mem"
        elif op in ctrl:
            classes[op] = "ctrl"
        elif op in io:
            classes[op] = "io"
        elif op in ckpt:
            classes[op] = "ckpt"
        else:
            classes[op] = "alu"
    return classes


#: Cycle-attribution categories for the observability profiler.
OPCODE_CLASSES = _opcode_classes()


class StepResult(enum.Enum):
    """Outcome of executing one instruction."""

    RUNNING = "running"
    HALTED = "halted"


#: Sentinel distinguishing "leave this hook alone" from "detach it".
_UNSET = object()


@dataclass(frozen=True)
class MachineSnapshot:
    """One machine's complete architectural state, frozen at an instant.

    Captures everything :meth:`Machine.restore` needs to resume execution
    bit-for-bit — memory, registers, ``pc`` (which may point mid-block),
    counters, volatile buffers, checkpoint bookkeeping, and the FRAM wear
    vector — but *not* configuration (the program, the sensor stream) or
    attached hooks, which belong to the machine the snapshot is restored
    into.  Snapshots are immutable plain data: safe to keep in a golden
    index while thousands of forked executions restore from them
    (:mod:`repro.exhaustive`), and picklable for worker pools.
    """

    mem: Tuple[int, ...]
    regs: Tuple[int, ...]
    pc: int
    halted: bool
    powered: bool
    cycles: int
    instr_count: int
    out_buffer: Tuple[int, ...]
    committed_out: Tuple[int, ...]
    sensor_cursor: int
    ckpt_stores_executed: int
    marks_executed: int
    pending_rcolor: FrozenSet[int]
    wear: Tuple[int, ...]




def _deprecated_assign(name: str) -> None:
    warnings.warn(
        f"direct assignment to Machine.{name} is deprecated; use "
        f"Machine.attach({name}=...) so every execution backend sees the "
        f"hook",
        DeprecationWarning, stacklevel=3,
    )


class Machine:
    """Interpreter for a linked program with power-failure support."""

    def __init__(self, program: LinkedProgram,
                 sensor_stream: Optional[Callable[[int], int]] = None) -> None:
        self.program = program
        #: Non-volatile main memory (words), survives power_off().
        self.mem: List[int] = list(program.init_words)
        #: Volatile register file.
        self.regs: List[int] = [0] * NUM_REGS
        self.pc: int = program.entry_pc
        self.halted = False
        self.powered = True
        self.cycles = 0
        self.instr_count = 0
        #: Volatile output buffer and the committed (observable) output log.
        self.out_buffer: List[int] = []
        self.committed_out: List[int] = []
        #: Volatile sensor cursor.
        self.sensor_cursor = 0
        self.sensor_stream = sensor_stream or default_sensor_stream
        #: Execution counters useful for metrics.
        self.ckpt_stores_executed = 0
        self.marks_executed = 0
        #: Registers checkpointed on the per-register dynamic index since
        #: the last MARK (volatile: an uncommitted region leaves the
        #: committed index untouched).
        self._pending_rcolor = set()
        #: Per-word NVM write counts (FRAM endurance bookkeeping; the wear
        #: vector the related-work NVP wear-out attacks exploit).
        self.wear: List[int] = [0] * program.data_words
        self._addr_cache: Dict[str, int] = {
            name: base for name, (base, _) in program.symtab.items()
        }
        # Hook registration (see :meth:`attach`): the fault-injection hook
        # (:mod:`repro.faultsim`), the observability bundle
        # (:mod:`repro.obs`), and the pre-resolved profiler (None unless
        # attached *and* enabled, keeping the per-step cost to one
        # identity check).  Execution backends read the private fields
        # directly; everyone else goes through :meth:`attach`.
        self._fault_hook = None
        self._obs = None
        self._prof = None
        # Peripheral hub: auto-attached for programs linked with the
        # peripheral control block (lazy import avoids a cycle).  The hub
        # is stateless configuration — all controller/device state lives
        # in NVM words — so a fresh hub on restored memory is exact.
        self._periph = None
        if "__isr_sp" in program.symtab:
            from ..periph.hub import PeriphHub

            self._periph = PeriphHub(program)

    # ------------------------------------------------------------------
    # Hook registration.
    # ------------------------------------------------------------------
    def attach(self, fault_hook=_UNSET, obs=_UNSET, profiler=_UNSET,
               periph=_UNSET) -> None:
        """Register (or detach, by passing ``None``) execution hooks.

        This is the one supported way to wire monitors into a machine;
        every :class:`~repro.runtime.backend.ExecutionBackend` honors
        hooks registered here identically.

        Args:
            fault_hook: a :mod:`repro.faultsim`-style hook whose
                ``before_step(machine)`` runs before each instruction and
                may mutate architectural state; returning True skips the
                fetched instruction (Moro et al.'s instruction-skip
                model).  Hooks exposing a ``fired`` attribute let the
                threaded backend resume whole-block execution once the
                one-shot fault has been delivered; a hook without
                ``fired`` pins execution to exact per-instruction
                stepping forever.
            obs: an :class:`~repro.obs.Observability` bundle — region
                commits become bus events.
            profiler: the pre-resolved cycle profiler (or ``None``);
                usually ``maybe(obs.profiler)``.
            periph: a :class:`~repro.periph.hub.PeriphHub` whose
                ``on_boundary(machine)`` runs after every instruction
                (interpreter) or block (threaded backend).  Programs
                linked with peripheral support auto-attach one.
        """
        if fault_hook is not _UNSET:
            self._fault_hook = fault_hook
        if obs is not _UNSET:
            self._obs = obs
        if profiler is not _UNSET:
            self._prof = profiler
        if periph is not _UNSET:
            self._periph = periph

    @property
    def fault_hook(self):
        """The registered fault hook (see :meth:`attach`)."""
        return self._fault_hook

    @fault_hook.setter
    def fault_hook(self, hook) -> None:
        _deprecated_assign("fault_hook")
        self._fault_hook = hook

    @property
    def obs(self):
        """The registered observability bundle (see :meth:`attach`)."""
        return self._obs

    @obs.setter
    def obs(self, bundle) -> None:
        _deprecated_assign("obs")
        self._obs = bundle

    # ------------------------------------------------------------------
    # Memory helpers.
    # ------------------------------------------------------------------
    def addr(self, name: str, offset: int = 0) -> int:
        return self._addr_cache[name] + offset

    def read_word(self, name: str, offset: int = 0) -> int:
        return self.mem[self.addr(name, offset)]

    def write_word(self, name: str, offset: int, value: int) -> None:
        address = self.addr(name, offset)
        self.mem[address] = wrap32(value)
        self.wear[address] += 1

    def wear_of(self, name: str) -> int:
        """Total writes the symbol's words have absorbed."""
        base, size = self.program.symtab[name]
        return sum(self.wear[base:base + size])

    def wear_hotspots(self, top: int = 5):
        """The most-written symbols: [(name, writes), ...]."""
        totals = [
            (name, self.wear_of(name)) for name in self.program.symtab
        ]
        totals.sort(key=lambda pair: -pair[1])
        return totals[:top]

    # ------------------------------------------------------------------
    # Snapshot / restore.
    # ------------------------------------------------------------------
    def snapshot(self) -> MachineSnapshot:
        """Freeze the complete architectural state (see
        :class:`MachineSnapshot`).  O(memory size); hooks and the program
        are configuration, not state, and are not captured."""
        return MachineSnapshot(
            mem=tuple(self.mem),
            regs=tuple(self.regs),
            pc=self.pc,
            halted=self.halted,
            powered=self.powered,
            cycles=self.cycles,
            instr_count=self.instr_count,
            out_buffer=tuple(self.out_buffer),
            committed_out=tuple(self.committed_out),
            sensor_cursor=self.sensor_cursor,
            ckpt_stores_executed=self.ckpt_stores_executed,
            marks_executed=self.marks_executed,
            pending_rcolor=frozenset(self._pending_rcolor),
            wear=tuple(self.wear),
        )

    def restore(self, snapshot: MachineSnapshot) -> None:
        """Rewind to ``snapshot``, exactly.

        State containers are updated in place (lists keep their identity),
        so execution backends holding references — and compiled threaded
        blocks, which re-fetch ``regs``/``mem``/``wear`` per call — resume
        transparently.  A restored ``pc`` may fall mid-block: the threaded
        backend compiles a lazy suffix block starting there, so restoring
        is valid at *every* instruction boundary, not only block leaders.
        Restoring a snapshot from a different program is undefined.
        """
        self.mem[:] = snapshot.mem
        self.regs[:] = snapshot.regs
        self.pc = snapshot.pc
        self.halted = snapshot.halted
        self.powered = snapshot.powered
        self.cycles = snapshot.cycles
        self.instr_count = snapshot.instr_count
        self.out_buffer[:] = snapshot.out_buffer
        self.committed_out[:] = snapshot.committed_out
        self.sensor_cursor = snapshot.sensor_cursor
        self.ckpt_stores_executed = snapshot.ckpt_stores_executed
        self.marks_executed = snapshot.marks_executed
        self._pending_rcolor.clear()
        self._pending_rcolor.update(snapshot.pending_rcolor)
        self.wear[:] = snapshot.wear

    # ------------------------------------------------------------------
    # Power events.
    # ------------------------------------------------------------------
    def power_off(self) -> None:
        """Lose all volatile state (registers, PC, buffers, cursor)."""
        self.powered = False
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.out_buffer = []
        self.sensor_cursor = 0
        self._pending_rcolor.clear()

    def power_on(self) -> None:
        """Raw power-up; a runtime must then restore or cold-boot."""
        self.powered = True

    def cold_boot(self) -> None:
        """Start the program from its entry with a zeroed register file."""
        self.powered = True
        self.halted = False
        self.regs = [0] * NUM_REGS
        self.pc = self.program.entry_pc
        self.out_buffer = []
        self.sensor_cursor = self.read_word("__sensor_idx")
        self._pending_rcolor.clear()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def _value(self, operand) -> int:
        if isinstance(operand, PReg):
            return self.regs[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        raise MachineFault(f"bad operand {operand!r}")

    def _effective_addr(self, instr: Instr) -> int:
        base, size = self.program.symtab[instr.sym.name]
        offset = self._value(instr.off)
        address = base + offset
        if not 0 <= offset < size:
            raise MachineFault(
                f"pc={self.pc}: access {instr.sym.name}[{offset}] out of "
                f"bounds (size {size})"
            )
        return address

    def step(self) -> int:
        """Execute one instruction; returns the cycles it consumed.

        Returns 0 when halted or unpowered.
        Raises :class:`MachineFault` on traps.
        """
        if self.halted or not self.powered:
            return 0
        if not 0 <= self.pc < len(self.program.instrs):
            raise MachineFault(f"program counter out of range: {self.pc}")
        if self._fault_hook is not None and self._fault_hook.before_step(self):
            # Instruction skip: fetched and charged, no architectural
            # effect; control falls through to pc+1 regardless of opcode.
            instr = self.program.instrs[self.pc]
            self.pc += 1
            cost = instr.cycles
            self.cycles += cost
            self.instr_count += 1
            if self._prof is not None:
                self._prof.add_cycles(OPCODE_CLASSES[instr.op], cost)
            if self._periph is not None:
                self._periph.on_boundary(self)
            return cost
        instr = self.program.instrs[self.pc]
        target = self.program.targets[self.pc]
        op = instr.op
        regs = self.regs
        next_pc = self.pc + 1

        if op is Opcode.LI or op is Opcode.MOV:
            regs[instr.dst.index] = self._value(instr.a)
        elif op is Opcode.ADD:
            regs[instr.dst.index] = wrap32(self._value(instr.a) + self._value(instr.b))
        elif op is Opcode.SUB:
            regs[instr.dst.index] = wrap32(self._value(instr.a) - self._value(instr.b))
        elif op is Opcode.MUL:
            regs[instr.dst.index] = wrap32(self._value(instr.a) * self._value(instr.b))
        elif op is Opcode.DIV or op is Opcode.REM:
            divisor = self._value(instr.b)
            if divisor == 0:
                raise MachineFault(f"pc={self.pc}: division by zero")
            fn = trunc_div if op is Opcode.DIV else trunc_rem
            regs[instr.dst.index] = fn(self._value(instr.a), divisor)
        elif op is Opcode.AND:
            regs[instr.dst.index] = wrap32(self._value(instr.a) & self._value(instr.b))
        elif op is Opcode.OR:
            regs[instr.dst.index] = wrap32(self._value(instr.a) | self._value(instr.b))
        elif op is Opcode.XOR:
            regs[instr.dst.index] = wrap32(self._value(instr.a) ^ self._value(instr.b))
        elif op is Opcode.SHL:
            regs[instr.dst.index] = wrap32(
                self._value(instr.a) << (self._value(instr.b) & 31))
        elif op is Opcode.SHR:
            regs[instr.dst.index] = wrap32(
                (self._value(instr.a) & MASK32) >> (self._value(instr.b) & 31))
        elif op is Opcode.SAR:
            regs[instr.dst.index] = wrap32(
                self._value(instr.a) >> (self._value(instr.b) & 31))
        elif op is Opcode.NEG:
            regs[instr.dst.index] = wrap32(-self._value(instr.a))
        elif op is Opcode.NOT:
            regs[instr.dst.index] = wrap32(~self._value(instr.a))
        elif op is Opcode.SLT:
            regs[instr.dst.index] = int(self._value(instr.a) < self._value(instr.b))
        elif op is Opcode.SLE:
            regs[instr.dst.index] = int(self._value(instr.a) <= self._value(instr.b))
        elif op is Opcode.SEQ:
            regs[instr.dst.index] = int(self._value(instr.a) == self._value(instr.b))
        elif op is Opcode.SNE:
            regs[instr.dst.index] = int(self._value(instr.a) != self._value(instr.b))
        elif op is Opcode.SGT:
            regs[instr.dst.index] = int(self._value(instr.a) > self._value(instr.b))
        elif op is Opcode.SGE:
            regs[instr.dst.index] = int(self._value(instr.a) >= self._value(instr.b))
        elif op is Opcode.LD:
            regs[instr.dst.index] = self.mem[self._effective_addr(instr)]
        elif op is Opcode.ST:
            address = self._effective_addr(instr)
            self.mem[address] = self._value(instr.a)
            self.wear[address] += 1
        elif op is Opcode.BNZ:
            if self._value(instr.a) != 0:
                next_pc = target
        elif op is Opcode.JMP:
            next_pc = target
        elif op is Opcode.CALL:
            slot = self.program.ret_slot[instr.callee]
            self.mem[slot] = self.pc + 1
            next_pc = target
        elif op is Opcode.RET:
            owner = self.program.owner[self.pc]
            next_pc = self.mem[self.program.ret_slot[owner]]
        elif op is Opcode.HALT:
            self.halted = True
            self._commit_output()
            next_pc = self.pc
        elif op is Opcode.OUT:
            self.out_buffer.append(self._value(instr.a))
        elif op is Opcode.SENSE:
            regs[instr.dst.index] = wrap32(self.sensor_stream(self.sensor_cursor))
            self.sensor_cursor += 1
        elif op is Opcode.CKPT:
            color = instr.color
            if color is None:
                if instr.meta.get("per_reg"):
                    color = 1 - (self.read_word("__rcolor", instr.reg_index) & 1)
                    self._pending_rcolor.add(instr.reg_index)
                else:
                    color = 1 - (self.read_word("__color") & 1)
            self.write_word(f"__ckpt{color}", instr.reg_index,
                            regs[instr.a.index])
            self.ckpt_stores_executed += 1
        elif op is Opcode.MARK:
            self._commit_region(instr)
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - exhaustive dispatch
            raise MachineFault(f"unimplemented opcode {op}")

        self.pc = next_pc
        cost = instr.cycles
        self.cycles += cost
        self.instr_count += 1
        if self._prof is not None:
            self._prof.add_cycles(OPCODE_CLASSES[op], cost)
        if self._periph is not None:
            self._periph.on_boundary(self)
        return cost

    def _commit_region(self, instr: Instr) -> None:
        self.write_word("__region_cur", 0, instr.region or 0)
        self.write_word("__region_pc", 0, self.pc + 1)
        self.write_word("__region_done", 0, self.read_word("__region_done") + 1)
        self.write_word("__color", 0, 1 - (self.read_word("__color") & 1))
        for reg_index in self._pending_rcolor:
            # Commit per-register dynamic indices: the buffer written since
            # the previous boundary becomes the restore buffer.
            self.write_word("__rcolor", reg_index,
                            1 - (self.read_word("__rcolor", reg_index) & 1))
        self._pending_rcolor.clear()
        self.write_word("__sensor_idx", 0, self.sensor_cursor)
        self._commit_output()
        self.marks_executed += 1
        if self._obs is not None:
            self._obs.emit(REGION_COMMIT, f"region={instr.region or 0}")

    def _commit_output(self) -> None:
        self.committed_out.extend(self.out_buffer)
        self.out_buffer.clear()

    def run(self, max_steps: int = 10_000_000,
            backend: object = None) -> StepResult:
        """Run until HALT (or until ``max_steps``, raising on overrun).

        Args:
            max_steps: instruction-count budget.
            backend: an :class:`~repro.runtime.backend.ExecutionBackend`
                (or backend name) to run under; ``None`` keeps the
                classic per-instruction interpreter loop.
        """
        if backend is not None:
            from .backend import backend_for

            resolved = backend_for(backend) if isinstance(backend, str) \
                else backend
            remaining = max_steps
            while remaining > 0 and not self.halted:
                executed_before = self.instr_count
                _, fault = resolved.run_slice(self, remaining)
                if fault is not None:
                    raise fault
                executed = self.instr_count - executed_before
                if executed == 0 and not self.halted:
                    break
                remaining -= executed
            if self.halted:
                return StepResult.HALTED
            raise MachineFault(
                f"program did not halt within {max_steps} steps")
        for _ in range(max_steps):
            if self.halted:
                return StepResult.HALTED
            self.step()
        if self.halted:
            return StepResult.HALTED
        raise MachineFault(f"program did not halt within {max_steps} steps")


def run_to_completion(program: LinkedProgram,
                      sensor_stream: Optional[Callable[[int], int]] = None,
                      max_steps: int = 10_000_000,
                      backend: object = None) -> Machine:
    """Convenience: execute a program on stable power and return the machine.

    ``backend`` selects the execution backend (name or instance); ``None``
    uses the reference interpreter loop.
    """
    machine = Machine(program, sensor_stream=sensor_stream)
    machine.run(max_steps=max_steps, backend=backend)
    return machine
