"""Rollback-recovery runtime (idempotent re-execution; Ratchet-style).

On reboot the runtime re-enters the last *committed* region: the MARK
commit record (``__region_cur``/``__region_pc``) names the region, and the
region's restore plan rebuilds every input register — from its checkpoint
slot, or by interpreting a recovery block in an isolated environment (the
paper's recovery-block execution, §VI-E).

This runtime never JIT-checkpoints.  It still listens to the voltage
monitor for a graceful shutdown (as the paper's Ratchet port does), which
is exactly why Ratchet remains attackable: spoofed signals shorten the
effective on-period until long regions can no longer complete (§VII-B3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import SimulationError
from ..isa.instructions import CYCLES, Instr, Opcode
from ..isa.operands import Imm, MASK32, NUM_REGS, PReg, trunc_div, trunc_rem, wrap32
from ..isa.program import LinkedProgram
from ..core.plans import RegionPlan, SliceExec, SlotLoad
from .machine import _UNSET, Machine
from .nvp import RuntimeStats

_LD = CYCLES[Opcode.LD]

#: Fixed cycles charged for the recovery lookup-table search (§VII-C).
LOOKUP_CYCLES = 12


def build_region_table(program: LinkedProgram) -> Dict[int, RegionPlan]:
    """Collect every MARK's restore plan, keyed by region id."""
    table: Dict[int, RegionPlan] = {}
    for instr in program.instrs:
        if instr.op is Opcode.MARK:
            plan = instr.meta.get("plan")
            if isinstance(plan, RegionPlan):
                table[instr.region or 0] = plan
    return table


def execute_slice(machine: Machine, action: SliceExec) -> int:
    """Interpret a recovery block in an isolated register environment.

    Every register an instruction reads must have been written by an
    earlier slice instruction (closed-slice property); only the final
    target value is written back to the real register file.
    """
    env: Dict[int, int] = {}

    def value(operand) -> int:
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, PReg):
            if operand.index not in env:
                raise SimulationError(
                    f"recovery block reads undefined register {operand}"
                )
            return env[operand.index]
        raise SimulationError(f"bad slice operand {operand!r}")

    cycles = 0
    for instr in action.instrs:
        op = instr.op
        if op is Opcode.LD:
            base, size = machine.program.symtab[instr.sym.name]
            offset = value(instr.off)
            if not 0 <= offset < size:
                raise SimulationError(
                    f"recovery block access out of bounds: "
                    f"{instr.sym.name}[{offset}]"
                )
            env[instr.dst.index] = machine.mem[base + offset]
        elif op is Opcode.LI:
            env[instr.dst.index] = value(instr.a)
        elif op is Opcode.MOV:
            env[instr.dst.index] = value(instr.a)
        elif op is Opcode.NEG:
            env[instr.dst.index] = wrap32(-value(instr.a))
        elif op is Opcode.NOT:
            env[instr.dst.index] = wrap32(~value(instr.a))
        else:
            a, b = value(instr.a), value(instr.b)
            env[instr.dst.index] = _binop(op, a, b)
        cycles += instr.cycles
    if action.target not in env:
        raise SimulationError(
            f"recovery block never defined its target R{action.target}"
        )
    machine.regs[action.target] = wrap32(env[action.target])
    return cycles


def _binop(op: Opcode, a: int, b: int) -> int:
    if op is Opcode.ADD:
        return wrap32(a + b)
    if op is Opcode.SUB:
        return wrap32(a - b)
    if op is Opcode.MUL:
        return wrap32(a * b)
    if op is Opcode.DIV:
        if b == 0:
            raise SimulationError("recovery block division by zero")
        return trunc_div(a, b)
    if op is Opcode.REM:
        if b == 0:
            raise SimulationError("recovery block division by zero")
        return trunc_rem(a, b)
    if op is Opcode.AND:
        return wrap32(a & b)
    if op is Opcode.OR:
        return wrap32(a | b)
    if op is Opcode.XOR:
        return wrap32(a ^ b)
    if op is Opcode.SHL:
        return wrap32(a << (b & 31))
    if op is Opcode.SHR:
        return wrap32((a & MASK32) >> (b & 31))
    if op is Opcode.SAR:
        return wrap32(a >> (b & 31))
    if op is Opcode.SLT:
        return int(a < b)
    if op is Opcode.SLE:
        return int(a <= b)
    if op is Opcode.SEQ:
        return int(a == b)
    if op is Opcode.SNE:
        return int(a != b)
    if op is Opcode.SGT:
        return int(a > b)
    if op is Opcode.SGE:
        return int(a >= b)
    raise SimulationError(f"illegal recovery-block opcode {op}")


class RollbackRuntime:
    """Pure rollback recovery over compiler-inserted checkpoints."""

    name = "ratchet"

    def __init__(self, program: LinkedProgram) -> None:
        self.table = build_region_table(program)
        self.stats = RuntimeStats()
        #: Observability bundle (:mod:`repro.obs`), simulator-attached.
        self.obs = None

    def attach(self, obs=_UNSET) -> None:
        """Register runtime hooks (mirrors :meth:`Machine.attach`)."""
        if obs is not _UNSET:
            self.obs = obs

    def attach_obs(self, obs) -> None:
        self.attach(obs=obs)

    # -- simulator interface -------------------------------------------
    def monitor_enabled(self, machine: Machine) -> bool:
        """Ratchet keeps the monitor for graceful shutdown — attackable."""
        return True

    def tick(self, machine: Machine) -> None:
        """No periodic work."""

    def on_checkpoint_signal(self, machine: Machine,
                             energy_cycles: float) -> Tuple[int, bool]:
        """Low-voltage signal: sleep gracefully; MARK commits did the rest."""
        return 0, True

    def on_power_off(self, machine: Machine) -> None:
        """All recovery state was persisted at region commits."""

    def on_reboot(self, machine: Machine) -> int:
        machine.write_word("__boots", 0, machine.read_word("__boots") + 1)
        return self.rollback_restore(machine)

    # -- protocol -------------------------------------------------------
    def rollback_restore(self, machine: Machine) -> int:
        """Re-enter the last committed region with reconstructed inputs."""
        region = machine.read_word("__region_cur")
        if region == 0:
            self.stats.cold_boots += 1
            machine.cold_boot()
            return LOOKUP_CYCLES
        plan = self.table.get(region)
        if plan is None:
            raise SimulationError(f"no restore plan for region {region}")
        machine.powered = True
        machine.halted = False
        machine.regs = [0] * NUM_REGS
        cycles = LOOKUP_CYCLES
        committed_color = machine.read_word("__color") & 1
        # Slot restores first, then recovery blocks (closed slices read
        # only slots/read-only memory, so order among them is free).
        for reg_index, action in sorted(plan.restores.items()):
            if isinstance(action, SlotLoad):
                color = action.color
                if color is None:
                    if action.per_reg:
                        color = machine.read_word("__rcolor",
                                                  action.reg_index) & 1
                        cycles += _LD  # the committed-index read
                    else:
                        color = committed_color
                machine.regs[reg_index] = machine.read_word(
                    f"__ckpt{color}", action.reg_index
                )
                cycles += _LD
        for reg_index, action in sorted(plan.restores.items()):
            if isinstance(action, SliceExec):
                cycles += self._execute_slice_dynamic(machine, action,
                                                      committed_color)
        machine.pc = machine.read_word("__region_pc")
        machine.sensor_cursor = machine.read_word("__sensor_idx")
        machine.out_buffer = []
        self.stats.rollback_restores += 1
        self.stats.recovery_cycles += cycles
        if self.obs is not None:
            self.obs.emit("rollback_restore", f"region={region}")
            self.obs.metrics.count("runtime.restore_cycles", cycles,
                                   kind="rollback")
        return cycles

    def _execute_slice_dynamic(self, machine: Machine, action: SliceExec,
                               committed_color: int) -> int:
        """Execute a slice, resolving dynamic slot loads to committed buffers."""
        resolved = action
        if any(i.meta.get("dynamic_slot") or i.meta.get("per_reg_slot")
               for i in action.instrs):
            instrs = []
            for instr in action.instrs:
                if instr.meta.get("dynamic_slot"):
                    instr = instr.copy()
                    instr.sym = type(instr.sym)(f"__ckpt{committed_color}")
                elif instr.meta.get("per_reg_slot"):
                    reg_color = machine.read_word("__rcolor",
                                                  instr.off.value) & 1
                    instr = instr.copy()
                    instr.sym = type(instr.sym)(f"__ckpt{reg_color}")
                instrs.append(instr)
            resolved = SliceExec(target=action.target, instrs=instrs)
        return execute_slice(machine, resolved)
