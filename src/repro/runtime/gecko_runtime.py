"""GECKO's attack-aware hybrid runtime (paper §VI-A, §VI-F).

Normal operation is JIT checkpointing (fast, roll-forward).  Two reactive
detectors run at every reboot:

* **ACK detection** — the JIT checkpoint's final store toggles a persisted
  ACK.  An unchanged ACK across a power cycle means the last checkpoint
  never committed: a spoofed recovery signal made the system checkpoint
  inside the ``V_fail`` window (data-corruption attack).
* **Region-completion (timer) detection** — every region is WCET-bounded
  to one charge cycle, so at least one boundary commits per power-on
  period.  Zero boundary commits between consecutive reboots means the
  system is being power-cycled faster than it can progress (DoS attack).

On detection GECKO closes the attack surface: the voltage monitor is
disabled, the JIT image is distrusted, and recovery switches to idempotent
rollback using the compiler's restore plans.  At each subsequent reboot the
runtime *probes* (§VI-F "Back to Normal"): it watches the first region for
a monitor signal; a quiet first region means the attack has ended and JIT
checkpointing is re-enabled.  A wrong guess is harmless — the idempotent
program recovers correctly either way.
"""

from __future__ import annotations

from typing import Tuple

from ..isa.program import LinkedProgram
from ..obs import MODE_SWITCH, ROLLBACK_RESTORE
from .machine import _UNSET, Machine
from .nvp import NVPRuntime, RuntimeStats
from .rollback import RollbackRuntime

MODE_JIT = 0
MODE_ROLLBACK = 1


class GeckoRuntime:
    """Hybrid JIT/rollback runtime with reactive EMI-attack detection."""

    name = "gecko"

    def __init__(self, program: LinkedProgram,
                 probe_cycles: int = 40_000,
                 min_progress_regions: int = 4) -> None:
        self._jit = NVPRuntime()
        self._rollback = RollbackRuntime(program)
        self.stats = RuntimeStats()
        #: Cycles that must execute signal-free after a reboot before the
        #: JIT protocol is re-enabled ("within the initial region", §VI-F —
        #: expressed as an execution window because this compiler's I/O
        #: boundaries make single regions much shorter than a charge cycle).
        self.probe_cycles = probe_cycles
        #: Boundary commits expected per power-on period.  The paper sizes
        #: regions to a whole charge cycle and checks for "at least one
        #: completed region"; with this compiler's finer regions the
        #: equivalent test is a small minimum count — a genuine charge
        #: cycle completes orders of magnitude more.
        self.min_progress_regions = min_progress_regions
        # Per-boot volatile probe state.
        self._probing = False
        self._probe_failed = False
        self._boot_cycles = 0
        #: Observability bundle (:mod:`repro.obs`), simulator-attached.
        self.obs = None

    def attach(self, fault_hook=_UNSET, obs=_UNSET) -> None:
        """Register runtime hooks (mirrors :meth:`Machine.attach`).

        The observability bundle is shared with the inner JIT protocol so
        checkpoint begin/ok/fail events land on the same bus regardless
        of mode; the checkpoint-fault hook is forwarded there too, so
        injected image corruption lands on the same code path as NVP's.
        """
        if fault_hook is not _UNSET:
            self._jit.attach(fault_hook=fault_hook)
        if obs is not _UNSET:
            self.obs = obs
            self._jit.attach(obs=obs)

    def attach_obs(self, obs) -> None:
        self.attach(obs=obs)

    # -- mode helpers ---------------------------------------------------
    @staticmethod
    def mode(machine: Machine) -> int:
        return machine.read_word("__mode")

    def _set_mode(self, machine: Machine, mode: int) -> None:
        if machine.read_word("__mode") != mode:
            machine.write_word("__mode", 0, mode)
            self.stats.mode_switches += 1
            if self.obs is not None:
                self.obs.emit(MODE_SWITCH, "rollback->jit" if mode == MODE_JIT
                              else "jit->rollback")

    @property
    def in_probe(self) -> bool:
        return self._probing and not self._probe_failed

    @property
    def fault_hook(self):
        """Checkpoint-fault hook, forwarded to the inner JIT protocol so
        injected image corruption lands on the same code path as NVP's."""
        return self._jit.fault_hook

    @fault_hook.setter
    def fault_hook(self, hook) -> None:
        self._jit.fault_hook = hook

    # -- simulator interface -------------------------------------------
    def monitor_enabled(self, machine: Machine) -> bool:
        """The attack surface: open under JIT, or transiently while probing."""
        if self.mode(machine) == MODE_JIT:
            return True
        return self.in_probe

    def tick(self, machine: Machine) -> None:
        """Promote a quiet probe to JIT once the probe window passes."""
        if (self.mode(machine) == MODE_ROLLBACK and self.in_probe
                and machine.cycles >= self._boot_cycles + self.probe_cycles):
            self._probing = False
            self._set_mode(machine, MODE_JIT)

    def on_checkpoint_signal(self, machine: Machine,
                             energy_cycles: float) -> Tuple[int, bool]:
        if self.mode(machine) == MODE_JIT:
            cycles, completed = self._jit.jit_checkpoint(
                machine, energy_cycles
            )
            if not completed:
                self.stats.jit_checkpoint_failures += 1
            else:
                self.stats.jit_checkpoints += 1
            return cycles, True
        if self.in_probe:
            # A signal inside the first region after reboot: the attack is
            # still live.  Ignore it and keep the surface closed — if it
            # was a genuine outage, rollback recovery handles it anyway.
            self._probe_failed = True
            return 0, False
        return 0, False

    def on_power_off(self, machine: Machine) -> None:
        """Rollback state persists at MARKs; JIT state at the checkpoint."""

    def on_reboot(self, machine: Machine) -> int:
        boots = machine.read_word("__boots")
        machine.write_word("__boots", 0, boots + 1)
        mode = self.mode(machine)

        ack = machine.read_word("__jit_ack")
        done = machine.read_word("__region_done")
        ack_attack = boots > 0 and mode == MODE_JIT \
            and ack == machine.read_word("__ack_seen")
        progressed = done - machine.read_word("__done_seen")
        dos_attack = boots > 0 and progressed < self.min_progress_regions
        machine.write_word("__ack_seen", 0, ack)
        machine.write_word("__done_seen", 0, done)

        self._probing = False
        self._probe_failed = False

        if mode == MODE_JIT and (ack_attack or dos_attack):
            # Attack detected: close the surface, distrust the JIT image,
            # recover through the idempotent restore plan.
            self.stats.attacks_detected += 1
            self._set_mode(machine, MODE_ROLLBACK)
            cycles = self._rollback.rollback_restore(machine)
            self.stats.rollback_restores += 1
            self.stats.recovery_cycles += cycles
            self._note_rollback(cycles)
            self._begin_probe(machine)
            return cycles

        if mode == MODE_JIT:
            if machine.read_word("__jit_valid"):
                cycles = self._jit.jit_restore(machine)
                self.stats.jit_restores += 1
            else:
                machine.cold_boot()
                self.stats.cold_boots += 1
                cycles = 0
            return cycles

        # Rollback mode: recover, then probe for the end of the attack.
        cycles = self._rollback.rollback_restore(machine)
        self.stats.rollback_restores += 1
        self.stats.recovery_cycles += cycles
        self._note_rollback(cycles)
        self._begin_probe(machine)
        return cycles

    def _note_rollback(self, cycles: int) -> None:
        if self.obs is not None:
            self.obs.emit(ROLLBACK_RESTORE, f"cycles={cycles}")
            self.obs.metrics.count("runtime.restore_cycles", cycles,
                                   kind="rollback")

    def _begin_probe(self, machine: Machine) -> None:
        self._probing = True
        self._probe_failed = False
        self._boot_cycles = machine.cycles
