"""Execution tracing for simulated devices.

A :class:`Tracer` attached to an :class:`~repro.runtime.IntermittentSimulator`
records the capacitor-voltage timeline, device-state transitions, and
discrete events (checkpoints, reboots, detections, completions, faults).
It renders an ASCII strip chart — the closest thing this repo has to the
oscilloscope screenshots in the paper's Fig. 9/13 — and supports simple
queries for tests and examples.

Since the observability subsystem (:mod:`repro.obs`) landed, the Tracer
is a thin :class:`~repro.obs.events.EventBus` subscriber: the simulator
publishes every event and voltage sample to the bus, and a subscribed
Tracer records the oscilloscope-relevant subset.  The direct ``sample``/
``event`` recording API is unchanged, so standalone use keeps working.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """A discrete occurrence at an instant."""

    t: float
    kind: str          # "checkpoint", "checkpoint_failed", "reboot",
    detail: str = ""   # "detection", "completion", "brownout", "fault", ...


@dataclass
class Tracer:
    """Collects voltage samples and events during a simulation."""

    #: The oscilloscope-relevant event kinds a bus-subscribed Tracer
    #: records (the bus also carries finer-grained runtime events).
    EVENT_KINDS = ("checkpoint", "checkpoint_failed", "reboot", "detection",
                   "completion", "brownout", "fault")

    sample_period_s: float = 1e-3
    max_samples: int = 100_000
    samples: List[Tuple[float, float, str]] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    #: True once samples were dropped because ``max_samples`` was reached.
    #: Queries over a truncated trace see only the window's beginning.
    truncated: bool = False
    _next_sample: float = 0.0

    # -- recording ------------------------------------------------------
    def sample(self, t: float, voltage: float, state: str) -> None:
        """Record (t, V, device state), rate-limited to the sample period."""
        if t < self._next_sample:
            return
        if len(self.samples) >= self.max_samples:
            self.truncated = True
            return
        self.samples.append((t, voltage, state))
        # Snap the next deadline onto the sampling grid: advancing by
        # ``t + period`` instead would let irregular arrivals drift the
        # whole timeline off-phase over a long trace.
        if self.sample_period_s > 0:
            period = self.sample_period_s
            deadline = (math.floor(t / period) + 1) * period
            if deadline <= t:  # floating-point floor landed on t itself
                deadline += period
            self._next_sample = deadline
        else:
            self._next_sample = t

    def event(self, t: float, kind: str, detail: str = "") -> None:
        self.events.append(TraceEvent(t=t, kind=kind, detail=detail))

    # -- event-bus integration ------------------------------------------
    def subscribe(self, bus) -> "Tracer":
        """Attach to an :class:`~repro.obs.events.EventBus`: record its
        voltage samples and the oscilloscope-relevant events."""
        bus.subscribe(self._on_bus_event, kinds=self.EVENT_KINDS)
        bus.subscribe_samples(self._on_bus_sample)
        return self

    def _on_bus_event(self, event) -> None:
        self.event(event.t, event.kind, event.detail)

    def _on_bus_sample(self, point) -> None:
        self.sample(point.t, point.voltage, point.state)

    # -- queries ----------------------------------------------------------
    def events_of(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return len(self.events_of(kind))

    def voltage_at(self, t: float) -> Optional[float]:
        """The recorded voltage at (or just before) time ``t``."""
        times = [s[0] for s in self.samples]
        index = bisect.bisect_right(times, t) - 1
        if index < 0:
            return None
        return self.samples[index][1]

    def state_occupancy(self) -> Dict[str, float]:
        """Fraction of samples spent in each device state."""
        if not self.samples:
            return {}
        counts: Dict[str, int] = {}
        for _, _, state in self.samples:
            counts[state] = counts.get(state, 0) + 1
        total = len(self.samples)
        return {state: count / total for state, count in counts.items()}

    # -- rendering ----------------------------------------------------------
    def render(self, width: int = 72, v_min: float = 1.5,
               v_max: float = 3.4, thresholds: Sequence[float] = ()) -> str:
        """ASCII strip chart: voltage over time plus an event lane.

        State glyphs on the baseline: ``r`` running, ``s`` sleeping,
        ``.`` off, ``X`` failed.  Event lane: ``C`` checkpoint,
        ``!`` failed checkpoint, ``^`` reboot, ``D`` detection,
        ``o`` completion, ``v`` brownout.
        """
        if not self.samples:
            return "(no samples)"
        t0 = self.samples[0][0]
        t1 = self.samples[-1][0]
        span = max(t1 - t0, 1e-12)

        def column(t: float) -> int:
            return min(width - 1, int((t - t0) / span * width))

        height = 8
        grid = [[" "] * width for _ in range(height)]
        state_row = [" "] * width
        for t, voltage, state in self.samples:
            col = column(t)
            level = (voltage - v_min) / (v_max - v_min)
            row = height - 1 - int(max(0.0, min(0.999, level)) * height)
            grid[row][col] = "*"
            state_row[col] = {"running": "r", "sleeping": "s",
                              "off": ".", "failed": "X"}.get(state, "?")
        for threshold in thresholds:
            level = (threshold - v_min) / (v_max - v_min)
            row = height - 1 - int(max(0.0, min(0.999, level)) * height)
            for col in range(width):
                if grid[row][col] == " ":
                    grid[row][col] = "-"

        event_row = [" "] * width
        glyphs = {"checkpoint": "C", "checkpoint_failed": "!",
                  "reboot": "^", "detection": "D", "completion": "o",
                  "brownout": "v", "fault": "X"}
        priority = ["fault", "detection", "checkpoint_failed", "brownout",
                    "checkpoint", "reboot", "completion"]
        rank = {kind: i for i, kind in enumerate(priority)}
        best: Dict[int, TraceEvent] = {}
        for event in self.events:
            col = column(event.t)
            current = best.get(col)
            if current is None or rank.get(event.kind, 99) < \
                    rank.get(current.kind, 99):
                best[col] = event
        for col, event in best.items():
            event_row[col] = glyphs.get(event.kind, "*")

        lines = ["".join(row) for row in grid]
        lines.append("".join(state_row))
        lines.append("".join(event_row))
        footer = (f"t: {t0*1000:.1f}ms .. {t1*1000:.1f}ms   "
                  f"V: {v_min:.1f}..{v_max:.1f}")
        if self.truncated:
            footer += f"   [TRUNCATED at {self.max_samples} samples]"
        lines.append(footer)
        return "\n".join(lines)
