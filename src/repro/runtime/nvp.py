"""The JIT-checkpoint runtime (NVP / TI-CTPL model).

Roll-forward crash consistency exactly as §II-B describes: when the voltage
monitor signals ``V_backup``, all volatile state — register file, PC,
sensor cursor, and the pending output buffer — is written to the dedicated
NVM area; the validity flag and the ACK toggle are the *final* stores, so a
checkpoint that runs out of energy mid-way never commits.  On ``V_on`` the
saved state is restored and execution resumes at the interruption point.

The energy-bounded :meth:`NVPRuntime.jit_checkpoint` is where the paper's
attack lands: a spoofed recovery signal inside the ``V_fail`` window starts
a checkpoint without enough buffered energy, the commit stores never
execute, and the *previous* checkpoint image is left partially overwritten
— data corruption (§IV-B2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa.instructions import CYCLES, Opcode
from ..isa.operands import NUM_REGS
from ..obs import CHECKPOINT_BEGIN, JIT_RESTORE
from .machine import _UNSET, JIT_OUT_CAPACITY, Machine

_ST = CYCLES[Opcode.ST]
_LD = CYCLES[Opcode.LD]


@dataclass
class RuntimeStats:
    """Counters shared by all crash-consistency runtimes."""

    jit_checkpoints: int = 0
    jit_checkpoint_failures: int = 0
    jit_restores: int = 0
    rollback_restores: int = 0
    cold_boots: int = 0
    recovery_cycles: int = 0
    attacks_detected: int = 0
    mode_switches: int = 0


class NVPRuntime:
    """Crash consistency purely via hardware-style JIT checkpointing."""

    name = "nvp"

    def __init__(self) -> None:
        self.stats = RuntimeStats()
        #: Fault-injection hook (:mod:`repro.faultsim`).  When set, its
        #: ``on_checkpoint(writes, budget)`` may corrupt or truncate the
        #: checkpoint image as it is being written — the in-flight
        #: corruption mechanism of the paper's ``V_fail`` attack.
        self.fault_hook = None
        #: Observability bundle (:mod:`repro.obs`), simulator-attached.
        self.obs = None

    def attach(self, fault_hook=_UNSET, obs=_UNSET) -> None:
        """Register runtime hooks (mirrors :meth:`Machine.attach`)."""
        if fault_hook is not _UNSET:
            self.fault_hook = fault_hook
        if obs is not _UNSET:
            self.obs = obs

    def attach_obs(self, obs) -> None:
        self.attach(obs=obs)

    # -- simulator interface -------------------------------------------
    def monitor_enabled(self, machine: Machine) -> bool:
        """NVP's checkpoint trigger is the monitor: the attack surface."""
        return True

    def tick(self, machine: Machine) -> None:
        """No periodic work."""

    def on_checkpoint_signal(self, machine: Machine,
                             energy_cycles: float) -> Tuple[int, bool]:
        """Voltage monitor fired: checkpoint within ``energy_cycles``.

        Returns ``(cycles consumed, shutdown)`` — NVP always sleeps after
        the checkpoint attempt, completed or not.
        """
        cycles, _completed = self.jit_checkpoint(machine, energy_cycles)
        return cycles, True

    def on_power_off(self, machine: Machine) -> None:
        """Nothing to do: all persistence happened at the checkpoint."""

    def on_reboot(self, machine: Machine) -> int:
        """Restore the last committed checkpoint, or cold-boot."""
        machine.write_word("__boots", 0, machine.read_word("__boots") + 1)
        if machine.read_word("__jit_valid"):
            self.stats.jit_restores += 1
            return self.jit_restore(machine)
        self.stats.cold_boots += 1
        machine.cold_boot()
        return self.checkpoint_size_words() * _LD

    # -- protocol ------------------------------------------------------
    @staticmethod
    def checkpoint_size_words(buffer_len: int = 0) -> int:
        """Words a JIT checkpoint writes (registers, PC, cursor, buffer, commit)."""
        return NUM_REGS + 1 + 1 + 1 + min(buffer_len, JIT_OUT_CAPACITY) + 2

    def jit_checkpoint(self, machine: Machine,
                       energy_cycles: float) -> Tuple[int, bool]:
        """Write the checkpoint image, stopping when energy runs out.

        The image is written front-to-back; ``__jit_valid`` and the ACK
        toggle come last, so an interrupted checkpoint leaves the previous
        commit markers intact *but may have corrupted the image itself* —
        the vulnerability the paper exploits.
        """
        writes: List[Tuple[str, int, int]] = []
        for i in range(NUM_REGS):
            writes.append(("__jit_regs", i, machine.regs[i]))
        writes.append(("__jit_pc", 0, machine.pc))
        writes.append(("__jit_sensor", 0, machine.sensor_cursor))
        buffer = machine.out_buffer[:JIT_OUT_CAPACITY]
        overflow = machine.out_buffer[JIT_OUT_CAPACITY:]
        if overflow:
            # Oversized peripheral state is committed rather than saved
            # (roll-forward never re-executes, so this is safe).
            machine.committed_out.extend(overflow)
            del machine.out_buffer[JIT_OUT_CAPACITY:]
        writes.append(("__jit_outlen", 0, len(buffer)))
        for i, value in enumerate(buffer):
            writes.append(("__jit_out", i, value))
        # Commit markers last.
        writes.append(("__jit_valid", 0, 1))
        writes.append(("__jit_ack", 0, 1 - (machine.read_word("__jit_ack") & 1)))

        budget = int(energy_cycles // _ST)
        if self.fault_hook is not None:
            writes, budget = self.fault_hook.on_checkpoint(writes, budget)
        obs = self.obs
        if obs is not None:
            obs.emit(CHECKPOINT_BEGIN,
                     f"budget={budget} words={len(writes)}")
            obs.metrics.histogram("runtime.checkpoint_budget_words",
                                  scheme=self.name).observe(budget)
        consumed = 0
        for count, (sym, off, value) in enumerate(writes):
            if count >= budget:
                self.stats.jit_checkpoint_failures += 1
                if obs is not None:
                    obs.metrics.count("runtime.checkpoints", scheme=self.name,
                                      status="failed")
                    obs.metrics.count("runtime.checkpoint_cycles",
                                      consumed, scheme=self.name)
                return consumed, False
            machine.write_word(sym, off, value)
            consumed += _ST
        self.stats.jit_checkpoints += 1
        if obs is not None:
            obs.metrics.count("runtime.checkpoints", scheme=self.name,
                              status="ok")
            obs.metrics.count("runtime.checkpoint_cycles", consumed,
                              scheme=self.name)
        return consumed, True

    def jit_restore(self, machine: Machine) -> int:
        """Load the checkpoint image back into volatile state."""
        machine.powered = True
        machine.halted = False
        for i in range(NUM_REGS):
            machine.regs[i] = machine.read_word("__jit_regs", i)
        machine.pc = machine.read_word("__jit_pc")
        machine.sensor_cursor = machine.read_word("__jit_sensor")
        length = machine.read_word("__jit_outlen")
        machine.out_buffer = [
            machine.read_word("__jit_out", i)
            for i in range(max(0, min(length, JIT_OUT_CAPACITY)))
        ]
        words = self.checkpoint_size_words(len(machine.out_buffer))
        cycles = words * _LD
        self.stats.recovery_cycles += cycles
        if self.obs is not None:
            self.obs.emit(JIT_RESTORE, f"words={words}")
            self.obs.metrics.count("runtime.restore_cycles", cycles,
                                   kind="jit")
        return cycles
