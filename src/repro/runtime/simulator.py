"""Whole-system intermittent simulation.

Couples the pieces of Figure 1: harvested power charges a capacitor, the
MCU drains it while executing a compiled program, a voltage monitor watches
the (possibly EMI-corrupted) supply, and a crash-consistency runtime reacts
to the monitor's signals.  The simulator advances in slices: a quantum of
instructions while running, a fixed idle step while sleeping or off.

Device states:

* ``RUNNING``  — core executing; monitor (if the runtime keeps it enabled)
  can raise a CHECKPOINT signal.
* ``SLEEPING`` — post-checkpoint low-power mode (volatile state already
  lost, CTPL-style LPM4.5); the monitor's WAKE signal — genuine or spoofed
  — reboots the device.  This is where the ``V_fail`` corruption attack
  lands.
* ``OFF``      — browned out below ``V_off``; only a genuine power-on reset
  at ``V_on`` (unspoofable) reboots.  GECKO's rollback mode lives here: the
  monitor is disabled, so the attack surface is closed.
* ``FAILED``   — the machine trapped (e.g. resumed from a corrupted JIT
  image); the device is bricked, which is how the paper describes NVP
  under a successful corruption attack (§VII-B3).
"""

from __future__ import annotations

import dataclasses
import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..analog.monitor import MonitorEvent, make_monitor
from ..emi.attacker import AttackSchedule
from ..emi.devices import DeviceProfile, EVALUATION_BOARD, device
from ..emi.propagation import RemotePath
from ..errors import MachineFault, SimulationError
from ..energy.power_system import PowerSystem
from ..obs import EMI_OFF, EMI_ON, MONITOR_TRIP, Observability
from ..obs.profiler import maybe as _maybe_prof
from .backend import ExecutionBackend, backend_for
from .machine import Machine

#: Fraction of the incident attack RF the harvester rectifies back into
#: the capacitor (§VI-A: the harvester "collects the attack signals as
#: ambient energy").  The factor folds in the electrically-small antenna's
#: aperture and the rectifier's mismatch at the attack frequency — a watt
#: of airborne tone yields tens of microwatts of charging, like any
#: ambient-RF source (§III, "Weak Input Power").
ATTACK_HARVEST_EFFICIENCY = 3e-5

#: Events copied into :attr:`SimResult.events` at the end of a run — a
#: short excerpt, not the full ring, so results stay cheap to pickle.
EVENT_TAIL = 64


class DeviceState(enum.Enum):
    RUNNING = "running"
    SLEEPING = "sleeping"
    OFF = "off"
    FAILED = "failed"


@dataclass
class SimConfig:
    """Simulation knobs (time scales compressed relative to the paper)."""

    quantum: int = 128              # instructions per running slice
    idle_dt_s: float = 1e-4         # time step while sleeping/off
    #: CTPL-style minimum sleep after a checkpoint-shutdown: the device
    #: stays in LPM for at least this long before honouring a wake signal.
    sleep_min_s: float = 2e-3
    restart_on_halt: bool = True    # applications loop forever
    harvest_attack_rf: bool = True
    max_slices: int = 5_000_000     # hard safety stop
    record_timeline: bool = False
    timeline_dt_s: float = 0.25     # completion-count sampling period


@dataclass
class SimResult:
    """Everything an experiment needs from one simulated window."""

    duration_s: float = 0.0
    executed_cycles: float = 0.0
    overhead_cycles: float = 0.0      # checkpoint/restore work
    completions: int = 0
    completion_times: List[float] = field(default_factory=list)
    committed_outputs: List[List[int]] = field(default_factory=list)
    marks_committed: int = 0
    reboots: int = 0
    brownouts: int = 0
    machine_fault: Optional[str] = None
    final_state: str = "running"
    jit_checkpoints: int = 0
    jit_checkpoint_failures: int = 0
    attacks_detected: int = 0
    rollback_restores: int = 0
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: Flat observability metrics (:meth:`MetricsRegistry.as_dict`) when
    #: the run carried an :class:`~repro.obs.Observability` bundle.
    metrics: Dict[str, Union[int, float]] = field(default_factory=dict)
    #: The last events retained by the bus ring, as JSON-safe dicts — the
    #: per-run excerpt fault campaigns use to explain sdc/brick outcomes.
    events: List[dict] = field(default_factory=list)

    @property
    def forward_progress_cycles(self) -> float:
        return self.executed_cycles

    @property
    def checkpoint_failure_rate(self) -> float:
        total = self.jit_checkpoints + self.jit_checkpoint_failures
        if total == 0:
            return 0.0
        return self.jit_checkpoint_failures / total

    def throughput_per_minute(self, window_s: Optional[float] = None) -> float:
        window = window_s or self.duration_s
        if window <= 0:
            return 0.0
        return self.completions * 60.0 / window

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict of every field (timeline tuples become lists)."""
        data = dataclasses.asdict(self)
        data["timeline"] = [list(entry) for entry in self.timeline]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output (extra keys ignored)."""
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        if "timeline" in kwargs:
            kwargs["timeline"] = [tuple(entry) for entry in kwargs["timeline"]]
        if "committed_outputs" in kwargs:
            kwargs["committed_outputs"] = [list(run)
                                           for run in kwargs["committed_outputs"]]
        return cls(**kwargs)


class IntermittentSimulator:
    """Drives one device through a simulated window of (attacked) operation."""

    def __init__(self, machine: Machine, runtime, power: PowerSystem,
                 attack: Optional[AttackSchedule] = None,
                 path: Optional[object] = None,
                 device_profile: Optional[DeviceProfile] = None,
                 monitor_kind: str = "adc",
                 config: Optional[SimConfig] = None,
                 tracer=None,
                 fault_injector=None,
                 obs: Optional[Observability] = None,
                 backend: Union[str, ExecutionBackend] = "interpreter") -> None:
        self.machine = machine
        self.runtime = runtime
        #: Execution backend advancing the machine inside running slices
        #: (name or :class:`ExecutionBackend` instance).
        self.backend = backend_for(backend) if isinstance(backend, str) \
            else backend
        self.power = power
        self.attack = attack or AttackSchedule.silent()
        self.path = path or RemotePath()
        self.device = device_profile or device(EVALUATION_BOARD)
        self.monitor_kind = monitor_kind
        self.curve = self.device.curve_for(monitor_kind)
        self.monitor = make_monitor(monitor_kind, power.v_backup, power.v_on)
        self.config = config or SimConfig()
        self.state = DeviceState.OFF  # boots when the capacitor is ready
        self.t = 0.0
        self._sleep_until = 0.0
        self._init_image = list(machine.mem)
        # Observability (:mod:`repro.obs`): one bundle shared by every
        # layer.  A bare Tracer still works — it gets an implicit bus it
        # subscribes to, preserving the pre-obs simulator contract.
        if obs is None and tracer is not None:
            obs = Observability.for_tracing()
        self.obs = obs
        self.tracer = tracer
        self._emi_on = False
        self._prof = None
        if obs is not None:
            obs.bind_clock(lambda: self.t)
            if tracer is not None:
                tracer.subscribe(obs.bus)
            self._prof = _maybe_prof(obs.profiler)
            machine.attach(obs=obs, profiler=self._prof)
            attach = getattr(runtime, "attach_obs", None)
            if attach is not None:
                attach(obs)
            power.attach_obs(obs)
        #: Fault injector (:mod:`repro.faultsim`): wires itself into the
        #: machine/runtime hook points and filters monitor events.
        self.fault = fault_injector
        if fault_injector is not None:
            fault_injector.attach(self)

    # ------------------------------------------------------------------
    def _attack_at(self, t: float) -> Tuple[float, float, float]:
        """(induced amplitude V, frequency Hz, incident power W) at time t."""
        source = self.attack.source_at(t)
        if source is None:
            return 0.0, 0.0, 0.0
        received = self.path.received_power_w(source)
        amplitude = self.curve.induced_amplitude(source.frequency_hz, received)
        if getattr(self.path, "point", None) is not None:
            amplitude *= self.device.dpi_boost  # wired injection
        return amplitude, source.frequency_hz, received

    def _charge(self, dt: float, incident_w: float) -> None:
        extra = 0.0
        if self.config.harvest_attack_rf and incident_w > 0:
            extra = incident_w * ATTACK_HARVEST_EFFICIENCY
        self.power.harvest(self.t, dt, extra_power_w=extra)

    def _trace_event(self, kind: str, detail: str = "") -> None:
        if self.obs is not None:
            self.obs.emit(kind, detail, t=self.t)

    def _note_attack_window(self) -> None:
        """Emit EMI burst edges (attack tone became active/quiet)."""
        active = self.attack.source_at(self.t) is not None
        if active != self._emi_on:
            self._emi_on = active
            self.obs.emit(EMI_ON if active else EMI_OFF, t=self.t)

    def _consume_runtime_cycles(self, cycles: float,
                                result: SimResult) -> None:
        if cycles > 0:
            self.power.consume_cycles(cycles)
            self.t += self.power.mcu.cycles_to_seconds(cycles)
            result.overhead_cycles += cycles

    # ------------------------------------------------------------------
    def run(self, duration_s: float) -> SimResult:
        """Simulate ``duration_s`` seconds of wall-clock time."""
        result = SimResult()
        start = self.t
        end = self.t + duration_s
        next_timeline = self.t
        slices = 0
        while self.t < end:
            slices += 1
            if slices > self.config.max_slices:
                raise SimulationError("simulation exceeded max_slices")
            if self.config.record_timeline and self.t >= next_timeline:
                result.timeline.append((self.t - start, result.completions))
                next_timeline += self.config.timeline_dt_s
            if self.obs is not None:
                self.obs.sample(self.power.voltage, self.state.value,
                                t=self.t)
                self._note_attack_window()
            if self.state is DeviceState.RUNNING:
                self._slice_running(result)
            elif self.state is DeviceState.FAILED:
                self._slice_idle(result, sleeping=False)
            else:
                self._slice_idle(result,
                                 sleeping=self.state is DeviceState.SLEEPING)
        result.duration_s = self.t - start
        result.final_state = self.state.value
        stats = self.runtime.stats
        result.jit_checkpoints = stats.jit_checkpoints
        result.jit_checkpoint_failures = stats.jit_checkpoint_failures
        result.attacks_detected = stats.attacks_detected
        result.rollback_restores = stats.rollback_restores
        result.marks_committed = self.machine.marks_executed
        if self.obs is not None and self.obs.metrics.enabled:
            # Cumulative snapshots, like the runtime stats above: batch
            # callers re-running the simulator see the whole history.
            result.metrics = self.obs.flat_metrics()
            result.events = self.obs.event_tail(EVENT_TAIL)
        return result

    # ------------------------------------------------------------------
    def _slice_running(self, result: SimResult) -> None:
        machine = self.machine
        prof = self._prof
        t0 = time.perf_counter() if prof is not None else 0.0
        cycles, fault = self.backend.run_slice(machine, self.config.quantum)
        if prof is not None:
            prof.add_wall("machine.step", time.perf_counter() - t0)
        self._record_cycles(cycles, result)
        if fault is not None:
            result.machine_fault = str(fault)
            self.state = DeviceState.FAILED
            return
        self.runtime.tick(machine)

        if machine.halted:
            self._handle_completion(result)
            return
        if self.power.voltage < self.power.v_off:
            self.runtime.on_power_off(machine)
            machine.power_off()
            self.state = DeviceState.OFF
            result.brownouts += 1
            self._trace_event("brownout")
            return
        self._sample_monitor(result, powered=True)

    def _record_cycles(self, cycles: int, result: SimResult) -> None:
        if cycles:
            prof = self._prof
            t0 = time.perf_counter() if prof is not None else 0.0
            self.power.consume_cycles(cycles)
            dt = self.power.mcu.cycles_to_seconds(cycles)
            # The monitor only samples at slice boundaries; mid-slice the
            # attack matters solely through the harvested incident power.
            incident = self._attack_at(self.t)[2]
            self._charge(dt, incident)
            if prof is not None:
                prof.add_wall("energy", time.perf_counter() - t0)
            self.t += dt
            result.executed_cycles += cycles

    def _slice_idle(self, result: SimResult, sleeping: bool) -> None:
        dt = self.config.idle_dt_s
        amplitude, freq, incident = self._attack_at(self.t)
        self._charge(dt, incident)
        if sleeping:
            self.power.consume_sleep(dt)
        self.t += dt
        if self.state is DeviceState.FAILED:
            return
        if sleeping and self.power.voltage < self.power.v_off:
            self.state = DeviceState.OFF
            return
        if sleeping:
            self._sample_monitor(result, powered=False)
        else:
            # OFF: only the genuine power-on reset wakes the device.
            if self.power.voltage >= self.power.v_on:
                self._reboot(result)

    def _sample_monitor(self, result: SimResult, powered: bool) -> None:
        if not self.runtime.monitor_enabled(self.machine):
            return
        amplitude, freq, _ = self._attack_at(self.t)
        prof = self._prof
        t0 = time.perf_counter() if prof is not None else 0.0
        event = self.monitor.sample(self.power.voltage, amplitude, freq,
                                    self.t, powered)
        if prof is not None:
            prof.add_wall("monitor", time.perf_counter() - t0)
        if self.fault is not None:
            # Injected monitor faults obey the same surface the EMI attack
            # does: a disabled monitor never reaches this point.
            event = self.fault.filter_monitor_event(event, powered, self.t)
        if event is not MonitorEvent.NONE and self.obs is not None:
            self.obs.emit(MONITOR_TRIP, event.name.lower(), t=self.t)
        if powered and event is MonitorEvent.CHECKPOINT:
            budget = self.power.checkpoint_budget_cycles()
            failures_before = self.runtime.stats.jit_checkpoint_failures
            try:
                cycles, shutdown = self.runtime.on_checkpoint_signal(
                    self.machine, budget
                )
            except (MachineFault, SimulationError) as fault:
                result.machine_fault = str(fault)
                self.state = DeviceState.FAILED
                self._trace_event("fault", str(fault))
                return
            self._consume_runtime_cycles(cycles, result)
            failed = self.runtime.stats.jit_checkpoint_failures \
                > failures_before
            self._trace_event(
                "checkpoint_failed" if failed else "checkpoint"
            )
            if shutdown:
                self.machine.power_off()
                self.state = DeviceState.SLEEPING
                self._sleep_until = self.t + self.config.sleep_min_s
        elif not powered and event is MonitorEvent.WAKE:
            if self.t >= self._sleep_until:
                self._reboot(result)

    def _reboot(self, result: SimResult) -> None:
        detections_before = self.runtime.stats.attacks_detected
        try:
            cycles = self.runtime.on_reboot(self.machine)
        except (MachineFault, SimulationError) as fault:
            result.machine_fault = str(fault)
            self.state = DeviceState.FAILED
            self._trace_event("fault", str(fault))
            return
        self._consume_runtime_cycles(cycles, result)
        self.state = DeviceState.RUNNING
        result.reboots += 1
        self._trace_event("reboot")
        if self.runtime.stats.attacks_detected > detections_before:
            self._trace_event("detection")
        # A continuous monitor (comparator) latches the first excursion
        # after wake-up, before the core executes a single quantum; a
        # spoofed wake into a genuinely low supply then re-triggers the
        # checkpoint protocol immediately — the V_fail path (§IV-B2).
        if getattr(self.monitor, "continuous", False):
            self._sample_monitor(result, powered=True)

    # ------------------------------------------------------------------
    def _handle_completion(self, result: SimResult) -> None:
        machine = self.machine
        result.completions += 1
        result.completion_times.append(self.t)
        self._trace_event("completion")
        result.committed_outputs.append(list(machine.committed_out))
        machine.committed_out.clear()
        if not self.config.restart_on_halt:
            self.state = DeviceState.OFF
            return
        self._reset_program_state()

    def _reset_program_state(self) -> None:
        """Restart the application: fresh program data, continuous device state.

        Device-level words (mode, detection bookkeeping) persist across
        application iterations; program data, region commits and the JIT
        image reset with the new run.
        """
        machine = self.machine
        preserve = {}
        # __region_done is the monotone progress counter GECKO's DoS
        # detector compares across reboots: wiping it with the application
        # image would erase the evidence of progress and fake an attack.
        for name in ("__mode", "__boots", "__ack_seen", "__done_seen",
                     "__region_done"):
            preserve[name] = machine.read_word(name)
        # The JIT checkpoint area (__jit_valid, __jit_ack, __jit_regs, ...)
        # is device NVM, not application data: on hardware it survives the
        # app's outer loop untouched, and a stale-but-valid image there is
        # exactly what a later interrupted checkpoint partially overwrites.
        spans = {}
        for name, (base, size) in machine.program.symtab.items():
            if name.startswith("__jit_"):
                spans[base] = machine.mem[base:base + size]
        machine.mem[:] = self._init_image
        for name, value in preserve.items():
            machine.write_word(name, 0, value)
        for base, words in spans.items():
            machine.mem[base:base + len(words)] = words
        machine.halted = False
        machine.regs = [0] * len(machine.regs)
        machine.pc = machine.program.entry_pc
        machine.out_buffer = []
        machine.sensor_cursor = 0
