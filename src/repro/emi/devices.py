"""Catalog of the nine commodity platforms from Table I.

Each profile carries the monitor types the board exposes and calibrated
susceptibility curves.  ``paper`` records the measured values from Table I
(minimum forward-progress rate, its frequency, and the peak checkpoint-
failure rate) so benchmarks can print paper-vs-simulated side by side.

Calibration logic: ADC monitors resonate near 27 MHz on the MSP430 family
(17-18 MHz on the STM32); a deep primary resonance produces the DoS dip
(R_min of a few percent) and a moderate secondary resonance produces
partial spoofing — wake-ups inside the V_fail window — which is what
drives the checkpoint-failure rate peak (ADC-F_max).  Comparator monitors
couple much harder (no ADC sample averaging), hence the 1e-2 % R_min rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .susceptibility import SusceptibilityCurve

MHZ = 1e6


@dataclass(frozen=True)
class PaperReference:
    """Measured Table I values (percent / Hz); None where the paper has N/A."""

    adc_rmin_pct: float
    adc_rmin_freq: float
    adc_fmax_pct: float
    adc_fmax_freq: float
    comp_rmin_pct: Optional[float] = None
    comp_rmin_freq: Optional[float] = None


@dataclass(frozen=True)
class DeviceProfile:
    """One commodity platform: monitors plus coupling characteristics."""

    name: str
    monitors: Tuple[str, ...]
    adc_curve: SusceptibilityCurve
    comp_curve: Optional[SusceptibilityCurve] = None
    #: Amplitude boost when signals are wired in via DPI (no path loss,
    #: coupling network drives the trace directly).
    dpi_boost: float = 4.0
    paper: Optional[PaperReference] = None

    def curve_for(self, monitor: str) -> SusceptibilityCurve:
        if monitor == "adc":
            return self.adc_curve
        if monitor == "comp" and self.comp_curve is not None:
            return self.comp_curve
        raise KeyError(f"{self.name} has no {monitor!r} monitor")


def _adc(primary_mhz: float, primary_gain: float,
         secondary_mhz: float, secondary_gain: float) -> SusceptibilityCurve:
    return SusceptibilityCurve(resonances=(
        (primary_mhz * MHZ, primary_gain, 2.5 * MHZ),
        (secondary_mhz * MHZ, secondary_gain, 1.5 * MHZ),
    ))


def _comp(freqs_mhz: Tuple[float, ...], gain: float) -> SusceptibilityCurve:
    return SusceptibilityCurve(resonances=tuple(
        (f * MHZ, gain, 1.0 * MHZ) for f in freqs_mhz
    ))


#: The nine platforms of Table I.
DEVICES: Dict[str, DeviceProfile] = {}


def _register(profile: DeviceProfile) -> None:
    DEVICES[profile.name] = profile


_register(DeviceProfile(
    name="TI-MSP430FR2311", monitors=("adc",),
    adc_curve=_adc(27, 2.4, 35, 1.0),
    paper=PaperReference(3.1, 27 * MHZ, 41.0, 27 * MHZ),
))
_register(DeviceProfile(
    name="TI-MSP430FR2433", monitors=("adc",),
    adc_curve=_adc(27, 2.2, 35, 1.0),
    paper=PaperReference(4.2, 27 * MHZ, 41.0, 27 * MHZ),
))
_register(DeviceProfile(
    name="TI-MSP430FR4133", monitors=("adc",),
    adc_curve=_adc(27, 2.3, 28, 1.1),
    paper=PaperReference(3.6, 27 * MHZ, 42.0, 28 * MHZ),
))
_register(DeviceProfile(
    name="TI-MSP430F5529", monitors=("adc",),
    adc_curve=_adc(27, 2.25, 16, 1.0),
    paper=PaperReference(4.0, 27 * MHZ, 41.0, 16 * MHZ),
))
_register(DeviceProfile(
    name="TI-MSP430FR5739", monitors=("adc",),
    adc_curve=_adc(27, 3.0, 40, 0.6),
    paper=PaperReference(1.8, 27 * MHZ, 11.0, 27 * MHZ),
))
_register(DeviceProfile(
    name="TI-MSP430FR5994", monitors=("adc", "comp"),
    adc_curve=_adc(27, 2.25, 33, 1.0),
    comp_curve=_comp((5, 6), 5.5),
    paper=PaperReference(4.0, 27 * MHZ, 28.0, 27 * MHZ,
                         comp_rmin_pct=1.0e-2, comp_rmin_freq=5 * MHZ),
))
_register(DeviceProfile(
    name="TI-MSP430FR6989", monitors=("adc", "comp"),
    adc_curve=_adc(27, 2.3, 34, 1.0),
    comp_curve=_comp((27,), 5.0),
    paper=PaperReference(3.6, 27 * MHZ, 35.0, 27 * MHZ,
                         comp_rmin_pct=1.2e-2, comp_rmin_freq=27 * MHZ),
))
_register(DeviceProfile(
    name="TI-MSP432P", monitors=("adc", "comp"),
    adc_curve=_adc(27, 2.35, 36, 1.0),
    comp_curve=_comp((22,), 3.0),
    paper=PaperReference(3.3, 27 * MHZ, 40.0, 27 * MHZ),
))
_register(DeviceProfile(
    name="STM32L552ZE", monitors=("adc", "comp"),
    adc_curve=_adc(17, 2.1, 18, 1.2),
    comp_curve=_comp((17,), 2.5),
    paper=PaperReference(4.8, 17 * MHZ, 24.0, 18 * MHZ),
))


def device(name: str) -> DeviceProfile:
    """Look up a device profile by its Table I name."""
    return DEVICES[name]


def device_names() -> List[str]:
    """All nine platform names, in Table I order."""
    return list(DEVICES)


#: The paper's main evaluation board (smallest vulnerable range, §VII-A).
EVALUATION_BOARD = "TI-MSP430FR5994"
