"""EMI propagation: how much attack power reaches the victim circuit.

Two injection models, matching the paper's two experiment classes:

* :class:`RemotePath` — over-the-air (§IV-B): free-space path loss at the
  attack frequency, optional wall attenuation (Fig. 6b attacks through a
  closed door), and the attacker's antenna gain.
* :class:`DPIPath` — direct power injection (§IV-A): the signal is wired
  into injection point P1 (the power line) or P2 (the monitor input line)
  through a coupling network, so the delivered fraction is flat in distance
  but depends on the injection point — P2 couples more directly into the
  ADC/comparator, which is exactly what Fig. 4 shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.harvester import friis_received_power
from .signal import EMISource

#: Typical interior wall attenuation for HF/VHF, in dB.
WALL_ATTENUATION_DB = 6.0


@dataclass(frozen=True)
class RemotePath:
    """Over-the-air coupling from attacker antenna to victim circuit."""

    distance_m: float = 5.0
    walls: int = 0
    antenna_gain: float = 10.0  # directional log-periodic (the paper's LPDA)

    def received_power_w(self, source: EMISource) -> float:
        power = friis_received_power(
            source.power_w, source.frequency_hz, self.distance_m,
            tx_gain=self.antenna_gain,
        )
        if self.walls:
            power *= 10.0 ** (-(WALL_ATTENUATION_DB * self.walls) / 10.0)
        return power


@dataclass(frozen=True)
class DPIPath:
    """Wired direct power injection at P1 (power line) or P2 (monitor line)."""

    point: str = "P2"
    #: Fraction of generator power delivered through the coupling network.
    coupling = {"P1": 0.08, "P2": 0.35}

    def __post_init__(self) -> None:
        if self.point not in self.coupling:
            raise ValueError(f"unknown injection point {self.point!r}")

    def received_power_w(self, source: EMISource) -> float:
        return source.power_w * self.coupling[self.point]
