"""Attack scheduling: when the adversary transmits, at what tone and power.

Fig. 9 (real-time frequency hopping to modulate the victim's progress) and
Fig. 13 (attacks switched on at chosen minutes) both reduce to a timeline
of transmission windows; :class:`AttackSchedule` models that.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .signal import EMISource


@dataclass(frozen=True)
class AttackWindow:
    """One transmission interval of a single tone."""

    start_s: float
    end_s: float
    source: EMISource

    def __post_init__(self) -> None:
        # An inverted, zero-length, or NaN interval would silently build a
        # window that never fires; ``not (a < b)`` also catches NaNs, whose
        # every comparison is false.
        if not (self.start_s < self.end_s):
            raise ValueError(
                f"attack window needs start_s < end_s, got "
                f"[{self.start_s!r}, {self.end_s!r})")

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s

    def to_dict(self) -> dict:
        return {"start_s": self.start_s,
                # JSON has no Infinity; an open-ended window travels as null.
                "end_s": None if self.end_s == float("inf") else self.end_s,
                "source": self.source.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "AttackWindow":
        end = data["end_s"]
        return cls(start_s=data["start_s"],
                   end_s=float("inf") if end is None else end,
                   source=EMISource.from_dict(data["source"]))


@dataclass
class AttackSchedule:
    """A timeline of attack windows, kept sorted by start time.

    :meth:`source_at` is on the simulator's per-slice hot path, so lookups
    bisect the sorted starts instead of scanning: O(log n) for the
    non-overlapping schedules the experiments build (if windows do overlap,
    the latest-starting active window wins).  Mutate via :meth:`add` — it
    maintains the sort and the lookup index.
    """

    windows: List[AttackWindow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.windows.sort(key=lambda window: window.start_s)
        self._reindex()

    def _reindex(self) -> None:
        self._starts = [window.start_s for window in self.windows]
        # _reach[i] = max end over windows[0..i]: windows at or before i
        # can only cover t when _reach[i] > t, which bounds the leftward
        # scan to a single probe on non-overlapping schedules.
        self._reach = []
        reach = float("-inf")
        for window in self.windows:
            reach = max(reach, window.end_s)
            self._reach.append(reach)

    @classmethod
    def always(cls, source: EMISource,
               until_s: float = float("inf")) -> "AttackSchedule":
        """A continuous attack from t=0 (the sweep experiments)."""
        return cls([AttackWindow(0.0, until_s, source)])

    @classmethod
    def silent(cls) -> "AttackSchedule":
        """No attack at all (baseline runs)."""
        return cls([])

    @classmethod
    def from_intervals(cls, intervals: Sequence[Tuple[float, float]],
                       source: EMISource) -> "AttackSchedule":
        """Same tone transmitted over several (start, end) intervals.

        Raises :class:`ValueError` on inverted, zero-length, or NaN
        intervals (see :class:`AttackWindow`).
        """
        return cls([AttackWindow(a, b, source) for a, b in intervals])

    def add(self, start_s: float, end_s: float, source: EMISource) -> None:
        """Insert one window; raises :class:`ValueError` unless
        ``start_s < end_s`` (NaNs included)."""
        window = AttackWindow(start_s, end_s, source)
        index = bisect.bisect_right(self._starts, start_s)
        self.windows.insert(index, window)
        self._reindex()

    def source_at(self, t: float) -> Optional[EMISource]:
        """The active tone at time ``t`` (or None when the air is quiet)."""
        index = bisect.bisect_right(self._starts, t) - 1
        while index >= 0 and self._reach[index] > t:
            if self.windows[index].active_at(t):
                return self.windows[index].source
            index -= 1
        return None

    @property
    def ever_active(self) -> bool:
        return bool(self.windows)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict, round-trippable via :meth:`from_dict` — the
        same contract :class:`~repro.runtime.SimResult` offers, so a
        discovered attack can be saved and replayed by any harness."""
        return {"windows": [window.to_dict() for window in self.windows]}

    @classmethod
    def from_dict(cls, data: dict) -> "AttackSchedule":
        return cls([AttackWindow.from_dict(w) for w in data["windows"]])
