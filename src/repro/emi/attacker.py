"""Attack scheduling: when the adversary transmits, at what tone and power.

Fig. 9 (real-time frequency hopping to modulate the victim's progress) and
Fig. 13 (attacks switched on at chosen minutes) both reduce to a timeline
of transmission windows; :class:`AttackSchedule` models that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .signal import EMISource


@dataclass(frozen=True)
class AttackWindow:
    """One transmission interval of a single tone."""

    start_s: float
    end_s: float
    source: EMISource

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass
class AttackSchedule:
    """A timeline of attack windows (non-overlapping; first match wins)."""

    windows: List[AttackWindow] = field(default_factory=list)

    @classmethod
    def always(cls, source: EMISource,
               until_s: float = float("inf")) -> "AttackSchedule":
        """A continuous attack from t=0 (the sweep experiments)."""
        return cls([AttackWindow(0.0, until_s, source)])

    @classmethod
    def silent(cls) -> "AttackSchedule":
        """No attack at all (baseline runs)."""
        return cls([])

    @classmethod
    def from_intervals(cls, intervals: Sequence[Tuple[float, float]],
                       source: EMISource) -> "AttackSchedule":
        """Same tone transmitted over several (start, end) intervals."""
        return cls([AttackWindow(a, b, source) for a, b in intervals])

    def add(self, start_s: float, end_s: float, source: EMISource) -> None:
        self.windows.append(AttackWindow(start_s, end_s, source))

    def source_at(self, t: float) -> Optional[EMISource]:
        """The active tone at time ``t`` (or None when the air is quiet)."""
        for window in self.windows:
            if window.active_at(t):
                return window.source
        return None

    @property
    def ever_active(self) -> bool:
        return bool(self.windows)
