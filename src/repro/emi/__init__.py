"""EMI attack modelling: sources, propagation, susceptibility, schedules."""

from .attacker import AttackSchedule, AttackWindow
from .devices import (
    DEVICES,
    DeviceProfile,
    EVALUATION_BOARD,
    PaperReference,
    device,
    device_names,
)
from .propagation import DPIPath, RemotePath, WALL_ATTENUATION_DB
from .signal import EMISource, induced_waveform_sample
from .susceptibility import ROLLOFF_CORNER_HZ, SusceptibilityCurve, sweep

__all__ = [
    "AttackSchedule", "AttackWindow", "DEVICES", "DPIPath", "DeviceProfile",
    "EMISource", "EVALUATION_BOARD", "PaperReference", "ROLLOFF_CORNER_HZ",
    "RemotePath", "SusceptibilityCurve", "WALL_ATTENUATION_DB", "device",
    "device_names", "induced_waveform_sample", "sweep",
]
