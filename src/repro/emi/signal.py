"""EMI attack signal sources.

The paper's attack rig is an RF signal generator plus amplifier and a
directional antenna emitting a single-tone sine wave; the two knobs the
adversary controls are frequency and transmit power (§III, "Attack
Scenario").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..energy.harvester import dbm_to_watts, watts_to_dbm


@dataclass(frozen=True)
class EMISource:
    """A single-tone EMI emitter."""

    frequency_hz: float
    power_dbm: float

    @property
    def power_w(self) -> float:
        return dbm_to_watts(self.power_dbm)

    def with_power(self, power_dbm: float) -> "EMISource":
        return EMISource(self.frequency_hz, power_dbm)

    def with_frequency(self, frequency_hz: float) -> "EMISource":
        return EMISource(frequency_hz, self.power_dbm)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"frequency_hz": self.frequency_hz,
                "power_dbm": self.power_dbm}

    @classmethod
    def from_dict(cls, data: dict) -> "EMISource":
        return cls(frequency_hz=data["frequency_hz"],
                   power_dbm=data["power_dbm"])

    def __str__(self) -> str:
        if self.frequency_hz >= 1e9:
            freq = f"{self.frequency_hz / 1e9:g}GHz"
        else:
            freq = f"{self.frequency_hz / 1e6:g}MHz"
        return f"{freq}@{self.power_dbm:g}dBm"


def induced_waveform_sample(amplitude_v: float, frequency_hz: float,
                            t: float, sample_index: int) -> float:
    """One sampled value of the induced sine as the victim's ADC sees it.

    The monitor samples far below the attack frequency, so successive
    samples alias pseudo-randomly across the sine's phase.  A deterministic
    hash of the sample index supplies the phase so simulations are exactly
    reproducible.
    """
    if amplitude_v <= 0:
        return 0.0
    state = (sample_index * 2654435761 + int(frequency_hz) * 40503) & 0xFFFFFFFF
    phase = 2.0 * math.pi * (state / 0xFFFFFFFF)
    return amplitude_v * math.sin(2.0 * math.pi * frequency_hz * t + phase)
