"""Device susceptibility: received RF power -> induced monitor voltage.

Low-power MCU boards lack input filtering, so an attack tone near a board
resonance couples into the voltage-monitor input as a superimposed sine
(§II-D).  We model the voltage transfer as a sum of Lorentzian resonances
with a global low-pass roll-off (the paper observed no effect above
~50 MHz in DPI, §IV-A2):

    A(f) = rolloff(f) * sum_k  g_k / (1 + ((f - f_k) / w_k)^2) * sqrt(P_rx)

``g_k`` is the peak gain in volts per sqrt(watt) at resonance ``f_k`` with
half-width ``w_k``.  Every parameter set in :mod:`repro.emi.devices` is
calibrated so the simulated Table I lands near the paper's measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

#: Above this corner the package/trace low-pass suppresses coupling.
ROLLOFF_CORNER_HZ = 60e6

Resonance = Tuple[float, float, float]  # (frequency_hz, gain_v_per_sqrtw, width_hz)


@dataclass(frozen=True)
class SusceptibilityCurve:
    """Voltage-transfer curve of one monitor input on one board."""

    resonances: Tuple[Resonance, ...]
    rolloff_corner_hz: float = ROLLOFF_CORNER_HZ
    #: Broadband floor coupling (tiny, keeps the curve smooth off-peak).
    floor_gain: float = 0.01

    def gain(self, frequency_hz: float) -> float:
        """Volts induced per sqrt(watt) received at ``frequency_hz``."""
        total = self.floor_gain
        for f_k, g_k, w_k in self.resonances:
            x = (frequency_hz - f_k) / w_k
            total += g_k / (1.0 + x * x)
        rolloff = 1.0 / (1.0 + (frequency_hz / self.rolloff_corner_hz) ** 2)
        return total * rolloff

    def induced_amplitude(self, frequency_hz: float,
                          received_power_w: float) -> float:
        """Peak induced voltage for a given received power."""
        if received_power_w <= 0:
            return 0.0
        return self.gain(frequency_hz) * math.sqrt(received_power_w)

    def resonant_frequencies(self) -> List[float]:
        return [f for f, _, _ in self.resonances]

    def peak_frequency(self) -> float:
        """The most effective attack frequency."""
        return max(self.resonances, key=lambda r: self.gain(r[0]))[0]


def sweep(curve: SusceptibilityCurve, frequencies: Sequence[float],
          received_power_w: float) -> List[Tuple[float, float]]:
    """Induced amplitude across a frequency sweep (for plotting/benches)."""
    return [
        (f, curve.induced_amplitude(f, received_power_w)) for f in frequencies
    ]
