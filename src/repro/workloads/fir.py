"""fir: integer FIR filter over a sampled waveform.

A Q8 fixed-point low-pass with read-only coefficient taps, streaming over
an input buffer — the paper's intro archetype of a sensing workload.
"""

import math
from typing import List

TAPS = [3, 10, 21, 31, 35, 31, 21, 10, 3]  # Q8-ish low-pass kernel
SAMPLES = [
    int(round(120 * math.sin(2 * math.pi * n / 12)
              + 40 * math.sin(2 * math.pi * n / 3)))
    for n in range(48)
]
SCALE = 128


def _tdiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def fir_reference() -> List[int]:
    """Python reference: truncating fixed-point convolution digest."""
    outputs = []
    for n in range(len(TAPS) - 1, len(SAMPLES)):
        acc = 0
        for k, tap in enumerate(TAPS):
            acc += tap * SAMPLES[n - k]
        outputs.append(_tdiv(acc, SCALE))
    digest = 0
    for value in outputs:
        digest = (digest * 31 + value) % 1000003
        if digest < 0:
            digest += 1000003
    return [digest, len(outputs)]


def _init_list(values: List[int]) -> str:
    return ", ".join(str(v) for v in values)


SOURCE = f"""
// fir: Q8 fixed-point FIR low-pass filter.
int taps[{len(TAPS)}] = {{{_init_list(TAPS)}}};
int samples[{len(SAMPLES)}] = {{{_init_list(SAMPLES)}}};
int filtered[{len(SAMPLES)}];

void main() {{
    int ntaps = {len(TAPS)};
    int nsamples = {len(SAMPLES)};
    int count = 0;
    for (int n = ntaps - 1; n < nsamples; n = n + 1) {{
        int acc = 0;
        for (int k = 0; k < ntaps; k = k + 1) {{
            acc = acc + taps[k] * samples[n - k];
        }}
        filtered[count] = acc / {SCALE};
        count = count + 1;
    }}
    int digest = 0;
    for (int i = 0; i < count; i = i + 1) bound({len(SAMPLES)}) {{
        digest = (digest * 31 + filtered[i]) % 1000003;
        if (digest < 0) {{ digest = digest + 1000003; }}
    }}
    out(digest);
    out(count);
}}
"""

EXPECTED = fir_reference()
