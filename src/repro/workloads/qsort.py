"""qsort: iterative quicksort with an explicit stack.

Recursion is unsupported on the static-frame convention (as on many real
MCU toolchains), so the classic MiBench ``qsort`` becomes the equally
classic explicit-stack formulation — which also makes the stack array a
rich source of WAR dependences for region formation.
"""

from typing import List

DATA: List[int] = [
    887, 21, 406, 555, 3, 912, 730, 148, 371, 62,
    640, 289, 777, 104, 58, 963, 212, 498, 333, 846,
    17, 925, 671, 254,
]


def qsort_reference() -> List[int]:
    """Expected output: the sorted data followed by a digest."""
    ordered = sorted(DATA)
    digest = 0
    for value in ordered:
        digest = (digest * 13 + value) % 1000003
    return ordered + [digest]


def _init_list(values: List[int]) -> str:
    return ", ".join(str(v) for v in values)


SOURCE = f"""
// qsort: iterative quicksort with an explicit stack (MiBench port).
int data[{len(DATA)}] = {{{_init_list(DATA)}}};
int stack[64];

void main() {{
    int n = {len(DATA)};
    int top = 0;
    stack[top] = 0;
    stack[top + 1] = n - 1;
    top = 2;
    while (top > 0) bound(128) {{
        top = top - 2;
        int lo = stack[top];
        int hi = stack[top + 1];
        if (lo < hi) {{
            int pivot = data[hi];
            int i = lo - 1;
            for (int j = lo; j < hi; j = j + 1) bound({len(DATA)}) {{
                if (data[j] <= pivot) {{
                    i = i + 1;
                    int tmp = data[i];
                    data[i] = data[j];
                    data[j] = tmp;
                }}
            }}
            int tmp2 = data[i + 1];
            data[i + 1] = data[hi];
            data[hi] = tmp2;
            int p = i + 1;
            stack[top] = lo;
            stack[top + 1] = p - 1;
            top = top + 2;
            stack[top] = p + 1;
            stack[top + 1] = hi;
            top = top + 2;
        }}
    }}
    for (int i = 0; i < n; i = i + 1) {{
        out(data[i]);
    }}
    int digest = 0;
    for (int i = 0; i < n; i = i + 1) {{
        digest = (digest * 13 + data[i]) % 1000003;
    }}
    out(digest);
}}
"""

EXPECTED = qsort_reference()
