"""dijkstra: single-source shortest paths on a dense little graph.

A flattened adjacency matrix with a linear-scan priority selection — the
MiBench network kernel at MCU scale.  Heavy array WAR traffic makes this
the workload with the most anti-dependence region cuts.
"""

from typing import List

N = 9
INF = 1 << 20

#: Deterministic weighted digraph (0 = no edge), flattened row-major.
_EDGES = [
    (0, 1, 4), (0, 2, 9), (0, 3, 7), (1, 2, 3), (1, 4, 8),
    (2, 4, 2), (2, 5, 6), (3, 5, 5), (3, 6, 11), (4, 7, 7),
    (5, 7, 4), (5, 6, 2), (6, 8, 6), (7, 8, 3), (2, 3, 1),
    (4, 5, 1), (1, 3, 6),
]


def _matrix() -> List[int]:
    matrix = [0] * (N * N)
    for a, b, w in _EDGES:
        matrix[a * N + b] = w
        matrix[b * N + a] = w
    return matrix


def dijkstra_reference(src: int = 0) -> List[int]:
    """Python reference shortest-path distances from ``src``."""
    matrix = _matrix()
    dist = [INF] * N
    done = [False] * N
    dist[src] = 0
    for _ in range(N):
        best, best_d = -1, INF + 1
        for v in range(N):
            if not done[v] and dist[v] < best_d:
                best, best_d = v, dist[v]
        if best < 0:
            break
        done[best] = True
        for v in range(N):
            w = matrix[best * N + v]
            if w and dist[best] + w < dist[v]:
                dist[v] = dist[best] + w
    return dist


def _init_list(values: List[int]) -> str:
    return ", ".join(str(v) for v in values)


SOURCE = f"""
// dijkstra: shortest paths over a flattened adjacency matrix.
int adj[{N * N}] = {{{_init_list(_matrix())}}};
int dist[{N}];
int done[{N}];

void main() {{
    int n = {N};
    int inf = {INF};
    for (int i = 0; i < {N}; i = i + 1) {{
        dist[i] = inf;
        done[i] = 0;
    }}
    dist[0] = 0;
    for (int round = 0; round < {N}; round = round + 1) {{
        int best = 0 - 1;
        int best_d = inf + 1;
        for (int v = 0; v < {N}; v = v + 1) {{
            if (done[v] == 0 && dist[v] < best_d) {{
                best = v;
                best_d = dist[v];
            }}
        }}
        if (best >= 0) {{
            done[best] = 1;
            for (int v = 0; v < {N}; v = v + 1) {{
                int w = adj[best * n + v];
                if (w != 0 && dist[best] + w < dist[v]) {{
                    dist[v] = dist[best] + w;
                }}
            }}
        }}
    }}
    for (int i = 0; i < {N}; i = i + 1) {{
        out(dist[i]);
    }}
}}
"""

EXPECTED = dijkstra_reference()
