"""glucose: the paper's continuous glucose monitor, as reactive firmware.

The motivating application (§II): a sensor ADC interrupt samples the
glucose channel on a fixed period, the handler logs each raw reading
keyed by the device's own sample counter, and the main line — once a full
measurement window is banked — runs the EWMA filter, classifies hypo/
hyper excursions, and transmits the filtered series.

The handler is *idempotent by construction*: every write is keyed by
``adc_count()``, so the at-least-once re-delivery a power failure inside
the handler forces simply re-lands the same words.  The committed output
is a pure function of the first 24 samples, invariant under any power
schedule, checkpoint scheme, or execution backend.
"""

SOURCE = """
// glucose: sense -> filter -> log -> transmit (sensor-ADC reactive loop).
int raw[24];
int samples = 0;

isr adc on_sample() {
    // Count-keyed logging: re-delivery after a mid-handler power failure
    // rewrites the same slot with the same value.
    int k = adc_count();
    if (k <= 24) {
        raw[k - 1] = adc_read();
        samples = k;
    }
}

int ewma(int level, int sample) {
    // alpha = 1/4 exponential moving average, integer form.
    return (level * 3 + sample) / 4;
}

void main() {
    irq_enable(2);            // vector 1: sensor ADC
    adc_start(90);            // one conversion every 90 cycles
    while (samples < 24) bound(20000) { }
    adc_stop();
    irq_disable(2);

    int level = raw[0];
    int hypo = 0;
    int hyper = 0;
    for (int i = 0; i < 24; i = i + 1) {
        level = ewma(level, raw[i]);
        if (level < 200) { hypo = hypo + 1; }
        if (level > 800) { hyper = hyper + 1; }
        out(level);           // transmit the filtered series
    }
    out(hypo);
    out(hyper);
}
"""
