"""stringsearch: Horspool substring search over a text corpus.

Several patterns are searched with a per-pattern bad-character skip table
rebuilt in a writable global — the rebuild creates the dense WAR traffic
that gives stringsearch the paper's largest checkpoint count (Table III:
1128 stores).
"""

from typing import List, Tuple

TEXT = (
    "energy harvesting systems have emerged as an alternative to battery "
    "powered devices; the voltage monitor is at the heart of intermittent "
    "systems because it detects the power outage and checkpoints state"
)

PATTERNS = ["voltage", "checkpoint", "battery", "gecko", "systems", "outage"]

ALPHABET = 128


def search_reference() -> List[int]:
    """First match offset of each pattern (-1 when absent)."""
    results = []
    for pattern in PATTERNS:
        index = TEXT.find(pattern)
        results.append(index)
    return results


def _encode(text: str) -> List[int]:
    return [ord(c) for c in text]


def _init_list(values: List[int]) -> str:
    return ", ".join(str(v) for v in values)


def _pattern_table() -> Tuple[List[int], List[int]]:
    """Flatten patterns into one array with (offset, length) descriptors."""
    blob: List[int] = []
    descr: List[int] = []
    for pattern in PATTERNS:
        descr.append(len(blob))
        descr.append(len(pattern))
        blob.extend(_encode(pattern))
    return blob, descr


_BLOB, _DESCR = _pattern_table()
_TEXT = _encode(TEXT)


SOURCE = f"""
// stringsearch: Horspool search, one skip-table rebuild per pattern.
int text[{len(_TEXT)}] = {{{_init_list(_TEXT)}}};
int patterns[{len(_BLOB)}] = {{{_init_list(_BLOB)}}};
int descr[{len(_DESCR)}] = {{{_init_list(_DESCR)}}};
int skip[{ALPHABET}];

int search(int pat_off, int pat_len) {{
    int text_len = {len(_TEXT)};
    for (int c = 0; c < {ALPHABET}; c = c + 1) {{
        skip[c] = pat_len;
    }}
    for (int k = 0; k < pat_len - 1; k = k + 1) bound(16) {{
        skip[patterns[pat_off + k]] = pat_len - 1 - k;
    }}
    int pos = 0;
    while (pos <= text_len - pat_len) bound({len(_TEXT)}) {{
        int k = pat_len - 1;
        while (k >= 0 && text[pos + k] == patterns[pat_off + k]) bound(16) {{
            k = k - 1;
        }}
        if (k < 0) {{ return pos; }}
        pos = pos + skip[text[pos + pat_len - 1]];
    }}
    return 0 - 1;
}}

void main() {{
    int npatterns = {len(PATTERNS)};
    for (int p = 0; p < npatterns; p = p + 1) {{
        out(search(descr[p * 2], descr[p * 2 + 1]));
    }}
}}
"""

EXPECTED = search_reference()
