"""crc32: table-driven CRC-32 over a message buffer.

The 256-entry lookup table is a read-only global — exactly the kind of
value GECKO's recovery blocks can reload instead of checkpointing, and a
workload where pruning shines.  The table itself is generated here and
embedded into the MiniC source as initialised data.
"""

from typing import List

MESSAGE: List[int] = [ord(c) for c in
                      "Intermittent systems harvest ambient energy."] * 2

_POLY = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for n in range(256):
        value = n
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLY
            else:
                value >>= 1
        table.append(value)
    return table


TABLE = _build_table()


def crc32_reference(data: List[int]) -> int:
    """Python reference CRC-32 (IEEE 802.3)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


def _int_list(values: List[int]) -> str:
    return ", ".join(str(_signed(v)) for v in values)


SOURCE = f"""
// crc32: table-driven IEEE CRC-32 (MiBench port).
int crc_table[256] = {{{_int_list(TABLE)}}};
int message[{len(MESSAGE)}] = {{{_int_list(MESSAGE)}}};

int crc32(int length) {{
    int crc = 0xFFFFFFFF;
    for (int i = 0; i < length; i = i + 1) {{
        int index = (crc ^ message[i]) & 0xFF;
        crc = crc_table[index] ^ ((crc >> 8) & 0x00FFFFFF);
    }}
    return crc ^ 0xFFFFFFFF;
}}

void main() {{
    out(crc32({len(MESSAGE)}));
}}
"""

EXPECTED = [_signed(crc32_reference(MESSAGE))]
