"""crc16: bitwise CCITT CRC-16 over a message buffer.

No lookup table — the classic shift/xor inner loop, so the hot region is
pure register arithmetic plus one message load per byte.  The expected
checksum is computed in Python for the test suite.
"""

from typing import List

#: The message the kernel checksums (fits MCU-scale buffers).
MESSAGE: List[int] = [ord(c) for c in "GECKO defends just-in-time checkpoints!"]

POLY = 0x1021


def crc16_reference(data: List[int], init: int = 0xFFFF) -> int:
    """Python reference implementation (CCITT-FALSE)."""
    crc = init
    for byte in data:
        crc ^= (byte & 0xFF) << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def _message_init() -> str:
    return ", ".join(str(b) for b in MESSAGE)


SOURCE = f"""
// crc16: bitwise CCITT CRC-16 (MiBench-style kernel).
int message[{len(MESSAGE)}] = {{{_message_init()}}};

int crc16(int length) {{
    int crc = 0xFFFF;
    for (int i = 0; i < length; i = i + 1) bound({len(MESSAGE)}) {{
        crc = crc ^ ((message[i] & 0xFF) << 8);
        for (int bit = 0; bit < 8; bit = bit + 1) {{
            if ((crc & 0x8000) != 0) {{
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF;
            }} else {{
                crc = (crc << 1) & 0xFFFF;
            }}
        }}
    }}
    return crc;
}}

void main() {{
    out(crc16({len(MESSAGE)}));
}}
"""

EXPECTED = [crc16_reference(MESSAGE)]
