"""fft: fixed-point radix-2 decimation-in-time FFT, N = 16.

Twiddle factors are Q8 fixed-point constants baked into read-only tables
(generated here with :mod:`math`), mirroring how embedded FFTs ship
coefficient ROMs.  The kernel reports the magnitude-squared digest of the
spectrum; the Python reference performs the identical integer algorithm so
expected outputs match bit-for-bit.
"""

import math
from typing import List, Tuple

N = 16
SCALE = 256  # Q8 fixed point


def _twiddles() -> Tuple[List[int], List[int]]:
    cos_t, sin_t = [], []
    for k in range(N // 2):
        angle = -2.0 * math.pi * k / N
        cos_t.append(int(round(math.cos(angle) * SCALE)))
        sin_t.append(int(round(math.sin(angle) * SCALE)))
    return cos_t, sin_t


COS_TABLE, SIN_TABLE = _twiddles()

#: Input signal: a two-tone integer waveform.
SIGNAL = [
    int(round(100 * math.sin(2 * math.pi * 2 * n / N)
              + 50 * math.sin(2 * math.pi * 5 * n / N)))
    for n in range(N)
]


def _tdiv(a: int, b: int) -> int:
    """C-style truncating division (matches the MiniC ``/`` operator)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _bit_reverse(n: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (n & 1)
        n >>= 1
    return out


def fft_reference() -> List[int]:
    """Integer FFT identical to the MiniC kernel; returns |X_k|^2 digests."""
    bits = N.bit_length() - 1
    re = [SIGNAL[_bit_reverse(i, bits)] for i in range(N)]
    im = [0] * N
    size = 2
    while size <= N:
        half = size // 2
        step = N // size
        for start in range(0, N, size):
            for k in range(half):
                c = COS_TABLE[k * step]
                s = SIN_TABLE[k * step]
                i = start + k
                j = i + half
                tr = _tdiv(c * re[j] - s * im[j], SCALE)
                ti = _tdiv(c * im[j] + s * re[j], SCALE)
                re[j] = re[i] - tr
                im[j] = im[i] - ti
                re[i] = re[i] + tr
                im[i] = im[i] + ti
        size *= 2
    return [(re[k] * re[k] + im[k] * im[k]) % 1000003 for k in range(N)]


def _init_list(values: List[int]) -> str:
    return ", ".join(str(v) for v in values)


SOURCE = f"""
// fft: fixed-point radix-2 DIT FFT, N = {N} (MiBench port).
int cos_table[{N // 2}] = {{{_init_list(COS_TABLE)}}};
int sin_table[{N // 2}] = {{{_init_list(SIN_TABLE)}}};
int signal[{N}] = {{{_init_list(SIGNAL)}}};
int re[{N}];
int im[{N}];

int bit_reverse(int value, int bits) {{
    int result = 0;
    for (int i = 0; i < bits; i = i + 1) {{
        result = (result << 1) | (value & 1);
        value = value >> 1;
    }}
    return result;
}}

void main() {{
    int n = {N};
    int bits = 4;
    for (int i = 0; i < {N}; i = i + 1) {{
        re[i] = signal[bit_reverse(i, bits)];
        im[i] = 0;
    }}
    int size = 2;
    while (size <= n) bound(4) {{
        int half = size / 2;
        int step = n / size;
        for (int start = 0; start < n; start = start + size) bound({N // 2}) {{
            for (int k = 0; k < half; k = k + 1) bound({N // 2}) {{
                int c = cos_table[k * step];
                int s = sin_table[k * step];
                int i = start + k;
                int j = i + half;
                int tr = (c * re[j] - s * im[j]) / {SCALE};
                int ti = (c * im[j] + s * re[j]) / {SCALE};
                re[j] = re[i] - tr;
                im[j] = im[i] - ti;
                re[i] = re[i] + tr;
                im[i] = im[i] + ti;
            }}
        }}
        size = size * 2;
    }}
    for (int k = 0; k < {N}; k = k + 1) {{
        out((re[k] * re[k] + im[k] * im[k]) % 1000003);
    }}
}}
"""

EXPECTED = fft_reference()
