"""The bundled MiniC applications: batch kernels and reactive firmware.

Two families share one declarative :data:`REGISTRY`:

* **kernels** — the eleven batch benchmarks from the paper's evaluation
  (:data:`WORKLOAD_NAMES`, unchanged);
* **reactive** — interrupt-driven firmware built on :mod:`repro.periph`
  (:data:`REACTIVE_WORKLOADS`): the glucose monitor the paper motivates
  with, plus GPIO/DMA and nested-priority companions.

``source(name)`` and ``expected_output(name)`` resolve any registered
name; ``expected_output`` returns the Python reference when the module
ships one, else the committed output of one stable-power NVP run.
"""

from dataclasses import dataclass
from functools import lru_cache
from types import ModuleType
from typing import Dict, List, Optional

from . import (
    basicmath,
    bitcnt,
    blink,
    crc16,
    crc32,
    dhrystone,
    dijkstra,
    fft,
    fir,
    glucose,
    heartbeat,
    motionlog,
    qsort,
    stringsearch,
)

#: A workload family: batch kernel or interrupt-driven reactive firmware.
KERNEL = "kernel"
REACTIVE = "reactive"


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered application: its source module plus catalog facts."""

    name: str
    kind: str
    module: ModuleType

    @property
    def source(self) -> str:
        return self.module.SOURCE

    @property
    def blurb(self) -> str:
        """First docstring line, past the ``name:`` prefix."""
        doc = (self.module.__doc__ or "").strip().splitlines()
        line = doc[0] if doc else ""
        prefix = f"{self.name}:"
        return line[len(prefix):].strip() if line.startswith(prefix) \
            else line


def _entry(module: ModuleType, kind: str) -> WorkloadEntry:
    name = module.__name__.rsplit(".", 1)[-1]
    return WorkloadEntry(name=name, kind=kind, module=module)


#: Every bundled application, declaratively: name -> entry.
REGISTRY: Dict[str, WorkloadEntry] = {
    entry.name: entry
    for entry in (
        _entry(basicmath, KERNEL),
        _entry(bitcnt, KERNEL),
        _entry(blink, KERNEL),
        _entry(crc16, KERNEL),
        _entry(crc32, KERNEL),
        _entry(dhrystone, KERNEL),
        _entry(dijkstra, KERNEL),
        _entry(fft, KERNEL),
        _entry(fir, KERNEL),
        _entry(qsort, KERNEL),
        _entry(stringsearch, KERNEL),
        _entry(glucose, REACTIVE),
        _entry(heartbeat, REACTIVE),
        _entry(motionlog, REACTIVE),
    )
}

#: The paper's benchmark names in their (alphabetical) order.
WORKLOAD_NAMES: List[str] = [
    name for name, entry in REGISTRY.items() if entry.kind == KERNEL
]

#: The interrupt-driven reactive suite (:mod:`repro.periph`).
REACTIVE_WORKLOADS: List[str] = [
    name for name, entry in REGISTRY.items() if entry.kind == REACTIVE
]

#: A small subset for quick experiments and fast test runs.
FAST_WORKLOADS: List[str] = ["blink", "crc16", "bitcnt", "fir"]


def source(name: str) -> str:
    """MiniC source text of any registered workload."""
    try:
        return REGISTRY[name].source
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(REGISTRY)}"
        ) from None


def reference_output(name: str) -> Optional[List[int]]:
    """The Python-computed expected output, when the workload has one."""
    return getattr(REGISTRY[name].module, "EXPECTED", None)


@lru_cache(maxsize=None)
def expected_output(name: str) -> List[int]:
    """Known-good committed output of a workload (golden run)."""
    reference = reference_output(name)
    if reference is not None:
        return list(reference)
    from ..core import compile_nvp
    from ..runtime import run_to_completion

    machine = run_to_completion(compile_nvp(source(name)).linked)
    return list(machine.committed_out)


def all_sources() -> Dict[str, str]:
    """name -> MiniC source for every paper benchmark."""
    return {name: source(name) for name in WORKLOAD_NAMES}


__all__ = [
    "FAST_WORKLOADS", "KERNEL", "REACTIVE", "REACTIVE_WORKLOADS",
    "REGISTRY", "WORKLOAD_NAMES", "WorkloadEntry", "all_sources",
    "expected_output", "reference_output", "source",
]
