"""The eleven MiniC benchmark applications from the paper's evaluation.

``source(name)`` returns MiniC text for any of :data:`WORKLOAD_NAMES`;
``expected_output(name)`` returns the known-good committed output, either
from a Python reference implementation or (for purely synthetic kernels)
by running the NVP-compiled program on stable power once and caching it.
"""

from functools import lru_cache
from typing import Dict, List, Optional

from . import (
    basicmath,
    bitcnt,
    blink,
    crc16,
    crc32,
    dhrystone,
    dijkstra,
    fft,
    fir,
    qsort,
    stringsearch,
)

_MODULES = {
    "basicmath": basicmath,
    "bitcnt": bitcnt,
    "blink": blink,
    "crc16": crc16,
    "crc32": crc32,
    "dhrystone": dhrystone,
    "dijkstra": dijkstra,
    "fft": fft,
    "fir": fir,
    "qsort": qsort,
    "stringsearch": stringsearch,
}

#: Benchmark names in the paper's (alphabetical) order.
WORKLOAD_NAMES: List[str] = list(_MODULES)

#: A small subset for quick experiments and fast test runs.
FAST_WORKLOADS: List[str] = ["blink", "crc16", "bitcnt", "fir"]


def source(name: str) -> str:
    """MiniC source text of a workload."""
    try:
        return _MODULES[name].SOURCE
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        ) from None


def reference_output(name: str) -> Optional[List[int]]:
    """The Python-computed expected output, when the workload has one."""
    return getattr(_MODULES[name], "EXPECTED", None)


@lru_cache(maxsize=None)
def expected_output(name: str) -> List[int]:
    """Known-good committed output of a workload (golden run)."""
    reference = reference_output(name)
    if reference is not None:
        return list(reference)
    from ..core import compile_nvp
    from ..runtime import run_to_completion

    machine = run_to_completion(compile_nvp(source(name)).linked)
    return list(machine.committed_out)


def all_sources() -> Dict[str, str]:
    """name -> MiniC source for every workload."""
    return {name: source(name) for name in WORKLOAD_NAMES}


__all__ = [
    "FAST_WORKLOADS", "WORKLOAD_NAMES", "all_sources", "expected_output",
    "reference_output", "source",
]
