"""dhrystone: the classic synthetic integer mix, reduced to MiniC.

Keeps Dhrystone's signature traits — global record updates, short helper
procedures, parameter passing, array shuffling and branchy enum logic —
in a deterministic loop whose digest is emitted at the end.
"""

SOURCE = """
// dhrystone: synthetic integer workload (reduced Dhrystone 2.1).
int int_glob;
int bool_glob;
int ch_1_glob;
int ch_2_glob;
int arr_1[32];
int arr_2[32];
int record_a;   // "record" fields flattened to globals
int record_b;
int record_discr;

int func_1(int ch_1, int ch_2) {
    int ch_local = ch_1;
    if (ch_local != ch_2) { return 0; }
    ch_1_glob = ch_local;
    return 1;
}

int func_2(int str_1, int str_2) {
    int int_loc = 1;
    int ch_loc = 0;
    while (int_loc <= 1) bound(2) {
        if (func_1(str_1 + int_loc, str_2 + int_loc) == 0) {
            ch_loc = 65;
            int_loc = int_loc + 1;
        } else {
            int_loc = int_loc + 2;
        }
    }
    if (ch_loc >= 65 && ch_loc < 90) { int_loc = 7; }
    if (str_1 > str_2) { return int_loc + 10; }
    return 0;
}

int func_3(int val) {
    if (val == 2) { return 1; }
    return 0;
}

void proc_6(int enum_val) {
    record_discr = enum_val;
    if (func_3(enum_val) == 0) { record_discr = 3; }
    if (enum_val == 0) { record_discr = 0; }
    if (enum_val == 1) {
        if (int_glob > 100) { record_discr = 0; }
        else { record_discr = 3; }
    }
    if (enum_val == 2) { record_discr = 1; }
}

void proc_7(int in_1, int in_2) {
    record_a = in_1 + 2;
    record_b = record_a + in_2;
}

void proc_8(int base, int index) {
    int loc = index + 5;
    arr_1[loc] = base;
    arr_1[loc + 1] = arr_1[loc];
    arr_1[loc + 20] = loc;
    for (int i = loc; i <= loc + 1; i = i + 1) bound(2) {
        arr_2[i] = loc;
    }
    arr_2[loc + 10] = arr_2[loc + 10] + 1;
    int_glob = 5;
}

void main() {
    int_glob = 0;
    bool_glob = 0;
    ch_1_glob = 0;
    int runs = 12;
    int digest = 0;
    for (int run = 0; run < runs; run = run + 1) {
        proc_7(run, 3);
        bool_glob = func_2(65 + (run % 3), 66);
        proc_8(record_b, run % 6);
        proc_6(run % 4);
        int sum = 0;
        for (int i = 0; i < 32; i = i + 1) {
            sum = sum + arr_1[i] - arr_2[i];
        }
        digest = (digest * 17 + sum + record_discr + bool_glob
                  + ch_1_glob + int_glob) % 1000003;
    }
    out(digest);
    out(int_glob);
}
"""
