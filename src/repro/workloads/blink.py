"""blink: the canonical intermittent-systems demo application.

A sensing loop that toggles an "LED" (an ``out`` per iteration) based on a
sampled threshold.  I/O dominates: every iteration crosses the I/O region
boundaries, making blink the stress test for boundary overhead — and the
workload where the paper's Table III reports the fewest checkpoints (6).
"""

SOURCE = """
// blink: sense-and-toggle loop (intermittent-computing hello world).
int led;
int above;

int smooth(int sample, int previous) {
    // 3-tap exponential smoothing, the usual pre-filter before a
    // threshold decision (and the "delay" real blink loops burn anyway).
    int acc = sample * 3 + previous * 5;
    for (int k = 0; k < 8; k = k + 1) {
        acc = acc + ((sample >> k) & 1) * k;
    }
    return acc / 8;
}

void main() {
    led = 0;
    above = 0;
    int filtered = 0;
    for (int i = 0; i < 16; i = i + 1) {
        int sample = sense();
        filtered = smooth(sample, filtered);
        if (filtered > 512) {
            above = above + 1;
            led = 1 - led;
        }
        out(led);
    }
    out(above);
}
"""
