"""basicmath: integer square roots, cube evaluation, GCD and LCM.

The MiBench ``basicmath`` kernel exercises arithmetic-heavy straight-line
code with data-dependent loop exits; this port keeps those traits in
integer form (Newton's method for isqrt, trial cube evaluation, Euclid's
GCD) and emits a digest of every result.
"""

SOURCE = """
// basicmath: integer math kernels (MiBench port).
int results[40];
int count;

int isqrt(int x) {
    if (x < 2) { return x; }
    // Monotone Newton descent: next < guess until the floor is reached,
    // which guarantees termination (no two-cycle oscillation).
    int guess = x;
    int next = (x + 1) / 2;
    while (next < guess) bound(40) {
        guess = next;
        next = (guess + x / guess) / 2;
    }
    return guess;
}

int gcd(int a, int b) {
    while (b != 0) bound(48) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}

int cube_root_floor(int x) {
    int r = 0;
    while ((r + 1) * (r + 1) * (r + 1) <= x) bound(300) {
        r = r + 1;
    }
    return r;
}

void record(int v) {
    results[count] = v;
    count = count + 1;
}

void main() {
    count = 0;
    for (int i = 1; i < 12; i = i + 1) {
        record(isqrt(i * i * 97 + i));
    }
    for (int i = 0; i < 8; i = i + 1) {
        record(cube_root_floor(i * 1000 + 37));
    }
    record(gcd(3528, 3780));
    record(gcd(270, 192));
    record(gcd(65536, 40902));
    int digest = 0;
    for (int i = 0; i < count; i = i + 1) bound(40) {
        digest = digest * 31 + results[i];
        digest = digest % 1000003;
    }
    out(digest);
    out(count);
}
"""
