"""motionlog: GPIO edge events plus a DMA frame transfer.

A motion detector on a GPIO pin wakes the firmware on every edge while a
DMA engine streams one 16-word acquisition frame in the background; the
DMA-complete handler folds the frame into a checksum.  Main waits for six
edges and the finished frame, then transmits the edge log and signature.

The DMA handler is idempotent (the checksum is recomputed from the same
frame words); the GPIO handler indexes its log with a software counter,
so a power failure inside it *can* skew the log — the handler-resident
fault surface :mod:`repro.periph.attack` targets.
"""

SOURCE = """
// motionlog: gpio edge counting + dma frame checksum.
int evlog[6];
int edges = 0;
int sig = 0;

isr gpio on_motion() {
    int e = edges;
    if (e < 6) {
        evlog[e] = gpio_read() + e * 2;
    }
    edges = e + 1;
}

isr dma on_frame() {
    int acc = 7;
    for (int i = 0; i < 16; i = i + 1) {
        acc = (acc ^ dma_get(i)) + i;
    }
    sig = acc & 65535;
}

void main() {
    irq_enable(4 + 8);        // vectors 2 (gpio) and 3 (dma)
    dma_start(16, 35);        // one 16-word frame, a word every 35 cycles
    gpio_watch(55);           // sample the pin every 55 cycles
    while (edges < 6) bound(40000) { }
    while (dma_done() == 0) bound(40000) { }
    gpio_stop();
    irq_disable(4 + 8);

    for (int i = 0; i < 6; i = i + 1) {
        out(evlog[i]);
    }
    out(sig);
    out(dma_done());
}
"""
