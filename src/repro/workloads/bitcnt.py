"""bitcnt: four bit-counting strategies cross-checked against each other.

Mirrors MiBench ``bitcount``: the same values are counted with a naive
shift loop, Kernighan's trick, a nibble lookup table (read-only — a prime
target for GECKO's recovery blocks), and a parallel SWAR reduction.
"""

SOURCE = """
// bitcnt: count set bits four different ways (MiBench port).
int nibble_table[16] = {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};
int totals[4];

int count_shift(int x) {
    int n = 0;
    for (int i = 0; i < 32; i = i + 1) {
        n = n + ((x >> i) & 1);
    }
    return n;
}

int count_kernighan(int x) {
    int n = 0;
    while (x != 0) bound(32) {
        x = x & (x - 1);
        n = n + 1;
    }
    return n;
}

int count_table(int x) {
    int n = 0;
    for (int i = 0; i < 8; i = i + 1) {
        n = n + nibble_table[(x >> (i * 4)) & 15];
    }
    return n;
}

int count_swar(int x) {
    int v = x;
    v = (v & 0x55555555) + ((v >> 1) & 0x55555555);
    v = (v & 0x33333333) + ((v >> 2) & 0x33333333);
    v = (v & 0x0F0F0F0F) + ((v >> 4) & 0x0F0F0F0F);
    v = (v & 0x00FF00FF) + ((v >> 8) & 0x00FF00FF);
    v = (v & 0x0000FFFF) + ((v >> 16) & 0x0000FFFF);
    return v;
}

void main() {
    totals[0] = 0; totals[1] = 0; totals[2] = 0; totals[3] = 0;
    int seed = 0x12345;
    for (int i = 0; i < 24; i = i + 1) {
        seed = seed * 1103515245 + 12345;
        int value = seed & 0x7FFFFFFF;
        totals[0] = totals[0] + count_shift(value);
        totals[1] = totals[1] + count_kernighan(value);
        totals[2] = totals[2] + count_table(value);
        totals[3] = totals[3] + count_swar(value);
    }
    out(totals[0]);
    if (totals[0] == totals[1] && totals[1] == totals[2]
            && totals[2] == totals[3]) {
        out(1);
    } else {
        out(0);
    }
}
"""
