"""heartbeat: nested interrupts — a paced beat over a free-running ADC.

A timer interrupt paces eight "heartbeats"; each beat handler reads the
*latest* free-running ADC conversion and logs a beat record.  The timer
runs at higher priority with nesting enabled, so a beat preempts the ADC
handler when the two collide — the priority/nesting path of the
interrupt controller under real load.

The beat log is keyed by ``timer_count()`` (idempotent), but each record
captures whatever conversion is newest at delivery time, so the values —
unlike :mod:`~repro.workloads.glucose` — depend on the interleaving the
scheme's instrumentation produces: deterministic per scheme and backend,
different across schemes.
"""

SOURCE = """
// heartbeat: priority-nested timer + adc reactive pacing.
int bpm[8];
int beats = 0;
int activity = 0;

isr timer on_beat() {
    int b = timer_count();
    if (b <= 8) {
        bpm[b - 1] = 60 + (adc_read() & 31);
        beats = b;
    }
}

isr adc on_sample() {
    // Low-priority background activity the beat handler may preempt.
    activity = activity + (adc_read() & 3);
}

void main() {
    irq_priority(0, 3);       // timer beats...
    irq_priority(1, 1);       // ...preempt adc sampling
    irq_nest(1);
    irq_enable(1 + 2);
    adc_start(25);            // free-running conversions
    timer_start(160);         // one beat every 160 cycles
    while (beats < 8) bound(60000) { }
    timer_stop();
    adc_stop();
    irq_disable(3);

    for (int i = 0; i < 8; i = i + 1) {
        out(bpm[i]);
    }
    out(beats);
}
"""
