"""Exhaustive fault maps via snapshot forking and fault-space reduction.

Where :mod:`repro.faultsim` *samples* the injection space (~50 seeded
draws per model), this subsystem enumerates it completely — every
instruction step × every register × every bit, plus deterministic grids
for the time-triggered models — and makes that tractable the way ARMORY
does (PAPERS.md, arXiv 2105.13769): prune what analysis already
classifies, collapse what provably behaves identically, fork the rest
from golden snapshots instead of re-running from reset, and memoize
every classification in the content-addressed result store.

* :mod:`~repro.exhaustive.space`  — :class:`ExhaustiveSpec` and the
  canonical enumeration of the complete space;
* :mod:`~repro.exhaustive.trace`  — :class:`GoldenTrace`: one reference
  run with per-step pcs/regions and periodic
  :class:`~repro.runtime.machine.MachineSnapshot` captures;
* :mod:`~repro.exhaustive.reduce` — liveness pruning, dynamic
  next-access analysis, and equivalence-class collapsing;
* :mod:`~repro.exhaustive.mapper` — the forking simulator, resilient
  fan-out, store memoization, and the campaign bridge for time models;
* :mod:`~repro.exhaustive.report` — reduction accounting next to the
  standard fingerprinted :class:`~repro.faultsim.report.VulnerabilityMap`.

The contract that makes the reduction trustworthy: a reduced run and a
naive from-reset run of the same spec produce *byte-identical* map
fingerprints (asserted by the differential tests and the CI smoke job).
"""

from .mapper import (
    classify_fork,
    exhaustive_map,
    injection_digest,
    program_digest,
)
from .reduce import (
    PURE_SKIP_OPS,
    ReducedPlan,
    naive_step_plan,
    reduce_instr_skips,
    reduce_reg_flips,
    reduce_step_model,
)
from .report import ExhaustiveResult, ReductionStats
from .space import (
    DEFAULT_CKPT_WINDOWS,
    DEFAULT_SIGNAL_SLOTS,
    DEFAULT_SNAPSHOT_STRIDE,
    ExhaustiveSpec,
    enumerate_step_model,
    enumerate_time_model,
)
from .trace import GoldenTrace, HANG_SLACK_STEPS, capture_trace

__all__ = [
    "DEFAULT_CKPT_WINDOWS", "DEFAULT_SIGNAL_SLOTS",
    "DEFAULT_SNAPSHOT_STRIDE", "ExhaustiveResult", "ExhaustiveSpec",
    "GoldenTrace", "HANG_SLACK_STEPS", "PURE_SKIP_OPS", "ReducedPlan",
    "ReductionStats", "capture_trace", "classify_fork",
    "enumerate_step_model", "enumerate_time_model", "exhaustive_map",
    "injection_digest", "naive_step_plan", "program_digest",
    "reduce_instr_skips", "reduce_reg_flips", "reduce_step_model",
]
