"""Reduction accounting: what the exhaustive mapper did *not* simulate.

The acceptance claim behind :mod:`repro.exhaustive` is quantitative —
the reduced mapper classifies the identical fault space with an order of
magnitude fewer simulations — so the mapper's bookkeeping is a
first-class artifact next to the map itself: per-model space sizes,
per-layer pruning counts, representative/simulated/store-served splits,
and the headline reduction factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..faultsim.report import VulnerabilityMap


@dataclass
class ReductionStats:
    """Cost accounting of one exhaustive mapping run.

    ``enumerated`` is the complete space (what the naive mapper would
    simulate); ``representatives`` + ``campaign_points`` is what a cold
    reduced run must simulate; ``simulated`` / ``campaign_executed`` is
    what *this* run actually executed after store memoization.
    """

    naive: bool = False
    golden_steps: int = 0
    #: model -> enumerated injection count (the full space).
    enumerated: Dict[str, int] = field(default_factory=dict)
    #: reduction layer -> injections it resolved or collapsed.
    layers: Dict[str, int] = field(default_factory=dict)
    #: Unique step-model simulations a cold reduced run needs.
    representatives: int = 0
    #: Step-model simulations actually executed (store misses).
    simulated: int = 0
    store_hits: int = 0
    store_puts: int = 0
    #: Time-triggered grid: size, store hits, executions.
    campaign_points: int = 0
    campaign_store_hits: int = 0
    campaign_executed: int = 0

    # ------------------------------------------------------------------
    @property
    def total_enumerated(self) -> int:
        return sum(self.enumerated.values())

    @property
    def naive_simulations(self) -> int:
        """What exhausting the same space without reduction costs."""
        return self.total_enumerated

    @property
    def unique_simulations(self) -> int:
        """Cold cost of the reduced run (before store memoization)."""
        return self.representatives + self.campaign_points

    @property
    def executed_simulations(self) -> int:
        """Simulations this very run performed (0 on a warm store)."""
        return self.simulated + self.campaign_executed

    def reduction_factor(self) -> float:
        """naive / reduced simulation count (>= 1.0 when reduction wins)."""
        return self.naive_simulations / max(1, self.unique_simulations)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "naive": self.naive,
            "golden_steps": self.golden_steps,
            "enumerated": dict(self.enumerated),
            "layers": dict(self.layers),
            "representatives": self.representatives,
            "simulated": self.simulated,
            "store_hits": self.store_hits,
            "store_puts": self.store_puts,
            "campaign_points": self.campaign_points,
            "campaign_store_hits": self.campaign_store_hits,
            "campaign_executed": self.campaign_executed,
            "reduction_factor": self.reduction_factor(),
        }

    def render(self) -> str:
        lines = [f"fault-space reduction "
                 f"({'naive' if self.naive else 'reduced'} mapper):"]
        for model in self.enumerated:
            lines.append(f"  {model:14} {self.enumerated[model]:>9} "
                         f"injections enumerated")
        for reason in sorted(self.layers):
            lines.append(f"  {reason:>24}: {self.layers[reason]}")
        lines.append(f"  unique simulations: {self.unique_simulations} "
                     f"({self.representatives} step reps "
                     f"+ {self.campaign_points} grid points)")
        lines.append(f"  executed now: {self.executed_simulations} "
                     f"(store served {self.store_hits} reps, "
                     f"{self.campaign_store_hits} grid points)")
        lines.append(f"  reduction factor: {self.reduction_factor():.1f}x "
                     f"vs naive ({self.naive_simulations} simulations)")
        return "\n".join(lines)


@dataclass
class ExhaustiveResult:
    """One exhaustive mapping run: the map plus its cost accounting."""

    spec: object
    map: VulnerabilityMap
    stats: ReductionStats

    def fingerprint(self) -> str:
        return self.map.fingerprint()

    def to_dict(self) -> dict:
        return {"map": self.map.to_dict(), "stats": self.stats.to_dict()}

    def render(self) -> str:
        return self.map.render() + "\n\n" + self.stats.render()
