"""The complete injection space of one victim, enumerated as data.

Where :class:`~repro.faultsim.explorer.FaultCampaignSpec` *samples* the
injection space (seeded draws), :class:`ExhaustiveSpec` *enumerates* it:
every instruction step × every register × every bit for the architectural
models, and a deterministic grid over the window for the time-triggered
ones.  Enumeration order is canonical — model order as given, then
ascending (step, target, bit) — because the order of
:class:`~repro.faultsim.report.InjectionRecord` entries is what the map
fingerprint hashes; the reduced and naive mappers must emit records in
exactly this order to be provably bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..eval.common import VictimConfig
from ..faultsim.explorer import ExecutionProfile, fault_victim
from ..faultsim.models import (
    CKPT_CORRUPT,
    CKPT_TRUNCATE,
    FAULT_MODELS,
    FaultSimError,
    FaultSpec,
    IMAGE_PREFIX_WORDS,
    INSTR_SKIP,
    REG_FLIP,
    SIGNAL_DROP,
    SIGNAL_SPURIOUS,
    STEP_MODELS,
    image_word_label,
)
from ..isa.operands import NUM_REGS

#: Default snapshot cadence (steps between golden-state captures).
DEFAULT_SNAPSHOT_STRIDE = 64

#: Default checkpoint-window count for the time-triggered image models.
DEFAULT_CKPT_WINDOWS = 1

#: Default monitor-signal slots over the window.
DEFAULT_SIGNAL_SLOTS = 8


@dataclass
class ExhaustiveSpec:
    """One exhaustive mapping job: victim + models + space bounds.

    The step-model space defaults to *every* golden instruction step and
    *every* bit of every register; ``start_step``/``slice_steps``/
    ``step_stride``/``bits`` carve out the sub-slices the differential
    tests and CI smoke use.  Unlike the sampling campaign spec there is
    no RNG anywhere: the space is the plan.
    """

    victim: VictimConfig = field(default_factory=fault_victim)
    models: Tuple[str, ...] = FAULT_MODELS
    #: Step-model slice: first step, step count (None = to the end), and
    #: stride over steps.
    start_step: int = 0
    slice_steps: Optional[int] = None
    step_stride: int = 1
    #: Bit positions flipped per register (reg_flip only).
    bits: Tuple[int, ...] = tuple(range(32))
    #: Golden-state capture cadence for the forking mapper.
    snapshot_stride: int = DEFAULT_SNAPSHOT_STRIDE
    #: Time-model grids: checkpoint windows and monitor-signal slots.
    ckpt_windows: int = DEFAULT_CKPT_WINDOWS
    signal_slots: int = DEFAULT_SIGNAL_SLOTS
    name: str = "exhaustive"

    def __post_init__(self) -> None:
        unknown = [m for m in self.models if m not in FAULT_MODELS]
        if unknown:
            raise FaultSimError(
                f"unknown fault models {unknown} "
                f"(want a subset of {', '.join(FAULT_MODELS)})")
        if not self.models:
            raise FaultSimError("need at least one fault model")
        if self.start_step < 0 or self.step_stride < 1:
            raise FaultSimError("bad step-model slice bounds")
        if self.slice_steps is not None and self.slice_steps < 1:
            raise FaultSimError("slice_steps must be >= 1 (or None)")
        self.bits = tuple(sorted(set(self.bits)))
        if not self.bits or not all(0 <= b < 32 for b in self.bits):
            raise FaultSimError("bits must be a non-empty subset of 0..31")
        if self.snapshot_stride < 1:
            raise FaultSimError("snapshot_stride must be >= 1")
        if self.ckpt_windows < 1 or self.signal_slots < 1:
            raise FaultSimError("time-model grids need >= 1 point")

    # ------------------------------------------------------------------
    def step_range(self, total_steps: int) -> range:
        """The enumerated instruction steps within a golden run."""
        end = total_steps if self.slice_steps is None \
            else min(total_steps, self.start_step + self.slice_steps)
        return range(min(self.start_step, total_steps), end, self.step_stride)

    def step_models(self) -> Tuple[str, ...]:
        return tuple(m for m in self.models if m in STEP_MODELS)

    def time_models(self) -> Tuple[str, ...]:
        return tuple(m for m in self.models if m not in STEP_MODELS)


def enumerate_step_model(spec: ExhaustiveSpec, model: str,
                         profile: ExecutionProfile) -> Iterator[FaultSpec]:
    """Every injection of one step-triggered model, in canonical order."""
    steps = spec.step_range(profile.total_steps)
    if model == REG_FLIP:
        for step in steps:
            region = f"region:{profile.region_at(step)}"
            for target in range(NUM_REGS):
                for bit in spec.bits:
                    yield FaultSpec(model=model, trigger_step=step,
                                    target=target, bit=bit, region=region)
    elif model == INSTR_SKIP:
        for step in steps:
            yield FaultSpec(model=model, trigger_step=step,
                            region=f"region:{profile.region_at(step)}")
    else:  # pragma: no cover - guarded by callers
        raise FaultSimError(f"{model} is not a step-triggered model")


def enumerate_time_model(spec: ExhaustiveSpec, model: str) -> List[FaultSpec]:
    """The deterministic window grid of one time-triggered model.

    Checkpoint-image models place ``ckpt_windows`` trigger times evenly
    inside the window (the same interior spread the sampler uses) and
    cross them with every image-prefix word — and, for corruption, every
    enumerated bit.  Signal models place ``signal_slots`` triggers over
    the first 90% of the window, mirroring the sampler's exclusion of the
    dead tail where a forged event can no longer change anything.
    """
    duration = spec.victim.duration_s
    plan: List[FaultSpec] = []
    if model == CKPT_CORRUPT:
        for index in range(spec.ckpt_windows):
            t = duration * (index + 1) / (spec.ckpt_windows + 1)
            for target in range(IMAGE_PREFIX_WORDS):
                for bit in spec.bits:
                    plan.append(FaultSpec(
                        model=model, trigger_time_s=t, target=target,
                        bit=bit, region=f"img:{image_word_label(target)}"))
    elif model == CKPT_TRUNCATE:
        for index in range(spec.ckpt_windows):
            t = duration * (index + 1) / (spec.ckpt_windows + 1)
            for cut in range(IMAGE_PREFIX_WORDS):
                plan.append(FaultSpec(model=model, trigger_time_s=t,
                                      target=cut, region="img:partial"))
    elif model in (SIGNAL_DROP, SIGNAL_SPURIOUS):
        for index in range(spec.signal_slots):
            t = duration * 0.9 * (index + 0.5) / spec.signal_slots
            plan.append(FaultSpec(model=model, trigger_time_s=t,
                                  region="signal"))
    else:  # pragma: no cover - guarded by callers
        raise FaultSimError(f"{model} is not a time-triggered model")
    return plan
