"""Golden-state capture: one reference run, snapshotted for forking.

The exhaustive mapper's cost model hinges on never re-running the golden
prefix: a :class:`GoldenTrace` records, from a single stable-power
reference execution, the per-step program counters and region ids (what
the reduction passes reason over) plus a :class:`~repro.runtime.machine.
MachineSnapshot` every ``snapshot_stride`` steps (what injected forks
restore from).  A fault triggered at step ``s`` costs
``s mod stride`` catch-up steps plus its post-injection tail instead of
``s`` steps of golden prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..faultsim.explorer import ExecutionProfile
from ..faultsim.models import FaultSimError
from ..runtime import Machine, MachineSnapshot

#: Stable-power capture stop: no bundled workload iteration comes close.
_TRACE_STEP_CAP = 500_000

#: Post-injection step allowance beyond the doubled golden length.  A
#: fork that has not halted after twice the golden run plus this slack
#: has lost forward progress (the stable-power notion of a hang).
HANG_SLACK_STEPS = 256


@dataclass
class GoldenTrace:
    """One fault-free reference execution, indexed for forking.

    ``pcs[s]`` is the program counter *before* step ``s`` executes;
    ``snapshots[k]`` is the machine state before step ``k * stride``.
    ``budget`` is the absolute step allowance every injected fork runs
    under — identical for all forks of one victim, so hang classification
    cannot depend on which snapshot a fork happened to start from.
    """

    pcs: List[int]
    profile: ExecutionProfile
    snapshots: List[MachineSnapshot]
    stride: int
    golden_out: Tuple[int, ...]
    golden_steps: int
    golden_cycles: int
    budget: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.budget:
            self.budget = 2 * self.golden_steps + HANG_SLACK_STEPS

    def snapshot_before(self, step: int) -> MachineSnapshot:
        """The nearest captured state at or before ``step``."""
        return self.snapshots[min(step // self.stride,
                                  len(self.snapshots) - 1)]


def capture_trace(linked, snapshot_stride: int,
                  max_steps: int = _TRACE_STEP_CAP) -> GoldenTrace:
    """Run one stable-power reference execution, recording everything.

    Single-steps the reference interpreter (the semantics oracle both
    backends match byte-for-byte), so the trace is valid for forks
    resumed under either backend.
    """
    machine = Machine(linked)
    pcs: List[int] = []
    regions: List[int] = []
    snapshots: List[MachineSnapshot] = []
    while not machine.halted and len(pcs) < max_steps:
        if len(pcs) % snapshot_stride == 0:
            snapshots.append(machine.snapshot())
        pcs.append(machine.pc)
        regions.append(machine.read_word("__region_cur"))
        machine.step()
    if not machine.halted:
        raise FaultSimError(
            f"golden capture did not halt within {max_steps} steps")
    return GoldenTrace(
        pcs=pcs,
        profile=ExecutionProfile(regions=regions),
        snapshots=snapshots,
        stride=snapshot_stride,
        golden_out=tuple(machine.committed_out),
        golden_steps=machine.instr_count,
        golden_cycles=machine.cycles,
    )
