"""The exhaustive mapper: forked simulation of every surviving injection.

Orchestration of one :class:`~repro.exhaustive.space.ExhaustiveSpec`:

1. capture the golden trace (:mod:`repro.exhaustive.trace`) and reduce
   the step-model spaces (:mod:`repro.exhaustive.reduce`);
2. resolve every surviving representative against the content-addressed
   :class:`~repro.store.ResultStore` (key:
   :func:`~repro.store.digest.run_digest` over program digest + victim +
   fault + budget — deliberately backend-free, both backends are
   byte-identical);
3. fan the missing representatives out through
   :class:`~repro.eval.resilient.ResilientExecutor` in deterministic
   chunks, each fork restored from the nearest golden snapshot instead
   of re-running from reset, then store the fresh classifications;
4. run the time-triggered models as a deterministic-grid campaign over
   :class:`~repro.eval.campaign.CampaignRunner` (which brings its own
   store memoization and resilient fan-out);
5. emit one :class:`~repro.faultsim.report.VulnerabilityMap` with
   records in canonical enumeration order — byte-identical to the naive
   from-reset enumeration, just ~10–100× fewer simulations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..eval.campaign import AttackSpec, CampaignRunner, ExperimentSpec, PathSpec
from ..eval.resilient import ResilientExecutor, RetryPolicy
from ..faultsim.classify import Outcome, classify
from ..faultsim.explorer import EXCERPT_EVENTS
from ..faultsim.models import FaultSimError, FaultSpec
from ..faultsim.report import VulnerabilityMap
from ..ir.liveness import linked_liveness
from ..runtime import Machine, backend_for, drain
from ..store.digest import content_digest, run_digest
from .reduce import ReducedPlan, RepKey, naive_step_plan, reduce_step_model
from .report import ExhaustiveResult, ReductionStats
from .space import ExhaustiveSpec, enumerate_time_model
from .trace import GoldenTrace, capture_trace

#: Representatives per executor task: large enough to amortize dispatch,
#: small enough that a pool keeps every worker busy.
CHUNK_SIZE = 64

#: One simulated representative's classification: (outcome value, error).
Verdict = Tuple[str, Optional[str]]


def program_digest(linked) -> str:
    """Content identity of a linked program (store-key component)."""
    return content_digest({
        "code": [str(instr) for instr in linked.instrs],
        "entry": linked.entry,
        "init": list(linked.init_words),
    })


def injection_digest(prog_digest: str, scheme: str, workload: str,
                     fault: FaultSpec, budget: int) -> str:
    """Store key of one stable-power injection classification.

    Content-only, like every :func:`run_digest` key: no campaign name,
    no backend (classifications are backend-independent by the repo's
    bit-identity guarantee), no grid index — so any client that ever
    classified this injection against this program serves it warm.
    """
    return run_digest({
        "kind": "exhaustive-injection",
        "program": prog_digest,
        "scheme": scheme,
        "workload": workload,
        "budget": budget,
        "fault": fault.to_dict(),
    })


def classify_fork(linked, backend, trace: GoldenTrace, fault: FaultSpec,
                  from_reset: bool = False) -> Verdict:
    """Run one injection on stable power and classify its end state.

    The fork restores the nearest golden snapshot at or before the
    trigger (or starts from reset when ``from_reset``), arms the standard
    one-shot :class:`~repro.faultsim.injector.FaultInjector`, and drains
    under the trace's shared absolute step budget:

    * trap (``MachineFault``/``SimulationError``) -> ``brick``;
    * budget exhausted without halting -> ``hang``;
    * halted with committed output != golden -> ``sdc``;
    * halted with golden output -> ``masked``.

    ``detected`` cannot occur on stable power: no monitor, no runtime
    recovery machinery is in the loop.
    """
    from ..faultsim.injector import FaultInjector

    machine = Machine(linked)
    if not from_reset:
        machine.restore(trace.snapshot_before(fault.trigger_step))
    machine.attach(fault_hook=FaultInjector(fault))
    exc = drain(machine, backend, trace.budget - machine.instr_count)
    if exc is not None:
        return Outcome.BRICK.value, f"{type(exc).__name__}: {exc}"
    if not machine.halted:
        return Outcome.HANG.value, None
    if tuple(machine.committed_out) != trace.golden_out:
        return Outcome.SDC.value, None
    return Outcome.MASKED.value, None


# ----------------------------------------------------------------------
# Worker side (multiprocessing pool).
# ----------------------------------------------------------------------

_WORKER: Dict[str, object] = {}


def _fork_init(victim, snapshot_stride: int, from_reset: bool) -> None:
    """Pool initializer: rebuild compile + golden trace per worker.

    Everything crosses the pickle boundary as plain config; the worker
    compiles its own artifact and re-captures the (deterministic) golden
    trace, exactly like campaign workers rebuild their simulators.
    """
    compiled = victim.compile()
    _WORKER["linked"] = compiled.linked
    _WORKER["backend"] = backend_for(victim.backend)
    _WORKER["trace"] = capture_trace(compiled.linked, snapshot_stride)
    _WORKER["from_reset"] = from_reset


def _simulate_chunk(payload: dict) -> List[List[Optional[str]]]:
    """Executor task: classify one chunk of representative injections."""
    linked = _WORKER["linked"]
    backend = _WORKER["backend"]
    trace = _WORKER["trace"]
    from_reset = _WORKER["from_reset"]
    out: List[List[Optional[str]]] = []
    for data in payload["faults"]:
        outcome, error = classify_fork(linked, backend, trace,
                                       FaultSpec.from_dict(data),
                                       from_reset=from_reset)
        out.append([outcome, error])
    return out


# ----------------------------------------------------------------------
# Driver side.
# ----------------------------------------------------------------------

def _simulate_representatives(spec: ExhaustiveSpec,
                              reps: List[Tuple[RepKey, FaultSpec]],
                              prog_digest: str, budget: int,
                              workers: int, naive: bool, store,
                              policy: Optional[RetryPolicy],
                              stats: ReductionStats
                              ) -> Dict[RepKey, Verdict]:
    """Classify every representative, store-first then simulate."""
    verdicts: Dict[RepKey, Verdict] = {}
    missing: List[Tuple[RepKey, FaultSpec]] = []
    victim = spec.victim
    for key, fault in reps:
        digest = injection_digest(prog_digest, victim.scheme,
                                  victim.workload, fault, budget)
        entry = store.get(digest) if store is not None else None
        if entry is not None:
            value = entry["value"]
            verdicts[key] = (value["outcome"], value.get("error"))
            stats.store_hits += 1
        else:
            missing.append((key, fault))
    if not missing:
        return verdicts

    chunks = [missing[i:i + CHUNK_SIZE]
              for i in range(0, len(missing), CHUNK_SIZE)]
    executor = ResilientExecutor(
        _simulate_chunk, workers=workers, policy=policy,
        initializer=_fork_init,
        initargs=(victim, spec.snapshot_stride, naive),
    )
    tasks = [(index, {"faults": [fault.to_dict() for _, fault in chunk]})
             for index, chunk in enumerate(chunks)]
    for result in executor.run(tasks):
        if not result.ok:
            raise FaultSimError(
                f"exhaustive chunk {result.index} failed: {result.error}")
        chunk = chunks[result.index]
        for (key, fault), (outcome, error) in zip(chunk, result.result):
            verdicts[key] = (outcome, error)
            stats.simulated += 1
            if store is not None:
                digest = injection_digest(prog_digest, victim.scheme,
                                          victim.workload, fault, budget)
                if store.put(digest, {"outcome": outcome, "error": error}):
                    stats.store_puts += 1
    return verdicts


def _run_time_models(spec: ExhaustiveSpec, models: Tuple[str, ...],
                     runner: CampaignRunner, stats: ReductionStats
                     ) -> Dict[str, List[Tuple[FaultSpec, str,
                                               Optional[str], List[dict]]]]:
    """Grid-campaign the time-triggered models, classified per injection."""
    plans = {model: enumerate_time_model(spec, model) for model in models}
    flat: List[FaultSpec] = [f for model in models for f in plans[model]]
    stats.campaign_points = len(flat)
    experiment = ExperimentSpec(
        name=f"{spec.name}:{spec.victim.workload}:{spec.victim.scheme}",
        victim=spec.victim,
        attack=AttackSpec.silent(),
        path=PathSpec.remote(),
        sweep={"fault": flat},
        baseline=True,
        telemetry=True,
    )
    campaign = runner.run(experiment)
    stats.campaign_store_hits = campaign.stats.store_hits
    stats.campaign_executed = campaign.stats.store_misses \
        if runner.store is not None else len(flat)
    classified: Dict[FaultSpec, Tuple[str, Optional[str], List[dict]]] = {}
    for outcome in campaign.outcomes:
        fault = outcome.params["fault"]
        if outcome.baseline is None:
            raise FaultSimError(
                f"golden reference failed: "
                f"{campaign.baselines[0].error or 'missing baseline'}")
        events = outcome.result.events[-EXCERPT_EVENTS:] \
            if outcome.result is not None else []
        verdict = classify(outcome.result, outcome.baseline, outcome.error,
                           error_kind=outcome.error_kind)
        classified[fault] = (verdict.value, outcome.error, events)
    return {model: [(fault,) + classified[fault] for fault in plans[model]]
            for model in models}


def exhaustive_map(spec: ExhaustiveSpec, workers: int = 1,
                   naive: bool = False, store=None,
                   runner: Optional[CampaignRunner] = None,
                   policy: Optional[RetryPolicy] = None
                   ) -> ExhaustiveResult:
    """Produce one complete vulnerability map for one victim.

    ``naive=True`` disables every reduction layer and snapshot forking —
    each enumerated step-model injection is simulated from reset.  The
    result must be byte-identical (map fingerprint) to the reduced run;
    the differential tests and the CI smoke assert exactly that.
    Store-backed memoization stays off in naive mode so the comparison
    actually simulates.
    """
    step_models = spec.step_models()
    time_models = spec.time_models()
    if naive:
        store = None
    if runner is None and time_models:
        runner = CampaignRunner(workers=workers, policy=policy, store=store)

    if runner is not None:
        key = spec.victim.compile_key()
        compiled = runner.compile_cache.get(key)
        if compiled is None:
            compiled = spec.victim.compile()
            runner.compile_cache[key] = compiled
    else:
        compiled = spec.victim.compile()
    linked = compiled.linked

    stats = ReductionStats(naive=naive)
    plans: Dict[str, ReducedPlan] = {}
    verdicts: Dict[RepKey, Verdict] = {}
    trace: Optional[GoldenTrace] = None
    if step_models:
        trace = capture_trace(linked, spec.snapshot_stride)
        stats.golden_steps = trace.golden_steps
        liveness = linked_liveness(linked)
        prog_digest = program_digest(linked)
        reps: List[Tuple[RepKey, FaultSpec]] = []
        for model in step_models:
            plan = naive_step_plan(spec, model, trace) if naive \
                else reduce_step_model(spec, model, trace, liveness, linked)
            plans[model] = plan
            stats.enumerated[model] = plan.enumerated
            for reason, count in plan.layers.items():
                stats.layers[reason] = stats.layers.get(reason, 0) + count
            reps.extend(plan.representatives.items())
        stats.representatives = len(reps)
        verdicts = _simulate_representatives(
            spec, reps, prog_digest, trace.budget, workers, naive, store,
            policy, stats)

    time_records = {}
    if time_models:
        time_records = _run_time_models(spec, time_models, runner, stats)
        for model in time_models:
            stats.enumerated[model] = len(time_records[model])

    vmap = VulnerabilityMap(scheme=spec.victim.scheme,
                            workload=spec.victim.workload, seed=0)
    for model in spec.models:
        if model in plans:
            for fault, key in plans[model].entries:
                if key is None:
                    vmap.add(fault, Outcome.MASKED)
                else:
                    outcome, error = verdicts[key]
                    vmap.add(fault, Outcome(outcome), error=error)
        elif model in time_records:
            for fault, outcome, error, events in time_records[model]:
                vmap.add(fault, Outcome(outcome), error=error,
                         events=events)
    return ExhaustiveResult(spec=spec, map=vmap, stats=stats)
