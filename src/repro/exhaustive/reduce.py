"""Fault-space reduction: classify without simulating, collapse the rest.

ARMORY's tractability result is that most of an exhaustive fault space
never needs a simulator.  Three layers, applied in order to each
enumerated step-model injection:

1. **Static liveness pruning** — :func:`repro.ir.liveness.linked_liveness`
   proves the targeted register dead at the injection pc: no path of the
   whole program reads it before redefining it, so the flip is ``masked``
   by construction.

2. **Dynamic next-access analysis** — the golden trace knows exactly
   which instruction touches the register next.  If nothing ever touches
   it again, or the next touch is a pure redefinition, the flip is
   ``masked``: execution between injection and that point cannot depend
   on the flipped value (any dependence would be a read), so the fork
   replays the golden path and the flip is erased or never observed.

3. **Equivalence-class collapsing** — flips of the same register bit at
   different steps whose next *read* is the same instruction instance
   produce byte-identical machine states at that read (golden state plus
   the same one-bit XOR), hence byte-identical continuations.  One
   representative — injected immediately before the shared read — is
   simulated; its outcome is attributed to every member.  Soundness
   requires the absolute step budget every fork runs under to be shared
   (see :class:`~repro.exhaustive.trace.GoldenTrace.budget`), so hang
   classification agrees across a class by construction.

``instr_skip`` gets the static layer only: skipping a ``NOP``, or a pure
value-producing instruction whose destination is statically dead, charges
the same cycles and advances the same pc as executing it — ``masked``
with no simulation.  Skips with architectural effect are all simulated
(two dynamic skip contexts are never provably equivalent: the skipped
instruction's effect depends on the full machine state).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.liveness import LinkedLiveness
from ..isa.instructions import BINOPS, UNOPS, Opcode
from ..isa.operands import NUM_REGS
from ..faultsim.models import FaultSimError, FaultSpec, INSTR_SKIP, REG_FLIP
from .space import ExhaustiveSpec, enumerate_step_model
from .trace import GoldenTrace

#: Opcodes whose only architectural effect is writing their destination
#: register (skipping one with a dead destination is a no-op: same pc
#: advance, same cycle charge, stale-but-unread destination).
PURE_SKIP_OPS = BINOPS | UNOPS | frozenset({Opcode.LI, Opcode.LD})

#: A representative key: ("flip", reg, read_step, bit) or ("skip", step).
RepKey = Tuple


@dataclass
class ReducedPlan:
    """One step-model space after reduction, in enumeration order.

    ``entries`` pairs every enumerated injection with either ``None``
    (analytically ``masked``) or the key of the representative whose
    simulated outcome it inherits.  ``representatives`` maps each key to
    the one :class:`FaultSpec` actually simulated, insertion-ordered so
    chunked fan-out stays deterministic.
    """

    model: str
    entries: List[Tuple[FaultSpec, Optional[RepKey]]]
    representatives: Dict[RepKey, FaultSpec]
    #: Per-layer accounting: reason -> injection count.
    layers: Dict[str, int] = field(default_factory=dict)

    @property
    def enumerated(self) -> int:
        return len(self.entries)


class _AccessIndex:
    """Per-register access timeline of a golden trace.

    For register ``r`` and step ``s``: the first step ``t >= s`` whose
    instruction touches ``r``, and whether that touch reads it.  An
    instruction both reading and writing ``r`` (``ADD r, r, 1``) counts
    as a read — the flipped value flows into it.
    """

    def __init__(self, trace: GoldenTrace, program) -> None:
        use_mask = [0] * len(program.instrs)
        def_mask = [0] * len(program.instrs)
        for pc, instr in enumerate(program.instrs):
            for reg in instr.uses():
                use_mask[pc] |= 1 << reg.index
            for reg in instr.defs():
                def_mask[pc] |= 1 << reg.index
        self._steps: List[List[int]] = [[] for _ in range(NUM_REGS)]
        self._reads: List[List[bool]] = [[] for _ in range(NUM_REGS)]
        for step, pc in enumerate(trace.pcs):
            touched = use_mask[pc] | def_mask[pc]
            reg = 0
            while touched:
                if touched & 1:
                    self._steps[reg].append(step)
                    self._reads[reg].append(bool(use_mask[pc] >> reg & 1))
                touched >>= 1
                reg += 1

    def next_access(self, reg: int, step: int
                    ) -> Tuple[Optional[int], bool]:
        """(step of the first access at/after ``step``, is it a read)."""
        steps = self._steps[reg]
        i = bisect.bisect_left(steps, step)
        if i == len(steps):
            return None, False
        return steps[i], self._reads[reg][i]


def reduce_reg_flips(spec: ExhaustiveSpec, trace: GoldenTrace,
                     liveness: LinkedLiveness, program) -> ReducedPlan:
    """Reduce the full reg_flip space of one victim."""
    index = _AccessIndex(trace, program)
    entries: List[Tuple[FaultSpec, Optional[RepKey]]] = []
    reps: Dict[RepKey, FaultSpec] = {}
    layers = {"liveness_pruned": 0, "dead_tail_pruned": 0,
              "overwritten_pruned": 0, "class_attributed": 0,
              "representatives": 0}
    resolved: Dict[Tuple[int, int], Tuple[str, Optional[int]]] = {}
    for fault in enumerate_step_model(spec, REG_FLIP, trace.profile):
        step, reg = fault.trigger_step, fault.target
        verdict = resolved.get((step, reg))
        if verdict is None:
            if not liveness.is_live_before(trace.pcs[step], reg):
                verdict = ("liveness_pruned", None)
            else:
                access, is_read = index.next_access(reg, step)
                if access is None:
                    verdict = ("dead_tail_pruned", None)
                elif not is_read:
                    verdict = ("overwritten_pruned", None)
                else:
                    verdict = ("read", access)
            resolved[(step, reg)] = verdict
        kind, read_step = verdict
        if kind != "read":
            layers[kind] += 1
            entries.append((fault, None))
            continue
        key: RepKey = ("flip", reg, read_step, fault.bit)
        if key not in reps:
            region = f"region:{trace.profile.region_at(read_step)}"
            reps[key] = FaultSpec(model=REG_FLIP, trigger_step=read_step,
                                  target=reg, bit=fault.bit, region=region)
            layers["representatives"] += 1
        else:
            layers["class_attributed"] += 1
        entries.append((fault, key))
    return ReducedPlan(model=REG_FLIP, entries=entries,
                       representatives=reps, layers=layers)


def reduce_instr_skips(spec: ExhaustiveSpec, trace: GoldenTrace,
                       liveness: LinkedLiveness, program) -> ReducedPlan:
    """Reduce the instr_skip space (static dead-effect pruning only)."""
    entries: List[Tuple[FaultSpec, Optional[RepKey]]] = []
    reps: Dict[RepKey, FaultSpec] = {}
    layers = {"dead_skip_pruned": 0, "representatives": 0}
    for fault in enumerate_step_model(spec, INSTR_SKIP, trace.profile):
        pc = trace.pcs[fault.trigger_step]
        instr = program.instrs[pc]
        dead_def = (instr.op in PURE_SKIP_OPS
                    and not liveness.live_out[pc] >> instr.dst.index & 1)
        if instr.op is Opcode.NOP or dead_def:
            layers["dead_skip_pruned"] += 1
            entries.append((fault, None))
            continue
        key: RepKey = ("skip", fault.trigger_step)
        reps[key] = fault
        layers["representatives"] += 1
        entries.append((fault, key))
    return ReducedPlan(model=INSTR_SKIP, entries=entries,
                       representatives=reps, layers=layers)


def naive_step_plan(spec: ExhaustiveSpec, model: str,
                    trace: GoldenTrace) -> ReducedPlan:
    """The un-reduced ground truth: every injection is its own
    representative, simulated from reset."""
    entries: List[Tuple[FaultSpec, Optional[RepKey]]] = []
    reps: Dict[RepKey, FaultSpec] = {}
    for i, fault in enumerate(enumerate_step_model(spec, model,
                                                   trace.profile)):
        key: RepKey = ("naive", model, i)
        reps[key] = fault
        entries.append((fault, key))
    return ReducedPlan(model=model, entries=entries, representatives=reps,
                       layers={"representatives": len(reps)})


def reduce_step_model(spec: ExhaustiveSpec, model: str, trace: GoldenTrace,
                      liveness: LinkedLiveness, program) -> ReducedPlan:
    if model == REG_FLIP:
        return reduce_reg_flips(spec, trace, liveness, program)
    if model == INSTR_SKIP:
        return reduce_instr_skips(spec, trace, liveness, program)
    raise FaultSimError(f"{model} is not a step-triggered model")
