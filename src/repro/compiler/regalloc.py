"""Linear-scan register allocation onto the 12 allocatable registers.

Virtual registers are mapped to R4..R15.  Registers live across a ``CALL``
are force-spilled because the callee freely reuses the physical register
file (caller-save-everything, the simple convention small MCU compilers
use).  Spilled values get a slot in the function's static frame; every use
reloads into one of the scratch registers R1..R3 and every definition
stores back.

Spilling keeps programs correct under any register pressure, and — relevant
to this paper — spill traffic is ordinary NVM memory traffic, so it
participates in idempotent-region formation exactly like program stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import CompileError
from ..isa.instructions import Instr, Opcode
from ..isa.operands import ALLOCATABLE, Imm, PReg, SCRATCH, Sym, VReg
from ..ir.cfg import Function
from ..ir.liveness import live_intervals


@dataclass
class AllocationResult:
    """Outcome of register allocation for one function."""

    assignment: Dict[VReg, PReg] = field(default_factory=dict)
    spilled: Dict[VReg, int] = field(default_factory=dict)  # vreg -> frame slot

    @property
    def spill_count(self) -> int:
        return len(self.spilled)


def allocate_function(function: Function) -> AllocationResult:
    """Rewrite ``function`` in place so it only mentions physical registers."""
    intervals = {
        reg: span for reg, span in live_intervals(function).items()
        if isinstance(reg, VReg)
    }
    call_points = _call_points(function)

    result = AllocationResult()
    for vreg, (start, end) in intervals.items():
        if any(start < point < end for point in call_points):
            result.spilled[vreg] = function.alloc_frame(1)

    # Classic linear scan over the remaining candidates.
    candidates = sorted(
        (reg for reg in intervals if reg not in result.spilled),
        key=lambda reg: intervals[reg],
    )
    active: List[VReg] = []
    free: List[int] = sorted(ALLOCATABLE, reverse=True)

    def expire(point: int) -> None:
        for reg in list(active):
            if intervals[reg][1] < point:
                active.remove(reg)
                free.append(result.assignment[reg].index)
                free.sort(reverse=True)

    for vreg in candidates:
        start, end = intervals[vreg]
        expire(start)
        if free:
            result.assignment[vreg] = PReg(free.pop())
            active.append(vreg)
            continue
        # Spill the active interval ending last (or this one).
        victim = max(active, key=lambda reg: intervals[reg][1])
        if intervals[victim][1] > end:
            result.assignment[vreg] = result.assignment.pop(victim)
            active.remove(victim)
            active.append(vreg)
            result.spilled[victim] = function.alloc_frame(1)
        else:
            result.spilled[vreg] = function.alloc_frame(1)

    _rewrite(function, result)
    return result


def _call_points(function: Function) -> List[int]:
    """Linear positions of CALL instructions (matching live-interval numbering)."""
    points: List[int] = []
    counter = 0
    for name in function.block_order:
        for instr in function.blocks[name].instrs:
            if instr.op is Opcode.CALL:
                points.append(counter)
            counter += 1
    return points


def _rewrite(function: Function, result: AllocationResult) -> None:
    frame = Sym(function.frame_symbol)
    for name in function.block_order:
        block = function.blocks[name]
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            mapping: Dict[VReg, PReg] = {}
            reloads: List[Instr] = []
            spill_stores: List[Instr] = []
            scratch_pool = list(SCRATCH)

            def scratch() -> PReg:
                if not scratch_pool:
                    raise CompileError("out of scratch registers during spill")
                return PReg(scratch_pool.pop(0))

            for reg in instr.uses():
                if not isinstance(reg, VReg) or reg in mapping:
                    continue
                if reg in result.spilled:
                    temp = scratch()
                    mapping[reg] = temp
                    reloads.append(
                        Instr(Opcode.LD, dst=temp, sym=frame,
                              off=Imm(result.spilled[reg]))
                    )
                else:
                    mapping[reg] = result.assignment[reg]
            for reg in instr.defs():
                if not isinstance(reg, VReg):
                    continue
                if reg in result.spilled:
                    if reg not in mapping:  # reuse the reload temp if any
                        mapping[reg] = scratch()
                    spill_stores.append(
                        Instr(Opcode.ST, a=mapping[reg], sym=frame,
                              off=Imm(result.spilled[reg]))
                    )
                elif reg not in mapping:
                    mapping[reg] = result.assignment[reg]

            new_instrs.extend(reloads)
            new_instrs.append(instr.replace_regs(dict(mapping)))
            new_instrs.extend(spill_stores)
        block.instrs = new_instrs

    # Terminators must stay block-final: spill stores after a BNZ/JMP would
    # be misplaced, but branches never define registers, so only reloads
    # (which go before) can be attached to them.  Verify that invariant.
    function.verify()


def allocate_module(module) -> Dict[str, AllocationResult]:
    """Allocate every function of an IR module; returns per-function results."""
    return {
        name: allocate_function(function)
        for name, function in module.functions.items()
    }
