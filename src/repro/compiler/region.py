"""Idempotent region formation (paper §VI-B).

A region boundary is a ``MARK`` instruction.  At runtime a boundary commits
the program's progress (region id, re-entry PC, buffered I/O, sensor
cursor); between boundaries the code must be *idempotent* — re-executable
from the boundary with identical results.

The pass places boundaries:

1. at every function entry (a call ends the caller's region);
2. in every loop header (the paper's rule for loops);
3. immediately before and after every ``CALL`` and I/O operation
   (calls/interrupts/I-O are their own regions);
4. before any store that closes an *unprotected* memory anti-dependence —
   i.e. a load -> may-alias store pair with a MARK-free path between them
   that is not WARAW-protected by a dominating same-word store in the same
   region.

The pass is re-runnable: running it again after WCET splitting restores
idempotence when a split broke a WARAW protection (§VI-B, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import Instr, Opcode, mark
from ..ir.cfg import Function, Module
from ..ir.dependence import AntiDep, memory_antideps

Site = Tuple[str, int]


@dataclass
class RegionStats:
    """Bookkeeping produced by formation, useful for reports and tests."""

    boundaries: int = 0
    antidep_cuts: int = 0
    loop_headers: int = 0
    call_boundaries: int = 0
    io_boundaries: int = 0


def form_regions(function: Function, loop_headers: bool = False) -> RegionStats:
    """Insert region boundaries into ``function`` (in place).

    ``loop_headers=True`` reproduces Ratchet's placement: an unconditional
    boundary at the top of every loop, paying one commit per iteration.
    GECKO's configuration (the default) relies on the anti-dependence cuts
    alone — a loop whose body is WAR-free stays inside one region and is
    simply re-executed from the region entry after a crash; loop-carried
    WARs are cut where they occur, and WCET splitting bounds region length.
    This is the main source of GECKO's low overhead relative to Ratchet
    (Fig. 11).
    """
    stats = RegionStats()
    _insert_mandatory_boundaries(function, stats, loop_headers=loop_headers)
    _cut_antidependences(function, stats)
    stats.boundaries = sum(
        1 for _, _, instr in function.instructions() if instr.op is Opcode.MARK
    )
    return stats


def form_module_regions(module: Module,
                        loop_headers: bool = False) -> Dict[str, RegionStats]:
    """Run region formation over every function of a module."""
    return {
        name: form_regions(fn, loop_headers=loop_headers)
        for name, fn in module.functions.items()
    }


# ----------------------------------------------------------------------
# Mandatory boundaries.
# ----------------------------------------------------------------------
def _insert_mandatory_boundaries(function: Function, stats: RegionStats,
                                 loop_headers: bool = False) -> None:
    from ..ir.loops import find_loops

    # Function entry.
    entry = function.blocks[function.entry]
    if not entry.instrs or entry.instrs[0].op is not Opcode.MARK:
        entry.instrs.insert(0, mark(0))

    # Loop headers (Ratchet placement only; see form_regions).
    if loop_headers:
        for loop in find_loops(function):
            header = function.blocks[loop.header]
            if header.instrs and header.instrs[0].op is Opcode.MARK:
                continue
            header.instrs.insert(0, mark(0))
            stats.loop_headers += 1

    # Calls and I/O: a boundary immediately before and after each.
    for name in list(function.block_order):
        block = function.blocks[name]
        rebuilt: List[Instr] = []
        previous: Optional[Instr] = None
        for instr in block.instrs:
            boundary_kind = None
            if instr.op is Opcode.CALL:
                boundary_kind = "call"
            elif instr.is_io:
                boundary_kind = "io"
            if boundary_kind is not None:
                if previous is None or previous.op is not Opcode.MARK:
                    rebuilt.append(mark(0))
                    _bump(stats, boundary_kind)
                rebuilt.append(instr)
                rebuilt.append(mark(0))
                _bump(stats, boundary_kind)
                previous = rebuilt[-1]
                continue
            if instr.op is Opcode.MARK and previous is not None \
                    and previous.op is Opcode.MARK:
                continue  # collapse adjacent boundaries
            rebuilt.append(instr)
            previous = instr
        block.instrs = rebuilt


def _bump(stats: RegionStats, kind: str) -> None:
    if kind == "call":
        stats.call_boundaries += 1
    else:
        stats.io_boundaries += 1


# ----------------------------------------------------------------------
# Anti-dependence cuts.
# ----------------------------------------------------------------------
def _cut_antidependences(function: Function, stats: RegionStats) -> None:
    # Sites shift as MARKs are inserted, so recompute until stable.
    for _ in range(10_000):
        dep = _first_unsatisfied(function)
        if dep is None:
            return
        block = function.blocks[dep.store[0]]
        block.instrs.insert(dep.store[1], mark(0))
        stats.antidep_cuts += 1
    raise RuntimeError("anti-dependence cutting failed to converge")


def _first_unsatisfied(function: Function) -> Optional[AntiDep]:
    for dep in memory_antideps(function):
        if _is_satisfied(function, dep):
            continue
        return dep
    return None


def unsatisfied_antideps(function: Function) -> List[AntiDep]:
    """Anti-dependences not yet separated by a boundary (invariant 2 check).

    Empty on a correctly formed function; later passes that insert MARKs
    (WCET splitting, coloring conflict repair) can re-introduce violations
    by breaking WARAW protections, and re-check with this.
    """
    return [
        dep for dep in memory_antideps(function)
        if not _is_satisfied(function, dep)
    ]


def _is_satisfied(function: Function, dep: AntiDep) -> bool:
    """A pair is fine if every load->store path crosses a MARK, or WARAW holds."""
    if not _markfree_path_exists(function, dep.load, dep.store):
        return True
    for protector in dep.protectors:
        # WARAW protection is valid only while the protecting store shares
        # the load's region on every path: no MARK between them.
        if not _marked_path_exists(function, protector, dep.load):
            return True
    return False


def _next_sites(function: Function, site: Site) -> List[Site]:
    block, index = site
    instrs = function.blocks[block].instrs
    instr = instrs[index]
    if instr.op is Opcode.JMP:
        return [(instr.target.name, 0)]
    if instr.op is Opcode.BNZ:
        return [(instr.target.name, 0), (block, index + 1)]
    if instr.op in (Opcode.RET, Opcode.HALT):
        return []
    if index + 1 < len(instrs):
        return [(block, index + 1)]
    return []


def _markfree_path_exists(function: Function, src: Site, dst: Site) -> bool:
    """Is there a path from just after ``src`` to ``dst`` crossing no MARK?"""
    seen: Set[Site] = set()
    stack = _next_sites(function, src)
    while stack:
        site = stack.pop()
        if site in seen:
            continue
        seen.add(site)
        if site == dst:
            return True
        instr = function.blocks[site[0]].instrs[site[1]]
        if instr.op is Opcode.MARK:
            continue
        stack.extend(_next_sites(function, site))
    return False


def _marked_path_exists(function: Function, src: Site, dst: Site) -> bool:
    """Is there a path from after ``src`` to ``dst`` that crosses a MARK?"""
    seen: Set[Tuple[Site, bool]] = set()
    stack = [(site, False) for site in _next_sites(function, src)]
    while stack:
        site, crossed = stack.pop()
        if (site, crossed) in seen:
            continue
        seen.add((site, crossed))
        if site == dst and crossed:
            return True
        instr = function.blocks[site[0]].instrs[site[1]]
        here = crossed or instr.op is Opcode.MARK
        for nxt in _next_sites(function, site):
            stack.append((nxt, here))
    return False


def renumber_regions(module: Module) -> int:
    """Assign globally unique ids to every MARK; returns the region count."""
    next_id = 1
    for name in sorted(module.functions):
        function = module.functions[name]
        for bname in function.block_order:
            for instr in function.blocks[bname].instrs:
                if instr.op is Opcode.MARK:
                    instr.region = next_id
                    next_id += 1
    return next_id - 1
