"""WCET-bounded region splitting (paper §VI-B, steps 3-5).

Given the guaranteed power-on budget (cycles the system can execute from a
full capacitor under worst-case draw), every idempotent region must finish
within the budget — otherwise a program running under rollback recovery can
never cross the region and forward progress stalls (exactly the DoS the
paper observes for Ratchet under attack, §VII-B3).

The loop-aware gap analysis (:func:`repro.ir.wcet.region_gap`) reports the
worst MARK-free path, treating small bounded boundary-free loops as single
units so they can legitimately stay within one region.  When the worst gap
exceeds the budget the pass inserts a boundary:

* inside a straight-line stretch — right where the running gap would
  exceed the budget;
* for an over-budget boundary-free loop — in the loop header, turning it
  into per-iteration regions (whose bodies are then split further if one
  iteration alone exceeds the budget);
* in the header of a *divergent* loop (a cycle that dodges every MARK on
  some path and has no usable bound).

After splitting, the caller must re-run region formation: a split can
break a WARAW protection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import WCETError
from ..isa.instructions import Instr, Opcode, mark
from ..ir.cfg import Function, Module
from ..ir.wcet import DEFAULT_LOOP_BOUND, GapAnalysis, instr_cycles, region_gap

#: Cycle cost charged for a MARK when budgeting (its own commit stores).
_MARK_COST = mark(0).cycles


def split_regions(function: Function, budget: int,
                  default_bound: int = DEFAULT_LOOP_BOUND) -> int:
    """Insert boundaries so no region exceeds ``budget`` cycles.

    Returns the number of boundaries inserted.

    Raises:
        WCETError: if the budget is unattainable (a single instruction plus
            a boundary costs more than the budget, or splitting failed to
            converge).
    """
    min_needed = _MARK_COST + max(
        (instr.cycles for _, _, instr in function.instructions()), default=0
    )
    if budget < min_needed:
        raise WCETError(
            f"power-on budget {budget} cycles is below the minimum "
            f"splittable region size {min_needed} in {function.name}"
        )

    inserted = 0
    for _ in range(10_000):
        analysis = region_gap(function, default_bound=default_bound)
        if analysis.divergent_loop is not None:
            _insert_mark(function, analysis.divergent_loop, 0)
            inserted += 1
            continue
        if analysis.worst <= budget:
            return inserted
        block, index = _placement(function, analysis, budget)
        _insert_mark(function, block, index)
        inserted += 1
    raise WCETError(f"region splitting did not converge in {function.name}")


def _insert_mark(function: Function, block: str, index: int) -> None:
    function.blocks[block].instrs.insert(index, mark(0))


def _placement(function: Function, analysis: GapAnalysis,
               budget: int) -> tuple:
    """Where to put the next boundary, given the worst-gap witness."""
    block, _index = analysis.witness
    if block in analysis.collapsed:
        # An over-budget boundary-free loop: go per-iteration.
        return block, 0
    preds = function.predecessors()
    for _ in range(len(function.block_order) + 2):
        gap = analysis.gap_in.get(block, 0.0)
        arrival_exceeds = gap + _MARK_COST > budget
        if not arrival_exceeds:
            exceed = _first_exceed(function, block, gap, budget)
            if exceed is not None and exceed > 0:
                return block, exceed
            if exceed is None:
                # The peak is not inside this block after all (stale
                # witness); cut at its end as a safe fallback.
                return block, _block_end_cut(function, block)
        # The gap already exceeds on arrival (or at the first instruction):
        # the cut belongs upstream, in the predecessor feeding the largest
        # gap.  A collapsed-loop predecessor is split at its header.
        scored = []
        for p in preds.get(block, []):
            node = analysis.member_of.get(p, p)
            if node not in analysis.gap_in:
                continue
            if node in analysis.collapsed:
                exit_gap = analysis.gap_in[node] + analysis.collapsed[node]
            else:
                exit_gap = analysis.gap_in[node] + sum(
                    i.cycles for i in function.blocks[node].instrs
                )
            scored.append((exit_gap, node))
        if not scored:
            return block, 0
        _, best = max(scored)
        if best in analysis.collapsed:
            return best, 0
        block = best
        end = _block_end_cut(function, block)
        if end > 0:
            return block, end
    raise WCETError(f"could not place a region split in {function.name}")


def _first_exceed(function: Function, block: str, gap: float,
                  budget: int):
    """First instruction index where the running gap would pass the budget."""
    for i, instr in enumerate(function.blocks[block].instrs):
        if instr.op is Opcode.MARK:
            gap = 0.0
            continue
        if gap + instr.cycles + _MARK_COST > budget:
            return i
        gap += instr.cycles
    return None


def _block_end_cut(function: Function, block: str) -> int:
    """Insertion index just before the block's terminator."""
    instrs = function.blocks[block].instrs
    if len(instrs) >= 2 and instrs[-2].op is Opcode.BNZ:
        return len(instrs) - 2
    return max(0, len(instrs) - 1)


def verify_region_budget(function: Function, budget: int,
                         default_bound: int = DEFAULT_LOOP_BOUND) -> float:
    """Check invariant 5 (region WCET <= budget); returns the worst gap.

    Raises:
        WCETError: when some region can exceed the budget.
    """
    analysis = region_gap(function, default_bound=default_bound)
    if analysis.divergent_loop is not None:
        raise WCETError(
            f"{function.name}: loop at {analysis.divergent_loop} can cycle "
            f"without crossing a region boundary"
        )
    if analysis.worst > budget:
        raise WCETError(
            f"{function.name}: region gap {analysis.worst} exceeds the "
            f"power-on budget {budget}"
        )
    return analysis.worst


def split_module_regions(module: Module, budget: int) -> Dict[str, int]:
    """Split every function's regions; returns per-function insert counts."""
    return {
        name: split_regions(fn, budget)
        for name, fn in module.functions.items()
    }
