"""Checkpoint-store insertion at region boundaries.

Two policies, matching the paper's evaluation configurations:

* ``ratchet`` — checkpoint the *entire* register file at every boundary
  using the dynamic double-buffer (the paper's Ratchet baseline, ~2.4x).
* ``gecko``   — checkpoint only the region's *register inputs* (registers
  live at region entry), the starting point for GECKO's pruning (Fig. 10a,
  "GECKO w/o pruning", ~1.3x).

Checkpoint stores are placed immediately *before* their MARK: the MARK is
the atomic commit record, so a power failure mid-checkpoint leaves the
previously committed region (and its intact buffer color) as the recovery
point.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..isa.instructions import Instr, Opcode, ckpt
from ..isa.operands import NUM_REGS, PReg
from ..ir.cfg import Function, Module
from ..ir.liveness import liveness

#: Registers eligible for checkpointing (R0 is hardwired zero).
CHECKPOINTABLE = tuple(range(1, NUM_REGS))


def insert_checkpoints(function: Function, policy: str = "gecko") -> int:
    """Insert CKPT stores before every MARK; returns how many were added."""
    if policy not in ("gecko", "ratchet"):
        raise ValueError(f"unknown checkpoint policy {policy!r}")
    live = liveness(function, ignore_ckpt_uses=True)
    added = 0
    for name in function.reverse_postorder():
        block = function.blocks[name]
        index = 0
        while index < len(block.instrs):
            instr = block.instrs[index]
            if instr.op is not Opcode.MARK:
                index += 1
                continue
            regs = _inputs_of_boundary(function, live, name, index, policy)
            stores = [ckpt(PReg(r), reg_index=r, color=None) for r in regs]
            block.instrs[index:index] = stores
            added += len(stores)
            index += len(stores) + 1
    return added


def _inputs_of_boundary(function: Function, live, block: str, index: int,
                        policy: str) -> List[int]:
    if policy == "ratchet":
        return list(CHECKPOINTABLE)
    after = live.live_at(function, block, index + 1)
    regs: Set[int] = set()
    for reg in after:
        if isinstance(reg, PReg) and reg.index in CHECKPOINTABLE:
            regs.add(reg.index)
    return sorted(regs)


def insert_module_checkpoints(module: Module, policy: str = "gecko") -> Dict[str, int]:
    """Insert checkpoints in every function; returns per-function counts."""
    return {
        name: insert_checkpoints(fn, policy)
        for name, fn in module.functions.items()
    }


def count_checkpoints(function: Function) -> int:
    """Static number of CKPT stores currently in ``function``."""
    return sum(
        1 for _, _, instr in function.instructions()
        if instr.op is Opcode.CKPT
    )
