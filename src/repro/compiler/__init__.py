"""Compiler substrate: regalloc, codegen, regions, splitting, checkpoints."""

from .checkpoint import (
    count_checkpoints,
    insert_checkpoints,
    insert_module_checkpoints,
)
from .codegen import lower_function, lower_module
from .regalloc import AllocationResult, allocate_function, allocate_module
from .region import (
    RegionStats,
    form_module_regions,
    form_regions,
    renumber_regions,
    unsatisfied_antideps,
)
from .splitting import split_module_regions, split_regions

__all__ = [
    "AllocationResult", "RegionStats", "allocate_function", "allocate_module",
    "count_checkpoints", "form_module_regions", "form_regions",
    "insert_checkpoints", "insert_module_checkpoints", "lower_function",
    "lower_module", "renumber_regions", "split_module_regions",
    "split_regions", "unsatisfied_antideps",
]
