"""Classic middle-end optimizations (GECKO pipeline step 1, §VI-B).

The paper's front end runs "traditional compiler optimizations on the IR"
before region formation.  This module supplies the ones that matter for
this IR's code quality and for the later analyses:

* **global constant propagation + folding** — a flow-insensitive lattice
  over virtual registers (a register is constant when *every* definition
  produces the same known value), iterated with instruction folding;
* **branch folding** — ``BNZ`` on a known condition becomes ``JMP``,
  followed by unreachable-block removal;
* **algebraic simplification** — identities like ``x+0``, ``x*1``,
  ``x*0``, ``x&0``, ``x^0``, ``x<<0``;
* **dead-code elimination** — pure instructions whose destination is never
  used are dropped (liveness-based, iterated to a fixpoint).

Everything runs on the virtual-register IR before allocation, so fewer
live ranges also means less spilling and fewer checkpoint inputs.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..isa.instructions import BINOPS, Instr, Opcode, UNOPS
from ..isa.operands import Imm, VReg, trunc_div, trunc_rem, wrap32
from ..ir.cfg import Function, Module, remove_unreachable
from ..ir.liveness import liveness

#: Sentinel for "not a constant".
_BOTTOM = object()


def optimize_function(function: Function, max_rounds: int = 8) -> Dict[str, int]:
    """Run the full pass pipeline to a fixpoint; returns change counters."""
    stats = {"folded": 0, "branches": 0, "simplified": 0, "dead": 0}
    for _ in range(max_rounds):
        changed = 0
        changed += _propagate_constants(function, stats)
        changed += _simplify_algebra(function, stats)
        changed += _fold_branches(function, stats)
        changed += _eliminate_dead_code(function, stats)
        if not changed:
            break
    return stats


def optimize_module(module: Module) -> Dict[str, Dict[str, int]]:
    """Optimize every function; returns per-function change counters."""
    return {
        name: optimize_function(fn) for name, fn in module.functions.items()
    }


# ----------------------------------------------------------------------
# Constant propagation.
# ----------------------------------------------------------------------
def _constant_lattice(function: Function) -> Dict[VReg, int]:
    """Registers provably holding one known value on every path."""
    values: Dict[VReg, object] = {}
    for _ in range(64):  # bounded: the lattice has finite height in practice
        changed = False
        produced: Dict[VReg, object] = {}
        for _, _, instr in function.instructions():
            dst = instr.dst
            if not isinstance(dst, VReg):
                continue
            value = _evaluate(instr, values)
            if dst in produced and produced[dst] != value:
                produced[dst] = _BOTTOM
            elif dst not in produced:
                produced[dst] = value
        for reg, value in produced.items():
            old = values.get(reg, None)
            if old is not value and old != value:
                values[reg] = value
                changed = True
        if not changed:
            break
    return {
        reg: value for reg, value in values.items()
        if value is not _BOTTOM and isinstance(value, int)
    }


def _operand_value(operand, values) -> object:
    if isinstance(operand, Imm):
        return operand.value
    if isinstance(operand, VReg):
        value = values.get(operand, None)
        return value if isinstance(value, int) else _BOTTOM
    return _BOTTOM


def _evaluate(instr: Instr, values: Dict[VReg, object]) -> object:
    op = instr.op
    if op is Opcode.LI:
        return instr.a.value
    if op is Opcode.MOV:
        return _operand_value(instr.a, values)
    if op is Opcode.NEG:
        a = _operand_value(instr.a, values)
        return wrap32(-a) if isinstance(a, int) else _BOTTOM
    if op is Opcode.NOT:
        a = _operand_value(instr.a, values)
        return wrap32(~a) if isinstance(a, int) else _BOTTOM
    if op in BINOPS:
        a = _operand_value(instr.a, values)
        b = _operand_value(instr.b, values)
        if isinstance(a, int) and isinstance(b, int):
            return _fold(op, a, b)
        return _BOTTOM
    return _BOTTOM


def _fold(op: Opcode, a: int, b: int) -> object:
    if op in (Opcode.DIV, Opcode.REM) and b == 0:
        return _BOTTOM  # preserve the trap
    table = {
        Opcode.ADD: lambda: a + b,
        Opcode.SUB: lambda: a - b,
        Opcode.MUL: lambda: a * b,
        Opcode.DIV: lambda: trunc_div(a, b),
        Opcode.REM: lambda: trunc_rem(a, b),
        Opcode.AND: lambda: a & b,
        Opcode.OR: lambda: a | b,
        Opcode.XOR: lambda: a ^ b,
        Opcode.SHL: lambda: a << (b & 31),
        Opcode.SHR: lambda: (a & 0xFFFFFFFF) >> (b & 31),
        Opcode.SAR: lambda: a >> (b & 31),
        Opcode.SLT: lambda: int(a < b),
        Opcode.SLE: lambda: int(a <= b),
        Opcode.SEQ: lambda: int(a == b),
        Opcode.SNE: lambda: int(a != b),
        Opcode.SGT: lambda: int(a > b),
        Opcode.SGE: lambda: int(a >= b),
    }
    return wrap32(table[op]())


def _propagate_constants(function: Function, stats: Dict[str, int]) -> int:
    constants = _constant_lattice(function)
    if not constants:
        return 0
    changed = 0
    for name in function.block_order:
        block = function.blocks[name]
        for index, instr in enumerate(block.instrs):
            # Fold whole value-producing instructions to LI.
            if isinstance(instr.dst, VReg) and instr.dst in constants \
                    and instr.op is not Opcode.LI \
                    and instr.op in BINOPS | UNOPS | {Opcode.NEG, Opcode.NOT}:
                block.instrs[index] = Instr(
                    Opcode.LI, dst=instr.dst,
                    a=Imm(constants[instr.dst]),
                )
                stats["folded"] += 1
                changed += 1
                continue
            # Replace constant registers in immediate-capable positions.
            new_b = instr.b
            if isinstance(instr.b, VReg) and instr.b in constants:
                new_b = Imm(constants[instr.b])
            new_off = instr.off
            if isinstance(instr.off, VReg) and instr.off in constants:
                new_off = Imm(constants[instr.off])
            if new_b is not instr.b or new_off is not instr.off:
                instr.b = new_b
                instr.off = new_off
                stats["folded"] += 1
                changed += 1
    return changed


# ----------------------------------------------------------------------
# Algebraic simplification.
# ----------------------------------------------------------------------
def _simplify_algebra(function: Function, stats: Dict[str, int]) -> int:
    changed = 0
    for name in function.block_order:
        block = function.blocks[name]
        for index, instr in enumerate(block.instrs):
            replacement = _algebraic(instr)
            if replacement is not None:
                block.instrs[index] = replacement
                stats["simplified"] += 1
                changed += 1
    return changed


def _algebraic(instr: Instr) -> Optional[Instr]:
    if instr.op not in BINOPS or not isinstance(instr.b, Imm):
        return None
    a, b, dst = instr.a, instr.b.value, instr.dst
    op = instr.op
    if b == 0 and op in (Opcode.ADD, Opcode.SUB, Opcode.OR, Opcode.XOR,
                         Opcode.SHL, Opcode.SHR, Opcode.SAR):
        return Instr(Opcode.MOV, dst=dst, a=a)
    if b == 0 and op in (Opcode.MUL, Opcode.AND):
        return Instr(Opcode.LI, dst=dst, a=Imm(0))
    if b == 1 and op in (Opcode.MUL, Opcode.DIV):
        return Instr(Opcode.MOV, dst=dst, a=a)
    if b == 1 and op is Opcode.REM:
        return Instr(Opcode.LI, dst=dst, a=Imm(0))
    if b == -1 and op is Opcode.AND:
        return Instr(Opcode.MOV, dst=dst, a=a)
    return None


# ----------------------------------------------------------------------
# Branch folding.
# ----------------------------------------------------------------------
def _fold_branches(function: Function, stats: Dict[str, int]) -> int:
    constants = _constant_lattice(function)
    changed = 0
    for name in function.block_order:
        block = function.blocks[name]
        for index, instr in enumerate(block.instrs):
            if instr.op is not Opcode.BNZ:
                continue
            cond = None
            if isinstance(instr.a, VReg) and instr.a in constants:
                cond = constants[instr.a]
            if cond is None:
                continue
            if cond != 0:
                # Always taken: replace the BNZ/JMP pair by one JMP.
                block.instrs[index] = Instr(Opcode.JMP, target=instr.target)
                del block.instrs[index + 1]
            else:
                del block.instrs[index]  # never taken: fall into the JMP
            stats["branches"] += 1
            changed += 1
            break  # indices shifted: revisit this block next round
    if changed:
        remove_unreachable(function)
    return changed


# ----------------------------------------------------------------------
# Dead-code elimination.
# ----------------------------------------------------------------------
#: Opcodes safe to delete when their destination is dead.
_PURE = BINOPS | UNOPS | {Opcode.LI, Opcode.NEG, Opcode.NOT, Opcode.LD}


def _eliminate_dead_code(function: Function, stats: Dict[str, int]) -> int:
    changed = 0
    while True:
        live = liveness(function)
        removed = 0
        for name in function.block_order:
            block = function.blocks[name]
            keep = []
            live_after = set(live.live_out[name]) \
                if name in live.live_out else set()
            # Walk backwards so "dead after this point" is exact.
            for instr in reversed(block.instrs):
                dst = instr.dst
                if (instr.op in _PURE and isinstance(dst, VReg)
                        and dst not in live_after):
                    removed += 1
                    continue
                keep.append(instr)
                live_after -= set(instr.defs())
                live_after |= set(instr.uses())
            keep.reverse()
            block.instrs = keep
        if not removed:
            break
        stats["dead"] += removed
        changed += removed
    return changed
