"""Code generation: allocated IR -> machine program.

The IR's fully explicit control flow is flattened per function in block
order; jumps to the lexically next block are folded into fallthrough.  Data
symbols are copied from the module, and each function with a non-empty
static frame (locals + spill slots) gets its ``__frame_<f>`` symbol here —
after register allocation, when the frame size is final.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import CompileError
from ..isa.instructions import Instr, Opcode
from ..isa.operands import PReg
from ..ir.cfg import Function, Module
from ..isa.program import MachineFunction, MachineProgram


def lower_function(function: Function) -> MachineFunction:
    """Flatten one allocated IR function into a machine function."""
    machine = MachineFunction(function.name)
    order = [n for n in function.block_order]
    # The entry block must come first in the flat layout.
    if order and order[0] != function.entry:
        order.remove(function.entry)
        order.insert(0, function.entry)
    for position, name in enumerate(order):
        machine.labels[name] = len(machine.body)
        block = function.blocks[name]
        next_block = order[position + 1] if position + 1 < len(order) else None
        for i, instr in enumerate(block.instrs):
            for reg in instr.defs() + instr.uses():
                if not isinstance(reg, PReg):
                    raise CompileError(
                        f"{function.name}:{name}: virtual register survives "
                        f"to codegen in {instr}"
                    )
            is_last = i == len(block.instrs) - 1
            if (is_last and instr.op is Opcode.JMP
                    and instr.target.name == next_block):
                continue  # fallthrough
            machine.body.append(instr.copy())
    return machine


def lower_module(module: Module) -> MachineProgram:
    """Flatten an allocated IR module into a machine program."""
    program = MachineProgram(entry=module.entry, isrs=dict(module.isrs),
                             uses_periph=module.uses_periph)
    for name, size in module.globals.items():
        program.add_data(name, size, module.init.get(name))
    for name, function in module.functions.items():
        if function.frame_size > 0:
            program.add_data(function.frame_symbol, function.frame_size)
        program.add_function(lower_function(function))
    return program
