"""Command-line interface: compile, run, simulate, attack — from a shell.

Installed as ``repro-gecko`` (see pyproject) and runnable as
``python -m repro``.  Subcommands:

* ``workloads``             — list the bundled benchmark applications;
* ``devices``               — list the Table I platform catalog;
* ``compile  <prog>``       — compile and print instrumentation statistics
  (``--dump`` prints the final assembly);
* ``run      <prog>``       — execute on stable power, print the output;
* ``simulate <prog>``       — intermittent simulation with a chosen
  harvester, optional EMI attack, an optional ASCII trace, and
  ``--trace-out`` for a Perfetto timeline of the same run;
* ``trace    <prog>``       — simulate and export the run as a
  Perfetto/Chrome trace (open at https://ui.perfetto.dev) plus an
  optional JSONL event log;
* ``profile  <prog>``       — simulate under the profiler and print
  wall-time per phase, simulated cycles per opcode class, and the
  busiest metrics;
* ``sweep``                 — frequency-sweep one device/monitor pair;
* ``campaign <prog>``       — declarative sweep campaign over frequency
  (and optionally distance) with ``--workers`` parallelism, compile
  caching and baseline dedup; ``--json`` saves the full CampaignResult.
* ``faultsim <workload>``   — systematic fault-injection campaign:
  sweeps the (fault model × time × target) space per scheme, classifies
  every run against a golden reference, and prints the vulnerability
  maps; ``--json`` saves them.
* ``adversary <workload>``  — adaptive attack synthesis: searches the
  bounded EMI attack space per defense, prints the Pareto frontiers and
  the head-to-head robustness verdict; ``--json`` saves the
  RobustnessReport, ``--replay`` re-runs a saved report's strongest
  attack through the standard harness.
* ``serve``                 — start the always-on campaign server: a
  content-addressed result store behind a line-JSON protocol (unix
  socket or localhost TCP) with multi-tenant fair-share queues and
  worker shards; ``campaign --via-store ADDR`` submits through it.
* ``store <op>``            — operate on a result store without the
  server: ``ls``, ``stats``, ``gc``, ``import`` (ingest PR-5 run
  journals).

All stochastic subcommands (``campaign --sample``, ``faultsim``,
``adversary``) share a single ``--seed`` flag with the same meaning:
one integer pins every random choice, so re-running reproduces the run.

``<prog>`` is either a bundled workload name or a path to a MiniC file
(``faultsim`` and ``adversary`` take bundled workload names only).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core import compile_scheme
from .emi import AttackSchedule, EMISource, RemotePath, device, device_names
from .energy import (
    Capacitor,
    ConstantSupply,
    PowerSystem,
    RFHarvester,
    SquareWaveHarvester,
)
from .runtime import (
    IntermittentSimulator,
    Machine,
    SimConfig,
    Tracer,
    run_to_completion,
    runtime_for,
)
from .workloads import REGISTRY, source


def _load_source(program: str) -> str:
    if program in REGISTRY:
        return source(program)
    if os.path.exists(program):
        with open(program) as handle:
            return handle.read()
    raise SystemExit(
        f"error: {program!r} is neither a bundled workload "
        f"({', '.join(sorted(REGISTRY))}) nor a readable file"
    )


def _add_program_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program",
                        help="bundled workload name or MiniC file path")
    parser.add_argument("--scheme", default="gecko",
                        choices=["nvp", "ratchet", "gecko",
                                 "gecko-nopruning"],
                        help="crash-consistency compilation scheme")
    parser.add_argument("--budget", type=int, default=None,
                        help="region power-on budget in cycles (gecko only)")


def _add_seed_arg(parser: argparse.ArgumentParser) -> None:
    """The one ``--seed`` flag every stochastic subcommand shares."""
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed pinning every random choice "
                             "(same seed, same run)")


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    """The shared ``--backend`` execution-backend selector."""
    from .runtime import BACKEND_NAMES

    parser.add_argument("--backend", default="interpreter",
                        choices=list(BACKEND_NAMES),
                        help="execution backend: 'interpreter' (reference) "
                             "or 'threaded' (precompiled blocks, ~10x "
                             "faster, identical results)")


def _add_sim_args(parser: argparse.ArgumentParser) -> None:
    """The shared simulate/trace/profile simulation knobs."""
    parser.add_argument("--duration", type=float, default=0.2,
                        help="simulated seconds")
    parser.add_argument("--harvester", default="outage",
                        choices=["bench", "outage", "weak", "rf"])
    parser.add_argument("--capacitor", type=float, default=22.0,
                        help="capacitance in microfarads")
    parser.add_argument("--attack", default=None, metavar="MHZ,DBM",
                        help="continuous tone, e.g. 27,35")
    parser.add_argument("--distance", type=float, default=5.0,
                        help="attacker distance in meters")
    parser.add_argument("--device", default="TI-MSP430FR5994",
                        choices=device_names())
    parser.add_argument("--monitor", default="adc", choices=["adc", "comp"])
    _add_backend_arg(parser)


def _compile(args) -> object:
    kwargs = {}
    if args.budget is not None and args.scheme.startswith("gecko"):
        kwargs["region_budget"] = args.budget
    return compile_scheme(_load_source(args.program), args.scheme, **kwargs)


# ----------------------------------------------------------------------
# Subcommands.
# ----------------------------------------------------------------------
def cmd_workloads(args) -> int:
    for entry in REGISTRY.values():
        print(f"{entry.name:14s} {entry.kind:9s} {entry.blurb}")
    return 0


def cmd_devices(args) -> int:
    print(f"{'model':26} {'monitors':12} {'ADC resonances (MHz)'}")
    for name in device_names():
        profile = device(name)
        freqs = ", ".join(
            f"{f/1e6:.0f}" for f in profile.adc_curve.resonant_frequencies()
        )
        print(f"{name:26} {'+'.join(profile.monitors):12} {freqs}")
    return 0


def cmd_compile(args) -> int:
    program = _compile(args)
    stats = program.stats
    print(f"scheme:              {program.scheme}")
    print(f"code size:           {stats.code_size} instructions")
    print(f"regions:             {program.region_count}")
    print(f"checkpoint stores:   {program.checkpoint_stores}")
    if program.scheme.startswith("gecko"):
        print(f"pruning removed:     {stats.pruning_reduction:.0%}")
        print(f"recovery blocks:     {stats.recovery_blocks} "
              f"(avg {stats.avg_recovery_block_len:.1f} instrs)")
        print(f"lookup table:        ~{stats.lookup_table_size} words")
    if args.dump:
        print()
        for index, instr in enumerate(program.linked.instrs):
            print(f"{index:5d}: {instr}")
    return 0


def cmd_run(args) -> int:
    program = _compile(args)
    machine = run_to_completion(program.linked,
                                max_steps=args.max_steps,
                                backend=args.backend)
    print(f"output:  {machine.committed_out}")
    print(f"cycles:  {machine.cycles}")
    print(f"instrs:  {machine.instr_count}")
    return 0


def _build_power(args) -> PowerSystem:
    capacitor = Capacitor(args.capacitor * 1e-6)
    if args.harvester == "bench":
        harvester = ConstantSupply(0.5)
    elif args.harvester == "outage":
        harvester = SquareWaveHarvester(on_power_w=6e-3, period_s=0.02,
                                        duty=0.4)
    elif args.harvester == "rf":
        harvester = RFHarvester(distance_m=2.0)
    else:  # weak
        harvester = SquareWaveHarvester(on_power_w=5e-3, period_s=0.16,
                                        duty=0.4)
    return PowerSystem(capacitor=capacitor, harvester=harvester)


def _parse_attack(text: Optional[str]) -> AttackSchedule:
    if not text:
        return AttackSchedule.silent()
    try:
        freq_text, dbm_text = text.split(",")
        return AttackSchedule.always(
            EMISource(float(freq_text) * 1e6, float(dbm_text))
        )
    except ValueError:
        raise SystemExit("error: --attack expects MHZ,DBM (e.g. 27,35)")


def _build_sim(args, program, tracer=None, obs=None) -> IntermittentSimulator:
    """One simulator from the shared simulate/trace/profile arguments."""
    return IntermittentSimulator(
        machine=Machine(program.linked),
        runtime=runtime_for(program),
        power=_build_power(args),
        attack=_parse_attack(args.attack),
        path=RemotePath(distance_m=args.distance),
        device_profile=device(args.device),
        monitor_kind=args.monitor,
        config=SimConfig(quantum=64, sleep_min_s=1e-3),
        tracer=tracer,
        obs=obs,
        backend=args.backend,
    )


def _thresholds(power) -> dict:
    return {"V_off": power.v_off, "V_backup": power.v_backup,
            "V_on": power.v_on}


def cmd_simulate(args) -> int:
    from .obs import Observability, write_perfetto

    program = _compile(args)
    tracer = Tracer(sample_period_s=args.duration / 400) if args.trace \
        else None
    obs = Observability.for_tracing() if args.trace_out else None
    sim = _build_sim(args, program, tracer=tracer, obs=obs)
    power = sim.power
    result = sim.run(args.duration)
    print(f"completions:          {result.completions}")
    print(f"reboots:              {result.reboots}  "
          f"(brownouts: {result.brownouts})")
    print(f"checkpoints:          {result.jit_checkpoints} ok, "
          f"{result.jit_checkpoint_failures} failed")
    if result.attacks_detected:
        print(f"attacks detected:     {result.attacks_detected}")
    if result.machine_fault:
        print(f"DEVICE FAULT:         {result.machine_fault}")
    print(f"final state:          {result.final_state}")
    if tracer is not None:
        print()
        print(tracer.render(
            thresholds=[power.v_backup, power.v_on],
            v_min=power.v_off - 0.2,
            v_max=power.capacitor.v_max + 0.1,
        ))
    if args.trace_out:
        write_perfetto(args.trace_out, sim.obs.bus,
                       trace_name=f"{args.program}:{args.scheme}",
                       thresholds=_thresholds(power))
        print(f"wrote {args.trace_out}")
    return 0


def cmd_trace(args) -> int:
    from .obs import Observability, validate_perfetto, write_jsonl, \
        write_perfetto

    program = _compile(args)
    obs = Observability.for_tracing()
    sim = _build_sim(args, program, obs=obs)
    result = sim.run(args.duration)
    trace = write_perfetto(args.out, obs.bus,
                           trace_name=f"{args.program}:{args.scheme}",
                           thresholds=_thresholds(sim.power))
    validate_perfetto(trace)
    counts = obs.bus.kind_counts()
    print(f"simulated {result.duration_s:.3f} s; final state "
          f"{result.final_state}")
    print(f"wrote {args.out}: {len(trace['traceEvents'])} trace events "
          f"({len(obs.bus.samples)} voltage samples)")
    for kind in sorted(counts):
        print(f"  {kind}: {counts[kind]}")
    if args.events_out:
        lines = write_jsonl(args.events_out, obs.bus.events)
        print(f"wrote {args.events_out}: {lines} events")
    return 0


def cmd_profile(args) -> int:
    from .obs import Observability

    program = _compile(args)
    obs = Observability.for_profiling()
    sim = _build_sim(args, program, obs=obs)
    result = sim.run(args.duration)
    print(f"simulated {result.duration_s:.3f} s; final state "
          f"{result.final_state}; completions {result.completions}")
    print()
    print(obs.profiler.render())
    top = sorted(obs.metrics.as_dict().items(),
                 key=lambda item: -abs(item[1]))[:args.top]
    if top:
        width = max(len(name) for name, _ in top)
        print()
        print("busiest metrics:")
        for name, value in top:
            print(f"  {name:<{width}}  {value:g}")
    return 0


def cmd_sweep(args) -> int:
    from .eval import fmt_pct, frequency_sweep_mhz, sweep_device
    freqs = frequency_sweep_mhz(start=args.start, stop=args.stop,
                                step=args.step, sparse_to=args.stop)
    result = sweep_device(args.device, args.monitor, freqs_mhz=freqs,
                          duration_s=0.03)
    for point in result.points:
        bar = "#" * int(round((1 - point.progress_rate) * 30))
        print(f"{point.freq_mhz:6.0f} MHz  "
              f"R={fmt_pct(point.progress_rate):>8}  {bar}")
    print(f"\nmost effective tone: {result.min_rate_freq_mhz:.0f} MHz "
          f"(R = {fmt_pct(result.min_rate)})")
    return 0


def _parse_axis(text: str) -> List[float]:
    """Parse an axis spec: ``start:stop:step`` or ``v1,v2,...``."""
    try:
        if ":" in text:
            start_t, stop_t, step_t = text.split(":")
            start, stop, step = float(start_t), float(stop_t), float(step_t)
            if step <= 0:
                raise ValueError
            values = []
            value = start
            while value <= stop + 1e-9:
                values.append(value)
                value += step
            return values
        values = [float(part) for part in text.split(",") if part.strip()]
        if not values:
            raise ValueError
        return values
    except ValueError:
        raise SystemExit(
            f"error: bad axis spec {text!r} (want START:STOP:STEP or "
            f"V1,V2,...)"
        )


def cmd_campaign(args) -> int:
    from .eval import fmt_pct
    from .eval.campaign import (
        AttackSpec,
        CampaignRunner,
        ExperimentSpec,
        PathSpec,
    )
    from .eval.common import VictimConfig
    from .eval.resilient import RetryPolicy

    if args.program in REGISTRY:
        victim = VictimConfig(workload=args.program)
    else:
        victim = VictimConfig(workload=os.path.basename(args.program),
                              workload_source=_load_source(args.program))
    victim = victim.with_overrides(
        device_name=args.device, monitor_kind=args.monitor,
        scheme=args.scheme, duration_s=args.duration,
        region_budget=args.budget, backend=args.backend,
    )
    sweep = {"attack.freq_mhz": _parse_axis(args.freqs)}
    if args.distances:
        sweep["path.distance_m"] = _parse_axis(args.distances)
    if args.sample is not None:
        # A seeded subsample of the cartesian grid, carried as paired
        # points on the "*" axis so each keeps its full coordinate.
        import itertools
        import random as random_mod

        if args.sample < 1:
            raise SystemExit("error: --sample wants a positive count")
        targets = list(sweep)
        grid = list(itertools.product(*sweep.values()))
        if args.sample < len(grid):
            rng = random_mod.Random(args.seed)
            keep = sorted(rng.sample(range(len(grid)), args.sample))
            grid = [grid[i] for i in keep]
        sweep = {"*": [dict(zip(targets, combo)) for combo in grid]}
    spec = ExperimentSpec(
        name=f"cli:{args.program}:{args.scheme}",
        victim=victim,
        attack=AttackSpec.tone(tx_dbm=args.dbm),
        path=PathSpec.remote(distance_m=args.distance),
        sweep=sweep,
    )
    policy = RetryPolicy(retries=args.retries, timeout_s=args.timeout_s,
                         seed=args.seed)
    journal = args.journal or args.resume
    store = None
    dispatcher = None
    if args.via_store:
        if args.store:
            raise SystemExit("error: --store and --via-store are "
                             "mutually exclusive")
        from .serve import ServeClient
        client = ServeClient(args.via_store, tenant=args.tenant)
        store = client.store_view()
        dispatcher = client.dispatcher()
    elif args.store:
        from .store import ResultStore
        store = ResultStore(args.store)
    campaign = CampaignRunner(workers=args.workers, policy=policy,
                              journal=journal,
                              resume=args.resume,
                              store=store,
                              dispatcher=dispatcher).run(spec)

    for outcome in campaign.outcomes:
        coords = {}
        for axis, value in outcome.params.items():
            if axis == "*":
                coords.update(value)
            else:
                coords[axis] = value
        label = "  ".join(
            f"{axis.split('.')[-1]}={value:g}"
            for axis, value in coords.items()
        )
        if outcome.error:
            kind = outcome.error_kind or "sim_error"
            print(f"{label:<28} FAILED[{kind}]: {outcome.error}")
        else:
            rate = outcome.progress_rate
            bar = "#" * int(round((1 - rate) * 30))
            retried = f"  (attempts: {outcome.attempts})" \
                if outcome.attempts > 1 else ""
            print(f"{label:<28} R={fmt_pct(rate):>8}  {bar}{retried}")
    stats = campaign.stats
    print()
    print(f"grid points:   {stats.grid_points}  "
          f"(failures: {stats.failures})")
    print(f"compiles:      {stats.compiles}  "
          f"(cache hits: {stats.compile_cache_hits})")
    print(f"baselines:     {stats.baseline_runs}  "
          f"(deduplicated: {stats.baseline_cache_hits})")
    print(f"workers:       {stats.workers}")
    if stats.retries or stats.timeouts or stats.worker_crashes \
            or stats.budget_exceeded:
        print(f"resilience:    retries={stats.retries}  "
              f"timeouts={stats.timeouts}  "
              f"worker_crashes={stats.worker_crashes}  "
              f"worker_restarts={stats.worker_restarts}  "
              f"budget_exceeded={stats.budget_exceeded}")
    if args.resume:
        print(f"resume:        {stats.journal_skipped} runs "
              f"skipped via resume")
    if args.store or args.via_store:
        where = f"server {args.via_store}" if args.via_store \
            else args.store
        print(f"result store:  hits={stats.store_hits}  "
              f"misses={stats.store_misses}  puts={stats.store_puts}  "
              f"({where})")
    print(f"wall time:     {stats.wall_time_s:.2f} s")
    if args.json:
        campaign.save(args.json)
        print(f"wrote {args.json}")
    return 1 if stats.failures else 0


def cmd_faultsim(args) -> int:
    import json as json_mod

    from .faultsim import FAULT_MODELS, scheme_comparison

    if args.workload not in REGISTRY:
        raise SystemExit(
            f"error: faultsim takes a bundled workload name "
            f"({', '.join(sorted(REGISTRY))}), got {args.workload!r}")
    schemes = [s.strip() for s in args.scheme.split(",") if s.strip()]
    if args.fault_model.strip() == "all":
        models = FAULT_MODELS
    else:
        models = tuple(m.strip() for m in args.fault_model.split(",")
                       if m.strip())
        unknown = [m for m in models if m not in FAULT_MODELS]
        if unknown:
            raise SystemExit(
                f"error: unknown fault models {', '.join(unknown)} "
                f"(choose from {', '.join(FAULT_MODELS)} or 'all')")

    if args.exhaustive:
        return _faultsim_exhaustive(args, schemes, models)

    campaigns = scheme_comparison(
        workload=args.workload, schemes=schemes, models=models,
        points=args.points, seed=args.seed, duration_s=args.duration,
        workers=args.workers, backend=args.backend,
    )
    for scheme, campaign in campaigns.items():
        print(campaign.map.render())
        corrupting = campaign.map.corruption_count()
        print(f"{scheme}: {corrupting} corrupting injections (sdc+brick) "
              f"out of {campaign.map.total}  "
              f"[fingerprint {campaign.map.fingerprint()[:16]}]")
        print()
    if args.json:
        payload = {scheme: campaign.map.to_dict()
                   for scheme, campaign in campaigns.items()}
        with open(args.json, "w") as handle:
            json_mod.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _faultsim_exhaustive(args, schemes, models) -> int:
    import json as json_mod

    from .exhaustive import ExhaustiveSpec, exhaustive_map
    from .faultsim import FaultSimError, fault_victim

    try:
        bits = tuple(range(32)) if args.bits is None else tuple(
            int(b) for b in args.bits.split(",") if b.strip())
    except ValueError:
        raise SystemExit(f"error: --bits wants comma-separated bit "
                         f"positions, got {args.bits!r}")
    store = None
    if args.store:
        from .store import ResultStore
        store = ResultStore(args.store)
    try:
        results = {}
        for scheme in schemes:
            try:
                spec = ExhaustiveSpec(
                    victim=fault_victim(workload=args.workload,
                                        scheme=scheme,
                                        duration_s=args.duration,
                                        backend=args.backend),
                    models=tuple(models),
                    start_step=args.start_step, slice_steps=args.slice,
                    step_stride=args.stride, bits=bits,
                    ckpt_windows=args.windows,
                    signal_slots=args.signal_slots,
                )
            except FaultSimError as exc:
                raise SystemExit(f"error: {exc}")
            result = exhaustive_map(spec, workers=args.workers,
                                    naive=args.naive, store=store)
            results[scheme] = result
            print(result.render())
            corrupting = result.map.corruption_count()
            print(f"{scheme}: {corrupting} corrupting injections "
                  f"(sdc+brick) out of {result.map.total}  "
                  f"[fingerprint {result.map.fingerprint()[:16]}]")
            print()
        if args.json:
            payload = {scheme: result.to_dict()
                       for scheme, result in results.items()}
            with open(args.json, "w") as handle:
                json_mod.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.json}")
    finally:
        if store is not None:
            store.close()
    return 0


def cmd_adversary(args) -> int:
    from .adversary import RobustnessReport, compare_defenses, replay

    if args.replay:
        report = RobustnessReport.load(args.replay)
        donors = [d for d in report.defenses.values()
                  if d.worst_case is not None]
        if not donors:
            raise SystemExit(
                f"error: {args.replay} records no found attack to replay")
        donor = max(donors, key=lambda d: d.worst_damage)
        scheme = args.against or donor.scheme
        found = donor.worst_case
        c = found.candidate
        print(f"replaying the worst attack found against {donor.scheme} "
              f"(damage {found.scores.damage:.3f}) against {scheme}:")
        print(f"  {c.freq_mhz:.1f} MHz @ {c.tx_dbm:.1f} dBm, "
              f"{c.distance_m:.1f} m, duty {c.duty:.2f}, "
              f"{found.duration_s:g} s window")
        result = replay(found, report.workload, scheme,
                        backend=args.backend)
        print(f"completions:      {result.completions}")
        print(f"reboots:          {result.reboots}  "
              f"(brownouts: {result.brownouts})")
        print(f"attacks detected: {result.attacks_detected}")
        print(f"final state:      {result.final_state}")
        return 0

    if args.workload not in REGISTRY:
        raise SystemExit(
            f"error: adversary takes a bundled workload name "
            f"({', '.join(sorted(REGISTRY))}), got {args.workload!r}")
    schemes = tuple(s.strip() for s in args.scheme.split(",") if s.strip())
    report = compare_defenses(
        workload=args.workload, schemes=schemes, strategy=args.strategy,
        budget=args.budget, seed=args.seed, duration_s=args.duration,
        batch=args.batch, objective=args.objective, workers=args.workers,
        backend=args.backend,
    )
    print(report.render())
    if args.json:
        report.save(args.json)
        print(f"\nwrote {args.json}")
    return 0


def cmd_serve(args) -> int:
    from .eval.resilient import RetryPolicy
    from .serve import CampaignServer
    from .store import ResultStore

    if args.port is not None:
        address = f"{args.host}:{args.port}"
    else:
        address = args.socket
    store = ResultStore(args.store)
    policy = RetryPolicy(retries=args.retries, timeout_s=args.timeout_s,
                         backoff_s=0.01)
    server = CampaignServer(
        store=store, address=address, shards=args.shards,
        batch=args.batch, policy=policy,
        backend=None if args.backend == "as-submitted" else args.backend,
        workers_per_shard=args.workers,
    )
    resolved = server.start()
    entries = store.stats().entries
    print(f"serving on {resolved}  "
          f"(store: {args.store}, {entries} warm entries; "
          f"{args.shards} shards x {args.workers} workers, "
          f"batch {args.batch})")
    print("submit with: repro-gecko campaign <prog> "
          f"--via-store {resolved}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    print("server stopped")
    return 0


def _open_store(args):
    from .store import ResultStore

    if not os.path.isdir(args.root):
        raise SystemExit(f"error: {args.root!r} is not a store "
                         f"directory (create one with 'store import' "
                         f"or by running a campaign with --store)")
    return ResultStore(args.root)


def cmd_store_ls(args) -> int:
    store = _open_store(args)
    shown = 0
    for digest in sorted(store.digests()):
        entry = store.get(digest)
        meta = entry.get("meta") or {}
        name = meta.get("name") or meta.get("tenant") or "-"
        elapsed = meta.get("elapsed_s")
        tail = f"  {elapsed:.3f}s" if isinstance(elapsed, (int, float)) \
            else ""
        print(f"{digest}  {name}{tail}")
        shown += 1
        if args.limit and shown >= args.limit:
            remaining = len(store) - shown
            if remaining > 0:
                print(f"... and {remaining} more (raise --limit)")
            break
    if shown == 0:
        print("(empty store)")
    return 0


def cmd_store_stats(args) -> int:
    store = _open_store(args)
    stats = store.stats()
    print(f"root:      {args.root}")
    print(f"entries:   {stats.entries}")
    print(f"buckets:   {stats.buckets}  (segments: {stats.segments})")
    print(f"bytes:     {stats.bytes}")
    if stats.torn_recovered or stats.corrupt_skipped:
        print(f"recovery:  torn_recovered={stats.torn_recovered}  "
              f"corrupt_skipped={stats.corrupt_skipped}")
    return 0


def cmd_store_gc(args) -> int:
    from .store import StoreError

    store = _open_store(args)
    try:
        gc = store.gc(max_age_s=args.max_age_s, dry_run=args.dry_run)
    except StoreError as exc:
        raise SystemExit(f"error: {exc}")
    verb = "would reclaim" if args.dry_run else "reclaimed"
    print(f"entries:   kept {gc.kept}, dropped {gc.dropped} "
          f"({gc.duplicates_dropped} duplicates)")
    print(f"segments:  {gc.segments_compacted} compacted")
    print(f"bytes:     {verb} {gc.bytes_reclaimed}")
    return 0


def cmd_torture_run(args) -> int:
    import json as json_mod

    from .torture import TortureCorpus, TortureSpec, run_campaign

    spec = TortureSpec(
        workload=args.workload, scheme=args.scheme, seed=args.seed,
        cases=args.cases, events_min=args.events_min,
        events_max=args.events_max, backend=args.backend,
        check_backends=not args.no_cross_check,
        region_budget=args.region_budget, max_steps=args.max_steps,
        shrink=not args.no_shrink, shrink_budget=args.shrink_budget)
    report = run_campaign(spec, workers=args.workers)
    summary = report.summary()
    print(f"{spec.workload}/{spec.scheme}: {summary['cases']} cases, "
          f"{summary['violations']} violations, "
          f"{summary['errors']} errors")
    for oracle, count in summary["oracles"].items():
        print(f"  {oracle}: {count}")
    print(f"fingerprint: {summary['fingerprint']}")
    if args.json:
        with open(args.json, "w") as handle:
            json_mod.dump(summary, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json}")
    if report.repro_cases:
        if args.corpus:
            corpus = TortureCorpus.open(args.corpus)
            fresh = 0
            for case in report.repro_cases:
                digest, was_new = corpus.add(case)
                fresh += was_new
                mark = "new" if was_new else "dup"
                print(f"  {mark}  {digest}  {case.oracle}  "
                      f"{len(case.events)} events")
            print(f"corpus {args.corpus}: +{fresh} new "
                  f"({len(corpus)} total)")
        else:
            for case in report.repro_cases:
                print(f"  repro {case.digest}  {case.oracle}  "
                      f"{len(case.events)} events  (use --corpus to keep)")
    return 1 if report.violations or report.errors else 0


def _open_corpus(args):
    from .torture import TortureCorpus

    if not os.path.isdir(args.corpus):
        raise SystemExit(f"error: {args.corpus!r} is not a corpus "
                         f"directory (create one with 'torture run "
                         f"--corpus')")
    return TortureCorpus.open(args.corpus)


def _corpus_cases(corpus, digest: Optional[str]):
    if digest is None:
        cases = list(corpus.cases())
        if not cases:
            raise SystemExit("error: corpus is empty")
        return cases
    case = corpus.get(digest)
    if case is None:
        raise SystemExit(f"error: no corpus case {digest!r}")
    return [(digest, case)]


def cmd_torture_replay(args) -> int:
    corpus = _open_corpus(args)
    backends = tuple(args.backends.split(",")) if args.backends else None
    failures = 0
    for digest, case in _corpus_cases(corpus, args.digest):
        results = corpus.replay(case, backends=backends,
                                max_steps=args.max_steps)
        for result in results:
            verdict = "ok" if result.ok else \
                ("NOT-REPRODUCED" if not result.reproduced
                 else "FINGERPRINT-DRIFT")
            failures += not result.ok
            print(f"{digest}  {result.backend:<11}  {case.oracle:<19} "
                  f"{verdict}")
            if verdict == "FINGERPRINT-DRIFT":
                print(f"    recorded {result.recorded}")
                print(f"    replayed {result.fingerprint}")
    print(f"{failures} failures" if failures else "all cases reproduced")
    return 1 if failures else 0


def cmd_torture_shrink(args) -> int:
    from .torture import ReproCase, record_fingerprints, shrink_schedule

    corpus = _open_corpus(args)
    for digest, case in _corpus_cases(corpus, args.digest):
        result = shrink_schedule(case.target(), case.schedule(),
                                 case.oracle, backend=case.backend,
                                 run_budget=args.budget)
        before, after = len(case.events), result.events
        print(f"{digest}: {before} -> {after} events "
              f"({result.runs} runs, "
              f"{'minimal' if result.minimal else 'budget exhausted'})")
        if after < before:
            data = case.to_dict()
            data["events"] = result.schedule.to_dicts()
            smaller = record_fingerprints(ReproCase.from_dict(data))
            new_digest, was_new = corpus.add(smaller)
            if was_new:
                print(f"  stored smaller case {new_digest}")
    return 0


def cmd_torture_corpus(args) -> int:
    corpus = _open_corpus(args)
    shown = 0
    for digest, case in corpus.cases():
        print(f"{digest}  {case.workload:<10} {case.scheme:<14} "
              f"{case.oracle:<19} {len(case.events)} events")
        if args.verbose and case.detail:
            print(f"    {case.detail}")
        shown += 1
    print(f"({shown} cases)" if shown else "(empty corpus)")
    return 0


def cmd_store_import(args) -> int:
    from .store import ResultStore

    store = ResultStore(args.root)
    meta = {"name": args.name} if args.name else None
    imported = store.import_journal(args.journal, meta=meta)
    print(f"imported {imported} new results from {args.journal} "
          f"(store now holds {len(store)})")
    return 0


# ----------------------------------------------------------------------
# Parser.
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gecko",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list bundled workloads") \
        .set_defaults(func=cmd_workloads)
    sub.add_parser("devices", help="list the platform catalog") \
        .set_defaults(func=cmd_devices)

    p = sub.add_parser("compile", help="compile and show statistics")
    _add_program_args(p)
    p.add_argument("--dump", action="store_true",
                   help="print the final instruction stream")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="execute on stable power")
    _add_program_args(p)
    p.add_argument("--max-steps", type=int, default=10_000_000)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("simulate", help="intermittent simulation")
    _add_program_args(p)
    _add_sim_args(p)
    p.add_argument("--trace", action="store_true",
                   help="render an ASCII voltage/event trace")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a Perfetto/Chrome trace of the run here")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("trace",
                       help="simulate and export a Perfetto timeline")
    _add_program_args(p)
    _add_sim_args(p)
    p.add_argument("--out", default="trace.json", metavar="PATH",
                   help="Perfetto/Chrome trace output path")
    p.add_argument("--events-out", default=None, metavar="PATH",
                   help="also write the event log as JSONL here")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("profile",
                       help="simulate under the profiler and report")
    _add_program_args(p)
    _add_sim_args(p)
    p.add_argument("--top", type=int, default=10,
                   help="metrics to list in the busiest-metrics table")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("sweep", help="frequency-sweep a device")
    p.add_argument("--device", default="TI-MSP430FR5994",
                   choices=device_names())
    p.add_argument("--monitor", default="adc", choices=["adc", "comp"])
    p.add_argument("--start", type=float, default=5)
    p.add_argument("--stop", type=float, default=45)
    p.add_argument("--step", type=float, default=4)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("campaign",
                       help="declarative sweep campaign (parallel)")
    _add_program_args(p)
    p.add_argument("--freqs", default="5:45:4", metavar="A:B:STEP|F1,F2,..",
                   help="frequency axis in MHz")
    p.add_argument("--distances", default=None, metavar="A:B:STEP|D1,D2,..",
                   help="optional attacker-distance axis in meters")
    p.add_argument("--dbm", type=float, default=35.0,
                   help="attacker transmit power")
    p.add_argument("--distance", type=float, default=5.0,
                   help="attacker distance when no distance axis is given")
    p.add_argument("--device", default="TI-MSP430FR5994",
                   choices=device_names())
    p.add_argument("--monitor", default="adc", choices=["adc", "comp"])
    p.add_argument("--duration", type=float, default=0.03,
                   help="simulated seconds per grid point")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the grid")
    p.add_argument("--sample", type=int, default=None, metavar="N",
                   help="run a seeded random subsample of N grid points "
                        "instead of the full grid")
    p.add_argument("--timeout-s", type=float, default=None, metavar="S",
                   help="per-run wall-clock timeout (pooled runs only); "
                        "expired runs are tagged 'timeout'")
    p.add_argument("--retries", type=int, default=0,
                   help="re-attempts per failed run, with seeded "
                        "jittered backoff")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="stream completed runs to this JSONL file as "
                        "they finish")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="skip runs already journaled at PATH (implies "
                        "--journal PATH, so the file keeps growing)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="memoize results in a content-addressed store "
                        "at DIR; repeat runs are served without "
                        "simulating")
    p.add_argument("--via-store", default=None, metavar="ADDR",
                   help="submit through a running campaign server "
                        "(see 'serve'): warm hits come from its store, "
                        "misses run on its worker shards")
    p.add_argument("--tenant", default="default",
                   help="fair-share tenant name for --via-store "
                        "submissions")
    _add_seed_arg(p)
    _add_backend_arg(p)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the CampaignResult JSON here")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("faultsim",
                       help="systematic fault-injection campaign")
    p.add_argument("workload", help="bundled workload name")
    p.add_argument("--scheme", default="nvp,gecko",
                   metavar="S1,S2,..",
                   help="comma-separated crash-consistency schemes")
    p.add_argument("--fault-model", default="all", metavar="M1,M2,..|all",
                   help="fault models to inject (default: all)")
    p.add_argument("--points", type=int, default=50,
                   help="injections per fault model")
    _add_seed_arg(p)
    p.add_argument("--duration", type=float, default=0.25,
                   help="simulated seconds per injection")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the injection grid")
    _add_backend_arg(p)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the vulnerability maps as JSON here")
    p.add_argument("--exhaustive", action="store_true",
                   help="enumerate the complete injection space instead "
                        "of sampling --points draws (see repro.exhaustive)")
    p.add_argument("--naive", action="store_true",
                   help="with --exhaustive: disable fault-space reduction "
                        "and snapshot forking (the differential oracle)")
    p.add_argument("--start-step", type=int, default=0,
                   help="with --exhaustive: first instruction step of the "
                        "step-model slice")
    p.add_argument("--slice", type=int, default=None, metavar="STEPS",
                   help="with --exhaustive: limit step models to STEPS "
                        "instruction steps (default: the whole run)")
    p.add_argument("--stride", type=int, default=1,
                   help="with --exhaustive: stride over instruction steps")
    p.add_argument("--bits", default=None, metavar="B1,B2,..",
                   help="with --exhaustive: bit positions to flip "
                        "(default: all 32)")
    p.add_argument("--windows", type=int, default=1,
                   help="with --exhaustive: checkpoint windows for the "
                        "image-fault grids")
    p.add_argument("--signal-slots", type=int, default=8,
                   help="with --exhaustive: monitor-signal grid slots")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="with --exhaustive: memoize classifications in a "
                        "content-addressed store at DIR; warm reruns "
                        "simulate nothing")
    p.set_defaults(func=cmd_faultsim)

    p = sub.add_parser("adversary",
                       help="adaptive attack search and robustness verdict")
    p.add_argument("workload", nargs="?", default="blink",
                   help="bundled workload name (default: blink)")
    p.add_argument("--scheme", default="nvp,gecko", metavar="S1,S2,..",
                   help="comma-separated defenses to search and compare")
    p.add_argument("--strategy", default="anneal",
                   choices=["grid", "random", "anneal", "halving"])
    p.add_argument("--objective", default="damage",
                   choices=["damage", "stealth", "efficiency"])
    p.add_argument("--budget", type=int, default=32,
                   help="candidate evaluations per defense")
    p.add_argument("--batch", type=int, default=8,
                   help="candidates per search round")
    _add_seed_arg(p)
    p.add_argument("--duration", type=float, default=0.05,
                   help="simulated seconds per candidate")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for candidate batches")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the RobustnessReport JSON here")
    p.add_argument("--replay", default=None, metavar="PATH",
                   help="replay the strongest attack from a saved report "
                        "instead of searching")
    p.add_argument("--against", default=None, metavar="SCHEME",
                   help="defense to replay against (default: the scheme "
                        "the attack was found against)")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_adversary)

    p = sub.add_parser("serve",
                       help="run the always-on campaign server")
    p.add_argument("--store", default="results-store", metavar="DIR",
                   help="result-store directory (created if missing)")
    p.add_argument("--socket", default="serve.sock", metavar="PATH",
                   help="unix socket path to listen on")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP host when --port is given")
    p.add_argument("--port", type=int, default=None, metavar="N",
                   help="listen on TCP host:port instead of the unix "
                        "socket (0 picks a free port)")
    p.add_argument("--shards", type=int, default=2,
                   help="worker shard threads draining the queues")
    p.add_argument("--workers", type=int, default=1,
                   help="executor processes per shard")
    p.add_argument("--batch", type=int, default=8,
                   help="runs a shard takes per fair-share cycle")
    p.add_argument("--retries", type=int, default=1,
                   help="re-attempts per failed run")
    p.add_argument("--timeout-s", type=float, default=None, metavar="S",
                   help="per-run wall-clock timeout on the shards")
    p.add_argument("--backend", default="threaded",
                   choices=["threaded", "interpreter", "as-submitted"],
                   help="execution backend for misses ('as-submitted' "
                        "honors each run's own setting)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("store",
                       help="inspect or maintain a result store")
    store_sub = p.add_subparsers(dest="store_op", required=True)

    q = store_sub.add_parser("ls", help="list stored results")
    q.add_argument("root", help="store directory")
    q.add_argument("--limit", type=int, default=50,
                   help="entries to show (0 = all)")
    q.set_defaults(func=cmd_store_ls)

    q = store_sub.add_parser("stats", help="show store statistics")
    q.add_argument("root", help="store directory")
    q.set_defaults(func=cmd_store_stats)

    q = store_sub.add_parser("gc",
                             help="compact segments and drop stale "
                                  "entries")
    q.add_argument("root", help="store directory")
    q.add_argument("--max-age-s", type=float, default=None, metavar="S",
                   help="also drop entries older than S seconds")
    q.add_argument("--dry-run", action="store_true",
                   help="report what would change without rewriting")
    q.set_defaults(func=cmd_store_gc)

    q = store_sub.add_parser("import",
                             help="ingest a campaign run journal")
    q.add_argument("root", help="store directory (created if missing)")
    q.add_argument("journal", help="RunJournal JSONL file to ingest")
    q.add_argument("--name", default=None,
                   help="campaign name to record in entry metadata")
    q.set_defaults(func=cmd_store_import)

    p = sub.add_parser("torture",
                       help="adversarial crash-consistency fuzzing")
    torture_sub = p.add_subparsers(dest="torture_op", required=True)

    q = torture_sub.add_parser("run", help="run a seeded fuzz campaign")
    q.add_argument("workload", help="bundled workload name")
    q.add_argument("--scheme", default="gecko-jit",
                   choices=["gecko-jit", "gecko-rollback", "nvp",
                            "ratchet"])
    _add_seed_arg(q)
    q.add_argument("--cases", type=int, default=50,
                   help="schedules to generate and run")
    q.add_argument("--events-min", type=int, default=2)
    q.add_argument("--events-max", type=int, default=10)
    _add_backend_arg(q)
    q.add_argument("--no-cross-check", action="store_true",
                   help="skip the backend_equivalence mirror run")
    q.add_argument("--region-budget", type=int, default=None,
                   help="gecko region budget (instructions)")
    q.add_argument("--max-steps", type=int, default=None,
                   help="per-case step watchdog override")
    q.add_argument("--no-shrink", action="store_true",
                   help="report violations without minimizing them")
    q.add_argument("--shrink-budget", type=int, default=300,
                   help="schedule re-runs allowed per shrink")
    q.add_argument("--workers", type=int, default=1,
                   help="worker processes for the case fan-out")
    q.add_argument("--corpus", default=None, metavar="DIR",
                   help="persist shrunk repro cases in this corpus")
    q.add_argument("--json", default=None, metavar="PATH",
                   help="write the campaign summary JSON here")
    q.set_defaults(func=cmd_torture_run)

    q = torture_sub.add_parser("replay",
                               help="replay corpus cases bit-identically")
    q.add_argument("corpus", help="corpus directory")
    q.add_argument("digest", nargs="?", default=None,
                   help="one case digest (default: every case)")
    q.add_argument("--backends", default=None, metavar="B1,B2",
                   help="backends to replay on (default: the recorded "
                        "ones)")
    q.add_argument("--max-steps", type=int, default=None)
    q.set_defaults(func=cmd_torture_replay)

    q = torture_sub.add_parser("shrink",
                               help="re-minimize stored cases")
    q.add_argument("corpus", help="corpus directory")
    q.add_argument("digest", nargs="?", default=None,
                   help="one case digest (default: every case)")
    q.add_argument("--budget", type=int, default=300,
                   help="schedule re-runs allowed per case")
    q.set_defaults(func=cmd_torture_shrink)

    q = torture_sub.add_parser("corpus", help="list corpus cases")
    q.add_argument("corpus", help="corpus directory")
    q.add_argument("-v", "--verbose", action="store_true",
                   help="also print each case's violation detail")
    q.set_defaults(func=cmd_torture_corpus)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
