"""Performance and static-size experiments: Fig. 11, Fig. 12, Fig. 14,
Table III, and the §VII-C code-size analysis.

Fig. 11 measures execution time on stable power (no outages), so it is run
directly on the machine; Fig. 14 repeats the comparison in a simulated RF
energy-harvesting environment (Powercast-style transmitter feeding the
capacitor), where completions per window stand in for throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import CompiledProgram, compile_scheme
from ..energy import Capacitor, PowerSystem, RFHarvester
from ..runtime import (
    IntermittentSimulator,
    Machine,
    SimConfig,
    run_to_completion,
    runtime_for,
)
from ..workloads import WORKLOAD_NAMES, source

SCHEMES = ("nvp", "ratchet", "gecko-nopruning", "gecko")


@dataclass
class OverheadRow:
    """One workload's normalized execution times (NVP = 1.0)."""

    workload: str
    cycles: Dict[str, int] = field(default_factory=dict)

    def normalized(self, scheme: str) -> float:
        return self.cycles[scheme] / self.cycles["nvp"]


def geomean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compile_all(workload: str,
                schemes: Sequence[str] = SCHEMES) -> Dict[str, CompiledProgram]:
    """Compile one workload under every scheme."""
    return {s: compile_scheme(source(workload), s) for s in schemes}


def figure11(workloads: Optional[Sequence[str]] = None,
             schemes: Sequence[str] = SCHEMES) -> List[OverheadRow]:
    """Normalized execution time on stable power (no outages)."""
    rows: List[OverheadRow] = []
    for name in workloads or WORKLOAD_NAMES:
        compiled = compile_all(name, schemes)
        row = OverheadRow(workload=name)
        for scheme, program in compiled.items():
            machine = run_to_completion(program.linked)
            row.cycles[scheme] = machine.cycles
        rows.append(row)
    return rows


@dataclass
class PruningRow:
    """Fig. 12: checkpoint stores with and without pruning."""

    workload: str
    unpruned: int
    pruned: int

    @property
    def reduction(self) -> float:
        if not self.unpruned:
            return 0.0
        return 1.0 - self.pruned / self.unpruned


def figure12(workloads: Optional[Sequence[str]] = None) -> List[PruningRow]:
    """Static checkpoint-store counts, GECKO w/o pruning vs GECKO."""
    rows: List[PruningRow] = []
    for name in workloads or WORKLOAD_NAMES:
        unpruned = compile_scheme(source(name), "gecko-nopruning")
        pruned = compile_scheme(source(name), "gecko")
        rows.append(PruningRow(workload=name,
                               unpruned=unpruned.checkpoint_stores,
                               pruned=pruned.checkpoint_stores))
    return rows


@dataclass
class StaticsRow:
    """Table III + §VII-C static metrics for one workload."""

    workload: str
    checkpoint_stores: int
    regions: int
    recovery_blocks: int
    avg_recovery_block_len: float
    lookup_table_size: int
    code_size: int
    nvp_code_size: int

    @property
    def code_size_overhead(self) -> float:
        if not self.nvp_code_size:
            return 0.0
        total = self.code_size + self.lookup_table_size
        return total / self.nvp_code_size - 1.0


def table3(workloads: Optional[Sequence[str]] = None) -> List[StaticsRow]:
    """Checkpoint counts, recovery-block stats, and code-size overheads."""
    rows: List[StaticsRow] = []
    for name in workloads or WORKLOAD_NAMES:
        gecko = compile_scheme(source(name), "gecko")
        nvp = compile_scheme(source(name), "nvp")
        stats = gecko.stats
        rows.append(StaticsRow(
            workload=name,
            checkpoint_stores=gecko.checkpoint_stores,
            regions=gecko.region_count,
            recovery_blocks=stats.recovery_blocks,
            avg_recovery_block_len=stats.avg_recovery_block_len,
            lookup_table_size=stats.lookup_table_size,
            code_size=stats.code_size,
            nvp_code_size=nvp.stats.code_size,
        ))
    return rows


@dataclass
class HarvestingRow:
    """Fig. 14: relative performance under RF energy harvesting."""

    workload: str
    completions: Dict[str, int] = field(default_factory=dict)

    def normalized_slowdown(self, scheme: str) -> float:
        """Execution-time overhead proxy: NVP completions / scheme's."""
        ours = self.completions.get(scheme, 0)
        if ours == 0:
            return float("inf")
        return self.completions["nvp"] / ours


def figure14(workloads: Optional[Sequence[str]] = None,
             duration_s: float = 0.4,
             tx_distance_m: float = 2.0,
             schemes: Sequence[str] = SCHEMES) -> List[HarvestingRow]:
    """Throughput under a Powercast-style RF harvesting supply (§VII-B4)."""
    rows: List[HarvestingRow] = []
    for name in workloads or WORKLOAD_NAMES:
        compiled = compile_all(name, schemes)
        row = HarvestingRow(workload=name)
        for scheme, program in compiled.items():
            power = PowerSystem(
                capacitor=Capacitor(1e-3),
                harvester=RFHarvester(distance_m=tx_distance_m),
            )
            sim = IntermittentSimulator(
                machine=Machine(program.linked),
                runtime=runtime_for(program),
                power=power,
                config=SimConfig(quantum=128),
            )
            row.completions[scheme] = sim.run(duration_s).completions
        rows.append(row)
    return rows
