"""Experiment harnesses regenerating every table and figure of the paper."""

from .capacitor_sweep import CAPACITOR_SIZES_F, CapacitorPoint, figure15
from .common import (
    VictimConfig,
    forward_progress,
    frequency_sweep_mhz,
    fmt_pct,
    remote_tone,
    run_attack,
)
from .comparison import CountermeasureEntry, TABLE_II, gecko_is_unique, table2
from .detection import (
    AttackThroughput,
    DetectionRun,
    SCENARIOS,
    figure13,
    run_scenario,
    throughput_under_attack,
)
from .distance import DistancePoint, distance_grid, max_effective_distance
from .overhead import (
    HarvestingRow,
    OverheadRow,
    PruningRow,
    SCHEMES,
    StaticsRow,
    compile_all,
    figure11,
    figure12,
    figure14,
    geomean,
    table3,
)
from .realtime import DEFAULT_SEGMENTS, Segment, realtime_control
from .sweeps import SweepPoint, SweepResult, TableOneRow, sweep_device, table_one

__all__ = [
    "AttackThroughput", "CAPACITOR_SIZES_F", "CapacitorPoint",
    "CountermeasureEntry", "DEFAULT_SEGMENTS", "DetectionRun",
    "DistancePoint", "HarvestingRow", "OverheadRow", "PruningRow",
    "SCENARIOS", "SCHEMES", "Segment", "StaticsRow", "SweepPoint",
    "SweepResult", "TABLE_II", "TableOneRow", "VictimConfig", "compile_all",
    "distance_grid", "figure11", "figure12", "figure13", "figure14",
    "figure15", "fmt_pct", "forward_progress", "frequency_sweep_mhz",
    "gecko_is_unique", "geomean", "max_effective_distance", "realtime_control",
    "remote_tone", "run_attack", "run_scenario", "sweep_device", "table2",
    "table3", "table_one", "throughput_under_attack",
]
