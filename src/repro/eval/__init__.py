"""Experiment harnesses regenerating every table and figure of the paper.

Sweeps run through the declarative campaign engine
(:mod:`repro.eval.campaign`): an :class:`ExperimentSpec` expands into a
grid, a :class:`CampaignRunner` executes it (optionally across worker
processes) with compile caching and baseline deduplication, and a
:class:`CampaignResult` accounts for every run.
"""

from .campaign import (
    AttackSpec,
    CampaignError,
    CampaignResult,
    CampaignRunner,
    CampaignStats,
    ExperimentSpec,
    PathSpec,
    RunOutcome,
    RunSpec,
    run_campaign,
)
from .capacitor_sweep import CAPACITOR_SIZES_F, CapacitorPoint, figure15
from .resilient import (
    BUDGET_EXCEEDED,
    ChaosSpec,
    ERROR_KINDS,
    INVARIANT_VIOLATION,
    ResilienceError,
    ResilientExecutor,
    RETRIED_OK,
    RetryPolicy,
    RunJournal,
    SIM_ERROR,
    TIMEOUT,
    WORKER_CRASH,
)
from .common import (
    VictimConfig,
    forward_progress,
    frequency_sweep_mhz,
    fmt_pct,
    remote_tone,
    run_attack,
)
from .comparison import CountermeasureEntry, TABLE_II, gecko_is_unique, table2
from .detection import (
    AttackThroughput,
    DetectionRun,
    SCENARIOS,
    detection_spec,
    figure13,
    run_scenario,
    throughput_under_attack,
)
from .distance import DistancePoint, distance_grid, max_effective_distance
from .overhead import (
    HarvestingRow,
    OverheadRow,
    PruningRow,
    SCHEMES,
    StaticsRow,
    compile_all,
    figure11,
    figure12,
    figure14,
    geomean,
    table3,
)
from .realtime import DEFAULT_SEGMENTS, Segment, realtime_control
from .sweeps import SweepPoint, SweepResult, TableOneRow, sweep_device, table_one

__all__ = [
    "AttackSpec", "AttackThroughput", "BUDGET_EXCEEDED", "CAPACITOR_SIZES_F",
    "CampaignError", "CampaignResult", "CampaignRunner", "CampaignStats",
    "CapacitorPoint", "ChaosSpec", "CountermeasureEntry", "DEFAULT_SEGMENTS",
    "DetectionRun", "DistancePoint", "ERROR_KINDS", "ExperimentSpec",
    "INVARIANT_VIOLATION",
    "HarvestingRow", "OverheadRow", "PathSpec", "PruningRow", "RETRIED_OK",
    "ResilienceError", "ResilientExecutor", "RetryPolicy", "RunJournal",
    "RunOutcome", "RunSpec", "SCENARIOS", "SCHEMES", "SIM_ERROR", "Segment",
    "StaticsRow", "SweepPoint", "SweepResult", "TABLE_II", "TIMEOUT",
    "TableOneRow", "VictimConfig", "WORKER_CRASH", "compile_all",
    "detection_spec", "distance_grid", "figure11", "figure12", "figure13",
    "figure14", "figure15", "fmt_pct", "forward_progress",
    "frequency_sweep_mhz", "gecko_is_unique", "geomean",
    "max_effective_distance", "realtime_control", "remote_tone",
    "run_attack", "run_campaign", "run_scenario", "sweep_device", "table2",
    "table3", "table_one", "throughput_under_attack",
]
