"""Frequency-sweep attack experiments: Fig. 4, Fig. 5, Fig. 7, Table I.

Each experiment sweeps a single-tone attack across frequencies against a
victim running the JIT-checkpoint (NVP) stack and reports the forward-
progress rate R at each frequency, plus — for Table I — the minimum R, its
frequency, and the peak checkpoint-failure rate F.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..emi import device, device_names
from .campaign import AttackSpec, CampaignRunner, ExperimentSpec, PathSpec
from .common import (
    DPI_TX_DBM,
    REMOTE_TX_DBM,
    VictimConfig,
    frequency_sweep_mhz,
)


@dataclass
class SweepPoint:
    """One frequency's outcome."""

    freq_mhz: float
    progress_rate: float
    failure_rate: float = 0.0


@dataclass
class SweepResult:
    """A whole sweep for one (device, monitor, path) combination."""

    device_name: str
    monitor_kind: str
    injection: str                    # "remote", "P1", "P2"
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def min_rate(self) -> float:
        return min((p.progress_rate for p in self.points), default=1.0)

    @property
    def min_rate_freq_mhz(self) -> float:
        return min(self.points, key=lambda p: p.progress_rate).freq_mhz

    @property
    def max_failure_rate(self) -> float:
        return max((p.failure_rate for p in self.points), default=0.0)

    @property
    def max_failure_freq_mhz(self) -> float:
        return max(self.points, key=lambda p: p.failure_rate).freq_mhz


def sweep_device(device_name: str, monitor_kind: str = "adc",
                 injection: str = "remote",
                 freqs_mhz: Optional[List[float]] = None,
                 tx_dbm: Optional[float] = None,
                 measure_failures: bool = False,
                 duration_s: float = 0.05,
                 workers: int = 1) -> SweepResult:
    """Run one frequency sweep against one device/monitor/path combo.

    Two campaigns through one :class:`CampaignRunner`: the rate sweep
    (one compile, one shared silent baseline), then — when
    ``measure_failures`` is set — a second sweep over just the biting
    frequencies with the victim switched to the weak-outage power setup
    where the V_fail corruption window actually opens (§IV-B2).  The
    runner's compile cache carries the compiled workload across both.
    """
    if injection == "remote":
        path = PathSpec.remote(5.0)
        dbm = REMOTE_TX_DBM if tx_dbm is None else tx_dbm
    else:
        path = PathSpec.dpi(injection)
        dbm = DPI_TX_DBM if tx_dbm is None else tx_dbm

    victim = VictimConfig(device_name=device_name, monitor_kind=monitor_kind,
                          duration_s=duration_s)
    freqs = list(freqs_mhz or frequency_sweep_mhz())
    runner = CampaignRunner(workers=workers)
    campaign = runner.run(ExperimentSpec(
        name=f"sweep:{device_name}:{monitor_kind}:{injection}",
        victim=victim,
        attack=AttackSpec.tone(tx_dbm=dbm),
        path=path,
        sweep={"attack.freq_mhz": freqs},
    ))

    failures = {}
    if measure_failures:
        # Only frequencies that bite are worth the longer failure run.
        biting = [o.params["attack.freq_mhz"] for o in campaign.outcomes
                  if o.progress_rate is not None and o.progress_rate < 0.9]
        if biting:
            fail_victim = victim.with_overrides(
                supply_w=None, capacitance=4.7e-6, sleep_min_s=1e-3,
                duration_s=max(duration_s, 0.4),
            )
            fail_campaign = runner.run(ExperimentSpec(
                name=f"sweep-failures:{device_name}",
                victim=fail_victim,
                attack=AttackSpec.tone(tx_dbm=dbm),
                path=path,
                sweep={"attack.freq_mhz": biting},
                baseline=False,
            ))
            failures = {
                o.params["attack.freq_mhz"]: o.result.checkpoint_failure_rate
                for o in fail_campaign.outcomes if o.result is not None
            }

    result = SweepResult(device_name=device_name, monitor_kind=monitor_kind,
                         injection=injection)
    for freq, outcome in zip(freqs, campaign.outcomes):
        rate = outcome.progress_rate if outcome.progress_rate is not None \
            else 0.0
        result.points.append(SweepPoint(
            freq_mhz=freq, progress_rate=rate,
            failure_rate=failures.get(freq, 0.0),
        ))
    return result


@dataclass
class TableOneRow:
    """One device's Table I entry (simulated, with the paper's reference)."""

    device_name: str
    adc_rmin: float
    adc_rmin_freq_mhz: float
    adc_fmax: float
    adc_fmax_freq_mhz: float
    comp_rmin: Optional[float] = None
    comp_rmin_freq_mhz: Optional[float] = None


def table_one(freqs_mhz: Optional[List[float]] = None,
              duration_s: float = 0.04) -> List[TableOneRow]:
    """Reproduce Table I across all nine platforms."""
    rows: List[TableOneRow] = []
    for name in device_names():
        profile = device(name)
        base = freqs_mhz or frequency_sweep_mhz()
        # Make sure each board's own resonances are sampled even on a
        # coarse grid (the paper sweeps at 1 MHz resolution).
        dev_freqs = sorted(
            set(base)
            | {f / 1e6 for f in profile.adc_curve.resonant_frequencies()}
        )
        adc = sweep_device(name, "adc", freqs_mhz=dev_freqs,
                           measure_failures=True, duration_s=duration_s)
        row = TableOneRow(
            device_name=name,
            adc_rmin=adc.min_rate,
            adc_rmin_freq_mhz=adc.min_rate_freq_mhz,
            adc_fmax=adc.max_failure_rate,
            adc_fmax_freq_mhz=adc.max_failure_freq_mhz,
        )
        if "comp" in profile.monitors and profile.comp_curve is not None:
            comp_freqs = sorted(
                set(base)
                | {f / 1e6 for f in profile.comp_curve.resonant_frequencies()}
            )
            comp = sweep_device(name, "comp", freqs_mhz=comp_freqs,
                                duration_s=duration_s)
            row.comp_rmin = comp.min_rate
            row.comp_rmin_freq_mhz = comp.min_rate_freq_mhz
        rows.append(row)
    return rows
