"""Frequency-sweep attack experiments: Fig. 4, Fig. 5, Fig. 7, Table I.

Each experiment sweeps a single-tone attack across frequencies against a
victim running the JIT-checkpoint (NVP) stack and reports the forward-
progress rate R at each frequency, plus — for Table I — the minimum R, its
frequency, and the peak checkpoint-failure rate F.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..emi import DPIPath, RemotePath, device, device_names
from .common import (
    DPI_TX_DBM,
    REMOTE_TX_DBM,
    VictimConfig,
    forward_progress,
    frequency_sweep_mhz,
    remote_tone,
    run_attack,
)
from ..emi.attacker import AttackSchedule
from ..emi.signal import EMISource


@dataclass
class SweepPoint:
    """One frequency's outcome."""

    freq_mhz: float
    progress_rate: float
    failure_rate: float = 0.0


@dataclass
class SweepResult:
    """A whole sweep for one (device, monitor, path) combination."""

    device_name: str
    monitor_kind: str
    injection: str                    # "remote", "P1", "P2"
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def min_rate(self) -> float:
        return min((p.progress_rate for p in self.points), default=1.0)

    @property
    def min_rate_freq_mhz(self) -> float:
        return min(self.points, key=lambda p: p.progress_rate).freq_mhz

    @property
    def max_failure_rate(self) -> float:
        return max((p.failure_rate for p in self.points), default=0.0)

    @property
    def max_failure_freq_mhz(self) -> float:
        return max(self.points, key=lambda p: p.failure_rate).freq_mhz


def sweep_device(device_name: str, monitor_kind: str = "adc",
                 injection: str = "remote",
                 freqs_mhz: Optional[List[float]] = None,
                 tx_dbm: Optional[float] = None,
                 measure_failures: bool = False,
                 duration_s: float = 0.05) -> SweepResult:
    """Run one frequency sweep against one device/monitor/path combo.

    ``measure_failures`` switches the victim to the weak-outage power setup
    where the V_fail corruption window actually opens (§IV-B2) and records
    checkpoint-failure rates alongside progress rates.
    """
    if injection == "remote":
        path = RemotePath(distance_m=5.0)
        dbm = REMOTE_TX_DBM if tx_dbm is None else tx_dbm
    else:
        path = DPIPath(point=injection)
        dbm = DPI_TX_DBM if tx_dbm is None else tx_dbm

    victim = VictimConfig(device_name=device_name, monitor_kind=monitor_kind,
                          duration_s=duration_s)
    fail_victim = replace(
        victim, supply_w=None, capacitance=4.7e-6, sleep_min_s=1e-3,
        duration_s=max(duration_s, 0.4),
    )
    compiled = victim.compile()
    baseline = run_attack(victim, path=path, compiled=compiled)

    result = SweepResult(device_name=device_name, monitor_kind=monitor_kind,
                         injection=injection)
    for freq in freqs_mhz or frequency_sweep_mhz():
        schedule = AttackSchedule.always(EMISource(freq * 1e6, dbm))
        rate, attacked, _ = forward_progress(
            victim, schedule, path=path, compiled=compiled, baseline=baseline
        )
        failure = 0.0
        if measure_failures and rate < 0.9:
            # Only frequencies that bite are worth the longer failure run.
            fail_run = run_attack(fail_victim, schedule, path=path,
                                  compiled=compiled)
            failure = fail_run.checkpoint_failure_rate
        result.points.append(
            SweepPoint(freq_mhz=freq, progress_rate=rate, failure_rate=failure)
        )
    return result


@dataclass
class TableOneRow:
    """One device's Table I entry (simulated, with the paper's reference)."""

    device_name: str
    adc_rmin: float
    adc_rmin_freq_mhz: float
    adc_fmax: float
    adc_fmax_freq_mhz: float
    comp_rmin: Optional[float] = None
    comp_rmin_freq_mhz: Optional[float] = None


def table_one(freqs_mhz: Optional[List[float]] = None,
              duration_s: float = 0.04) -> List[TableOneRow]:
    """Reproduce Table I across all nine platforms."""
    rows: List[TableOneRow] = []
    for name in device_names():
        profile = device(name)
        base = freqs_mhz or frequency_sweep_mhz()
        # Make sure each board's own resonances are sampled even on a
        # coarse grid (the paper sweeps at 1 MHz resolution).
        dev_freqs = sorted(
            set(base)
            | {f / 1e6 for f in profile.adc_curve.resonant_frequencies()}
        )
        adc = sweep_device(name, "adc", freqs_mhz=dev_freqs,
                           measure_failures=True, duration_s=duration_s)
        row = TableOneRow(
            device_name=name,
            adc_rmin=adc.min_rate,
            adc_rmin_freq_mhz=adc.min_rate_freq_mhz,
            adc_fmax=adc.max_failure_rate,
            adc_fmax_freq_mhz=adc.max_failure_freq_mhz,
        )
        if "comp" in profile.monitors and profile.comp_curve is not None:
            comp_freqs = sorted(
                set(base)
                | {f / 1e6 for f in profile.comp_curve.resonant_frequencies()}
            )
            comp = sweep_device(name, "comp", freqs_mhz=comp_freqs,
                                duration_s=duration_s)
            row.comp_rmin = comp.min_rate
            row.comp_rmin_freq_mhz = comp.min_rate_freq_mhz
        rows.append(row)
    return rows
