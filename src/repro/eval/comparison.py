"""Table II: qualitative comparison against prior EMI countermeasures.

The taxonomy is encoded as data so the table regenerates from one place
and so tests can assert the claims that matter (GECKO is the only entry
that is software-only, energy-efficient, recovers from power failure, and
applies to intermittent systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CountermeasureEntry:
    """One row of Table II."""

    name: str
    target: str
    mechanism: str          # "Hardware" | "Software" | "Hybrid"
    energy_efficiency: str  # "Low" | "High"
    power_failure_recovery: bool
    intermittent_applicable: bool


TABLE_II: Tuple[CountermeasureEntry, ...] = (
    CountermeasureEntry(
        "Ghost Talk", "Microphones", "Hybrid", "Low", False, False),
    CountermeasureEntry(
        "Rocking Drones", "Drones", "Hybrid", "Low", False, False),
    CountermeasureEntry(
        "Trick or Heat", "Incubators", "Hardware", "Low", False, False),
    CountermeasureEntry(
        "SoK", "Analog Sensors", "Hybrid", "Low", False, False),
    CountermeasureEntry(
        "Detection of EMI", "Temperature Sensors, Microphones",
        "Software", "High", False, False),
    CountermeasureEntry(
        "Transduction Shield", "Pressure Sensors, Microphones",
        "Hybrid", "Low", False, False),
    CountermeasureEntry(
        "Detection of Weak EMI", "Sensors from IIoT",
        "Software", "Low", False, False),
    CountermeasureEntry(
        "GECKO", "Voltage Monitor", "Software", "High", True, True),
)


def table2() -> List[CountermeasureEntry]:
    """The full comparison table, GECKO last (as in the paper)."""
    return list(TABLE_II)


def gecko_is_unique() -> bool:
    """The table's takeaway: only GECKO combines all four properties."""
    qualified = [
        e for e in TABLE_II
        if e.mechanism == "Software" and e.energy_efficiency == "High"
        and e.power_failure_recovery and e.intermittent_applicable
    ]
    return len(qualified) == 1 and qualified[0].name == "GECKO"
