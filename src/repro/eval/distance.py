"""Attack power vs distance (Fig. 8) and wall penetration (Fig. 6b).

The paper shows the attack working from 0-5 m outside a closed door, with
effectiveness falling as distance grows and rising with transmit power —
free-space path loss makes the two interchangeable.  The experiment grid
measures the forward-progress rate over (distance, power) pairs at the
victim's resonant frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..emi import RemotePath, device
from ..emi.devices import EVALUATION_BOARD
from .common import VictimConfig, forward_progress, remote_tone, run_attack


@dataclass
class DistancePoint:
    distance_m: float
    tx_dbm: float
    progress_rate: float
    walls: int = 0


def distance_grid(device_name: str = EVALUATION_BOARD,
                  distances_m: Optional[List[float]] = None,
                  powers_dbm: Optional[List[float]] = None,
                  walls: int = 1,
                  duration_s: float = 0.04) -> List[DistancePoint]:
    """R over a (distance, TX power) grid at the device's peak frequency."""
    profile = device(device_name)
    freq = profile.adc_curve.peak_frequency()
    victim = VictimConfig(device_name=device_name, duration_s=duration_s)
    compiled = victim.compile()

    points: List[DistancePoint] = []
    for distance in distances_m or [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.0]:
        path = RemotePath(distance_m=distance, walls=walls)
        baseline = run_attack(victim, path=path, compiled=compiled)
        for dbm in powers_dbm or [0, 10, 20, 25, 30, 35]:
            rate, _, _ = forward_progress(
                victim, remote_tone(freq, dbm), path=path,
                compiled=compiled, baseline=baseline,
            )
            points.append(DistancePoint(distance_m=distance, tx_dbm=dbm,
                                        progress_rate=rate, walls=walls))
    return points


def max_effective_distance(points: List[DistancePoint],
                           tx_dbm: float,
                           dos_threshold: float = 0.5) -> float:
    """The farthest distance at which the tone still halves progress."""
    effective = [
        p.distance_m for p in points
        if p.tx_dbm == tx_dbm and p.progress_rate < dos_threshold
    ]
    return max(effective, default=0.0)
