"""Attack power vs distance (Fig. 8) and wall penetration (Fig. 6b).

The paper shows the attack working from 0-5 m outside a closed door, with
effectiveness falling as distance grows and rising with transmit power —
free-space path loss makes the two interchangeable.  The experiment grid
measures the forward-progress rate over (distance, power) pairs at the
victim's resonant frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..emi.devices import EVALUATION_BOARD
from .campaign import AttackSpec, CampaignRunner, ExperimentSpec, PathSpec
from .common import VictimConfig


@dataclass
class DistancePoint:
    distance_m: float
    tx_dbm: float
    progress_rate: float
    walls: int = 0


def distance_grid(device_name: str = EVALUATION_BOARD,
                  distances_m: Optional[List[float]] = None,
                  powers_dbm: Optional[List[float]] = None,
                  walls: int = 1,
                  duration_s: float = 0.04,
                  workers: int = 1) -> List[DistancePoint]:
    """R over a (distance, TX power) grid at the device's peak frequency.

    One campaign over two axes; the silent baseline depends on the path,
    so dedup runs it once per distance and shares it across TX powers.
    """
    distances = list(distances_m or [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.0])
    powers = list(powers_dbm or [0, 10, 20, 25, 30, 35])
    victim = VictimConfig(device_name=device_name, duration_s=duration_s)
    campaign = CampaignRunner(workers=workers).run(ExperimentSpec(
        name=f"distance:{device_name}",
        victim=victim,
        attack=AttackSpec.tone(),          # freq None -> resonant peak
        path=PathSpec.remote(walls=walls),
        sweep={"path.distance_m": distances, "attack.tx_dbm": powers},
    ))
    return [
        DistancePoint(
            distance_m=outcome.params["path.distance_m"],
            tx_dbm=outcome.params["attack.tx_dbm"],
            progress_rate=outcome.progress_rate
            if outcome.progress_rate is not None else 0.0,
            walls=walls,
        )
        for outcome in campaign.outcomes
    ]


def max_effective_distance(points: List[DistancePoint],
                           tx_dbm: float,
                           dos_threshold: float = 0.5) -> float:
    """The farthest distance at which the tone still halves progress."""
    effective = [
        p.distance_m for p in points
        if p.tx_dbm == tx_dbm and p.progress_rate < dos_threshold
    ]
    return max(effective, default=0.0)
