"""Attack detection and recovery over time: Fig. 13 and §VII-B3.

Six attack scenarios (a)-(f) replay EMI bursts at chosen times against
victims running NVP, Ratchet, or GECKO in an energy-harvesting environment
(periodic outages like the paper's 1 Hz power generator, time-compressed).
The output is a completion-count timeline per scheme — the paper's Fig. 13
series — plus the §VII-B3 summary: throughput under attack relative to an
unattacked NVP baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import compile_scheme
from ..emi import AttackSchedule, EMISource, RemotePath
from ..emi.devices import EVALUATION_BOARD, device
from ..energy import Capacitor, PowerSystem, SquareWaveHarvester
from ..runtime import (
    IntermittentSimulator,
    Machine,
    SimConfig,
    SimResult,
    runtime_for,
)
from ..workloads import source
from .common import REMOTE_TX_DBM

#: The paper's six scenarios, as attack windows in fractions of the run
#: (Fig. 13: attacks at minute marks of a 50-minute window).
SCENARIOS: Dict[str, Tuple[Tuple[float, float], ...]] = {
    "a-none": (),
    "b-late": ((0.80, 0.90),),
    "c-mid": ((0.60, 0.70),),
    "d-two": ((0.40, 0.50), (0.80, 0.90)),
    "e-three": ((0.30, 0.40), (0.60, 0.68), (0.70, 0.78)),
    "f-spread": ((0.20, 0.30), (0.50, 0.60), (0.80, 0.90)),
}

DETECTION_SCHEMES = ("nvp", "ratchet", "gecko")


@dataclass
class DetectionRun:
    """One (scenario, scheme) outcome."""

    scenario: str
    scheme: str
    result: SimResult
    window_s: float

    @property
    def timeline(self) -> List[Tuple[float, int]]:
        return self.result.timeline

    @property
    def throughput(self) -> float:
        return self.result.throughput_per_minute(self.window_s)


def _attack_schedule(windows: Sequence[Tuple[float, float]],
                     total_s: float, freq_hz: float) -> AttackSchedule:
    schedule = AttackSchedule()
    for start, end in windows:
        schedule.add(start * total_s, end * total_s,
                     EMISource(freq_hz, REMOTE_TX_DBM))
    return schedule


def run_scenario(scenario: str, scheme: str,
                 workload: str = "blink",
                 total_s: float = 0.6,
                 outage_period_s: float = 0.05,
                 outage_duty: float = 0.4,
                 capacitance_f: float = 22e-6,
                 device_name: str = EVALUATION_BOARD,
                 region_budget: int = 20_000) -> DetectionRun:
    """Simulate one scheme through one attack scenario.

    The harvester produces genuine periodic outages (the paper's 1 Hz power
    generator, time-compressed) so reboots — and with them GECKO's
    detection and re-enable protocol — run continuously.
    """
    windows = SCENARIOS[scenario]
    kwargs = {"region_budget": region_budget} if scheme.startswith("gecko") else {}
    compiled = compile_scheme(source(workload), scheme, **kwargs)
    profile = device(device_name)
    freq = profile.adc_curve.peak_frequency()
    power = PowerSystem(
        capacitor=Capacitor(capacitance_f),
        harvester=SquareWaveHarvester(on_power_w=8e-3,
                                      period_s=outage_period_s,
                                      duty=outage_duty),
    )
    sim = IntermittentSimulator(
        machine=Machine(compiled.linked),
        runtime=runtime_for(compiled),
        power=power,
        attack=_attack_schedule(windows, total_s, freq),
        path=RemotePath(distance_m=5.0),
        device_profile=profile,
        monitor_kind="adc",
        config=SimConfig(quantum=64, sleep_min_s=1e-3,
                         record_timeline=True,
                         timeline_dt_s=total_s / 30.0),
    )
    result = sim.run(total_s)
    return DetectionRun(scenario=scenario, scheme=scheme, result=result,
                        window_s=total_s)


def figure13(scenarios: Optional[Sequence[str]] = None,
             schemes: Sequence[str] = DETECTION_SCHEMES,
             **kwargs) -> List[DetectionRun]:
    """All scenario x scheme runs for the Fig. 13 panels."""
    runs: List[DetectionRun] = []
    for scenario in scenarios or SCENARIOS:
        for scheme in schemes:
            runs.append(run_scenario(scenario, scheme, **kwargs))
    return runs


@dataclass
class AttackThroughput:
    """§VII-B3 summary: sustained-attack throughput vs unattacked NVP."""

    scheme: str
    completions: int
    baseline_completions: int
    attacks_detected: int
    final_state: str

    @property
    def relative(self) -> float:
        if not self.baseline_completions:
            return 0.0
        return self.completions / self.baseline_completions


def throughput_under_attack(workload: str = "blink",
                            total_s: float = 0.5,
                            schemes: Sequence[str] = DETECTION_SCHEMES,
                            **kwargs) -> List[AttackThroughput]:
    """Sustained attack from t=0 (the paper's 41%-of-baseline experiment)."""
    baseline = run_scenario("a-none", "nvp", workload=workload,
                            total_s=total_s, **kwargs)
    rows: List[AttackThroughput] = []
    SCENARIOS["sustained"] = ((0.0, 1.0),)
    try:
        for scheme in schemes:
            run = run_scenario("sustained", scheme, workload=workload,
                               total_s=total_s, **kwargs)
            rows.append(AttackThroughput(
                scheme=scheme,
                completions=run.result.completions,
                baseline_completions=baseline.result.completions,
                attacks_detected=run.result.attacks_detected,
                final_state=run.result.final_state,
            ))
    finally:
        SCENARIOS.pop("sustained", None)
    return rows
