"""Attack detection and recovery over time: Fig. 13 and §VII-B3.

Six attack scenarios (a)-(f) replay EMI bursts at chosen times against
victims running NVP, Ratchet, or GECKO in an energy-harvesting environment
(periodic outages like the paper's 1 Hz power generator, time-compressed).
The output is a completion-count timeline per scheme — the paper's Fig. 13
series — plus the §VII-B3 summary: throughput under attack relative to an
unattacked NVP baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..emi.devices import EVALUATION_BOARD
from ..runtime import SimResult
from .campaign import AttackSpec, CampaignRunner, ExperimentSpec, PathSpec
from .common import REMOTE_TX_DBM, VictimConfig

#: The paper's six scenarios, as attack windows in fractions of the run
#: (Fig. 13: attacks at minute marks of a 50-minute window).
SCENARIOS: Dict[str, Tuple[Tuple[float, float], ...]] = {
    "a-none": (),
    "b-late": ((0.80, 0.90),),
    "c-mid": ((0.60, 0.70),),
    "d-two": ((0.40, 0.50), (0.80, 0.90)),
    "e-three": ((0.30, 0.40), (0.60, 0.68), (0.70, 0.78)),
    "f-spread": ((0.20, 0.30), (0.50, 0.60), (0.80, 0.90)),
}

DETECTION_SCHEMES = ("nvp", "ratchet", "gecko")


@dataclass
class DetectionRun:
    """One (scenario, scheme) outcome."""

    scenario: str
    scheme: str
    result: SimResult
    window_s: float

    @property
    def timeline(self) -> List[Tuple[float, int]]:
        return self.result.timeline

    @property
    def throughput(self) -> float:
        return self.result.throughput_per_minute(self.window_s)


def detection_spec(scenarios: Sequence[object],
                   schemes: Sequence[str],
                   workload: str = "blink",
                   total_s: float = 0.6,
                   outage_period_s: float = 0.05,
                   outage_duty: float = 0.4,
                   capacitance_f: float = 22e-6,
                   device_name: str = EVALUATION_BOARD,
                   region_budget: int = 20_000) -> ExperimentSpec:
    """The Fig. 13 grid as an :class:`ExperimentSpec`.

    ``scenarios`` entries are :data:`SCENARIOS` names or raw window tuples
    ((start, end) fractions of the run).  The harvester produces genuine
    periodic outages (the paper's 1 Hz power generator, time-compressed) so
    reboots — and with them GECKO's detection and re-enable protocol — run
    continuously.
    """
    windows = [SCENARIOS[s] if isinstance(s, str) else tuple(s)
               for s in scenarios]
    victim = VictimConfig(
        device_name=device_name, monitor_kind="adc", workload=workload,
        scheme=schemes[0], capacitance=capacitance_f, supply_w=None,
        outage_period_s=outage_period_s, outage_duty=outage_duty,
        outage_power_w=8e-3, duration_s=total_s, sleep_min_s=1e-3,
        quantum=64, region_budget=region_budget,
    )
    return ExperimentSpec(
        name="fig13-detection",
        victim=victim,
        attack=AttackSpec.bursts((), tx_dbm=REMOTE_TX_DBM),  # peak freq
        path=PathSpec.remote(5.0),
        sim_overrides={"record_timeline": True,
                       "timeline_dt_s": total_s / 30.0},
        sweep={"attack.windows": windows, "victim.scheme": list(schemes)},
        baseline=False,
    )


def figure13(scenarios: Optional[Sequence[str]] = None,
             schemes: Sequence[str] = DETECTION_SCHEMES,
             workers: int = 1,
             **kwargs) -> List[DetectionRun]:
    """All scenario x scheme runs for the Fig. 13 panels, as one campaign
    (each scheme compiles once, shared across scenarios)."""
    names = list(scenarios or SCENARIOS)
    schemes = list(schemes)
    total_s = kwargs.get("total_s", 0.6)
    spec = detection_spec(names, schemes, **kwargs)
    campaign = CampaignRunner(workers=workers).run(spec)
    return [
        DetectionRun(
            scenario=names[outcome.index // len(schemes)],
            scheme=schemes[outcome.index % len(schemes)],
            result=outcome.result,
            window_s=total_s,
        )
        for outcome in campaign.outcomes
    ]


def run_scenario(scenario: str, scheme: str, **kwargs) -> DetectionRun:
    """Simulate one scheme through one attack scenario (single-point
    campaign; see :func:`detection_spec` for the knobs)."""
    return figure13(scenarios=[scenario], schemes=[scheme], **kwargs)[0]


@dataclass
class AttackThroughput:
    """§VII-B3 summary: sustained-attack throughput vs unattacked NVP."""

    scheme: str
    completions: int
    baseline_completions: int
    attacks_detected: int
    final_state: str

    @property
    def relative(self) -> float:
        if not self.baseline_completions:
            return 0.0
        return self.completions / self.baseline_completions


def throughput_under_attack(workload: str = "blink",
                            total_s: float = 0.5,
                            schemes: Sequence[str] = DETECTION_SCHEMES,
                            workers: int = 1,
                            **kwargs) -> List[AttackThroughput]:
    """Sustained attack from t=0 (the paper's 41%-of-baseline experiment).

    Attack windows are data now, so the sustained scenario is just the raw
    window ``((0.0, 1.0),)`` — no scenario-table mutation required.
    """
    baseline = run_scenario("a-none", "nvp", workload=workload,
                            total_s=total_s, **kwargs)
    sustained = figure13(scenarios=[((0.0, 1.0),)], schemes=list(schemes),
                         workload=workload, total_s=total_s,
                         workers=workers, **kwargs)
    return [
        AttackThroughput(
            scheme=run.scheme,
            completions=run.result.completions,
            baseline_completions=baseline.result.completions,
            attacks_detected=run.result.attacks_detected,
            final_state=run.result.final_state,
        )
        for run in sustained
    ]
