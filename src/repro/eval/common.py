"""Shared experiment configuration for the paper's evaluation (§IV, §VII).

Every benchmark regenerating a table or figure builds on these helpers so
that the attack rig (35 dBm source at 5 m — Fig. 6), the DPI rig (20 dBm
wired — Fig. 3), and the victim configuration stay consistent across
experiments, the way a single lab setup would.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core import CompiledProgram, compile_scheme
from ..emi import AttackSchedule, DPIPath, EMISource, RemotePath, DeviceProfile, device
from ..emi.devices import EVALUATION_BOARD
from ..energy import Capacitor, ConstantSupply, PowerSystem, SquareWaveHarvester
from ..runtime import SimConfig, SimResult
from ..workloads import source

#: The paper's remote-attack rig: up to 35 dBm, 5 m, directional antenna.
REMOTE_TX_DBM = 35.0
REMOTE_DISTANCE_M = 5.0

#: The paper's DPI rig: 20 dBm injected through the coupling network.
DPI_TX_DBM = 20.0

#: Default victim application for attack-surface experiments: the sensing
#: loop every intermittent deployment runs (§III, "Applications").
VICTIM_WORKLOAD = "blink"


@dataclass
class VictimConfig:
    """One victim device + power setup, reusable across attack runs.

    The config is plain data: picklable (campaign workers rebuild their own
    simulators from it), replaceable via :meth:`with_overrides`, and keyed
    for the campaign engine's compile/baseline caches via :meth:`cache_key`.
    """

    device_name: str = EVALUATION_BOARD
    monitor_kind: str = "adc"
    workload: str = VICTIM_WORKLOAD
    scheme: str = "nvp"
    capacitance: float = 1e-3
    supply_w: Optional[float] = 0.5        # None -> use outage harvester
    outage_period_s: float = 0.16          # used when supply_w is None
    outage_duty: float = 0.4
    outage_power_w: float = 5e-3
    duration_s: float = 0.08
    sleep_min_s: float = 2e-3
    quantum: int = 64
    region_budget: Optional[int] = None
    #: Optional power-rail overrides (None -> PowerSystem/Capacitor defaults).
    v_on: Optional[float] = None
    v_backup: Optional[float] = None
    v_off: Optional[float] = None
    cap_v_max: float = 3.3
    cap_leakage_a_per_f: Optional[float] = None
    cap_v_init: Optional[float] = None     # None -> capacitor starts full
    #: Inline MiniC source; overrides the bundled ``workload`` lookup so the
    #: CLI can sweep user programs.
    workload_source: Optional[str] = None
    #: Execution backend advancing the machine ("interpreter" | "threaded").
    #: Part of :meth:`cache_key` (baselines are per-backend) but not
    #: :meth:`compile_key` — both backends share one compiled artifact.
    backend: str = "interpreter"

    # -- declarative helpers -------------------------------------------
    def with_overrides(self, **kw) -> "VictimConfig":
        """A copy with the given fields replaced (dataclass ``replace``)."""
        return replace(self, **kw)

    def cache_key(self) -> Tuple:
        """Stable, hashable identity over every field (baseline cache key)."""
        return tuple((f.name, getattr(self, f.name)) for f in fields(self))

    def compile_key(self) -> Tuple:
        """Identity of the compiled artifact: (program, scheme, budget).

        Two victims differing only in power/monitor setup share one compile.
        """
        if self.workload_source is not None:
            program = ("inline",
                       hashlib.sha256(self.workload_source.encode()).hexdigest())
        else:
            program = self.workload
        budget = self.region_budget if self.scheme.startswith("gecko") else None
        return (program, self.scheme, budget)

    # -- factories ------------------------------------------------------
    def compile(self) -> CompiledProgram:
        kwargs = {}
        if self.region_budget is not None and self.scheme.startswith("gecko"):
            kwargs["region_budget"] = self.region_budget
        text = self.workload_source if self.workload_source is not None \
            else source(self.workload)
        return compile_scheme(text, self.scheme, **kwargs)

    def power_system(self) -> PowerSystem:
        if self.supply_w is not None:
            harvester = ConstantSupply(self.supply_w)
        else:
            harvester = SquareWaveHarvester(
                on_power_w=self.outage_power_w,
                period_s=self.outage_period_s,
                duty=self.outage_duty,
            )
        cap_kwargs = {"v_max": self.cap_v_max}
        if self.cap_leakage_a_per_f is not None:
            cap_kwargs["leakage_a_per_f"] = self.cap_leakage_a_per_f
        capacitor = Capacitor(self.capacitance, **cap_kwargs)
        if self.cap_v_init is not None:
            capacitor.reset(self.cap_v_init)
        thresholds = {name: getattr(self, name)
                      for name in ("v_on", "v_backup", "v_off")
                      if getattr(self, name) is not None}
        return PowerSystem(capacitor=capacitor, harvester=harvester,
                           **thresholds)

    def sim_config(self, **overrides) -> SimConfig:
        config = SimConfig(quantum=self.quantum,
                           sleep_min_s=self.sleep_min_s)
        return replace(config, **overrides) if overrides else config

    def profile(self) -> DeviceProfile:
        return device(self.device_name)


def run_attack(victim: VictimConfig,
               attack: Optional[AttackSchedule] = None,
               path=None,
               compiled: Optional[CompiledProgram] = None,
               duration_s: Optional[float] = None,
               config: Optional[SimConfig] = None) -> SimResult:
    """Simulate one victim under one attack schedule.

    Compatibility wrapper: one grid point through the campaign engine
    (:mod:`repro.eval.campaign`), which owns the simulator construction.
    """
    from .campaign import CampaignRunner, ExperimentSpec  # circular import

    import dataclasses
    cache = {victim.compile_key(): compiled} if compiled is not None else None
    spec = ExperimentSpec(
        name="run_attack",
        victim=victim,
        attack=attack if attack is not None else AttackSchedule.silent(),
        path=path if path is not None
        else RemotePath(distance_m=REMOTE_DISTANCE_M),
        duration_s=duration_s,
        sim_overrides=dataclasses.asdict(config) if config is not None else {},
        baseline=False,
    )
    runner = CampaignRunner(workers=1, compile_cache=cache, reraise=True)
    return runner.run(spec).outcomes[0].result


def remote_tone(freq_hz: float, dbm: float = REMOTE_TX_DBM) -> AttackSchedule:
    """A continuous remote tone (the sweep experiments)."""
    return AttackSchedule.always(EMISource(freq_hz, dbm))


def forward_progress(victim: VictimConfig, attack: AttackSchedule,
                     path=None, compiled: Optional[CompiledProgram] = None,
                     baseline: Optional[SimResult] = None):
    """(rate R, attacked result, baseline result) for one attack setup.

    Compatibility wrapper over two single-point campaigns sharing one
    compiled artifact; sweeps should use :class:`~repro.eval.campaign.
    CampaignRunner`, which also deduplicates the silent baseline.
    """
    compiled = compiled or victim.compile()
    if baseline is None:
        baseline = run_attack(victim, AttackSchedule.silent(), path=path,
                              compiled=compiled)
    attacked = run_attack(victim, attack, path=path, compiled=compiled)
    if baseline.executed_cycles <= 0:
        return 0.0, attacked, baseline
    rate = min(1.0, attacked.executed_cycles / baseline.executed_cycles)
    return rate, attacked, baseline


def frequency_sweep_mhz(start: float = 5, stop: float = 60, step: float = 2,
                        sparse_to: float = 500,
                        sparse_step: float = 50) -> List[float]:
    """Sweep frequencies (MHz): dense over the susceptible band, sparse above.

    The paper sweeps 5-500 MHz at 1 MHz (§IV-B1); every observed effect sits
    below ~50 MHz, so the default grid keeps full resolution there and
    samples the quiet region above.
    """
    freqs: List[float] = []
    f = start
    while f <= stop:
        freqs.append(f)
        f += step
    f = stop + sparse_step
    while f <= sparse_to:
        freqs.append(f)
        f += sparse_step
    return freqs


def fmt_pct(value: float) -> str:
    """Format a rate like the paper's tables (percent, adaptive precision)."""
    pct = value * 100.0
    if pct != 0 and pct < 0.1:
        return f"{pct:.0e}%"
    return f"{pct:.1f}%"
