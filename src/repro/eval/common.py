"""Shared experiment configuration for the paper's evaluation (§IV, §VII).

Every benchmark regenerating a table or figure builds on these helpers so
that the attack rig (35 dBm source at 5 m — Fig. 6), the DPI rig (20 dBm
wired — Fig. 3), and the victim configuration stay consistent across
experiments, the way a single lab setup would.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence

from ..core import CompiledProgram, compile_scheme
from ..emi import AttackSchedule, DPIPath, EMISource, RemotePath, DeviceProfile, device
from ..emi.devices import EVALUATION_BOARD
from ..energy import Capacitor, ConstantSupply, PowerSystem, SquareWaveHarvester
from ..runtime import (
    IntermittentSimulator,
    Machine,
    SimConfig,
    SimResult,
    runtime_for,
)
from ..workloads import source

#: The paper's remote-attack rig: up to 35 dBm, 5 m, directional antenna.
REMOTE_TX_DBM = 35.0
REMOTE_DISTANCE_M = 5.0

#: The paper's DPI rig: 20 dBm injected through the coupling network.
DPI_TX_DBM = 20.0

#: Default victim application for attack-surface experiments: the sensing
#: loop every intermittent deployment runs (§III, "Applications").
VICTIM_WORKLOAD = "blink"


@dataclass
class VictimConfig:
    """One victim device + power setup, reusable across attack runs."""

    device_name: str = EVALUATION_BOARD
    monitor_kind: str = "adc"
    workload: str = VICTIM_WORKLOAD
    scheme: str = "nvp"
    capacitance: float = 1e-3
    supply_w: Optional[float] = 0.5        # None -> use outage harvester
    outage_period_s: float = 0.16          # used when supply_w is None
    outage_duty: float = 0.4
    outage_power_w: float = 5e-3
    duration_s: float = 0.08
    sleep_min_s: float = 2e-3
    quantum: int = 64
    region_budget: Optional[int] = None

    def compile(self) -> CompiledProgram:
        kwargs = {}
        if self.region_budget is not None and self.scheme.startswith("gecko"):
            kwargs["region_budget"] = self.region_budget
        return compile_scheme(source(self.workload), self.scheme, **kwargs)

    def power_system(self) -> PowerSystem:
        if self.supply_w is not None:
            harvester = ConstantSupply(self.supply_w)
        else:
            harvester = SquareWaveHarvester(
                on_power_w=self.outage_power_w,
                period_s=self.outage_period_s,
                duty=self.outage_duty,
            )
        return PowerSystem(capacitor=Capacitor(self.capacitance),
                           harvester=harvester)

    def sim_config(self, **overrides) -> SimConfig:
        config = SimConfig(quantum=self.quantum,
                           sleep_min_s=self.sleep_min_s)
        return replace(config, **overrides) if overrides else config

    def profile(self) -> DeviceProfile:
        return device(self.device_name)


def run_attack(victim: VictimConfig,
               attack: Optional[AttackSchedule] = None,
               path=None,
               compiled: Optional[CompiledProgram] = None,
               duration_s: Optional[float] = None,
               config: Optional[SimConfig] = None) -> SimResult:
    """Simulate one victim under one attack schedule."""
    compiled = compiled or victim.compile()
    sim = IntermittentSimulator(
        machine=Machine(compiled.linked),
        runtime=runtime_for(compiled),
        power=victim.power_system(),
        attack=attack or AttackSchedule.silent(),
        path=path or RemotePath(distance_m=REMOTE_DISTANCE_M),
        device_profile=victim.profile(),
        monitor_kind=victim.monitor_kind,
        config=config or victim.sim_config(),
    )
    return sim.run(duration_s or victim.duration_s)


def remote_tone(freq_hz: float, dbm: float = REMOTE_TX_DBM) -> AttackSchedule:
    """A continuous remote tone (the sweep experiments)."""
    return AttackSchedule.always(EMISource(freq_hz, dbm))


def forward_progress(victim: VictimConfig, attack: AttackSchedule,
                     path=None, compiled: Optional[CompiledProgram] = None,
                     baseline: Optional[SimResult] = None):
    """(rate R, attacked result, baseline result) for one attack setup."""
    compiled = compiled or victim.compile()
    if baseline is None:
        baseline = run_attack(victim, AttackSchedule.silent(), path=path,
                              compiled=compiled)
    attacked = run_attack(victim, attack, path=path, compiled=compiled)
    if baseline.executed_cycles <= 0:
        return 0.0, attacked, baseline
    rate = min(1.0, attacked.executed_cycles / baseline.executed_cycles)
    return rate, attacked, baseline


def frequency_sweep_mhz(start: float = 5, stop: float = 60, step: float = 2,
                        sparse_to: float = 500,
                        sparse_step: float = 50) -> List[float]:
    """Sweep frequencies (MHz): dense over the susceptible band, sparse above.

    The paper sweeps 5-500 MHz at 1 MHz (§IV-B1); every observed effect sits
    below ~50 MHz, so the default grid keeps full resolution there and
    samples the quiet region above.
    """
    freqs: List[float] = []
    f = start
    while f <= stop:
        freqs.append(f)
        f += step
    f = stop + sparse_step
    while f <= sparse_to:
        freqs.append(f)
        f += sparse_step
    return freqs


def fmt_pct(value: float) -> str:
    """Format a rate like the paper's tables (percent, adaptive precision)."""
    pct = value * 100.0
    if pct != 0 and pct < 0.1:
        return f"{pct:.0e}%"
    return f"{pct:.1f}%"
