"""Resilient campaign execution: timeouts, retries, crash recovery, resume.

The campaign engine's original pool path was a bare ``pool.map``: one
worker killed by the OS, one pathological grid point hanging in
wall-clock terms, or one transient exception lost the entire sweep.
This module replaces it with an async dispatch loop that degrades
gracefully instead of failing wholesale:

* a **watchdog** enforces a per-run wall-clock timeout; hung workers
  cannot be cancelled individually, so the pool is torn down and
  respawned, and the healthy in-flight runs are re-dispatched without an
  attempt charge;
* **crash detection**: every worker announces which run it picked up on
  a beacon queue, so when a worker pid vanishes the parent knows exactly
  which run died with it (the pool respawns the worker on its own);
* **bounded retries** with seeded, jittered exponential backoff
  (:meth:`RetryPolicy.delay_s`) re-dispatch failed runs; a run that
  eventually succeeds is tagged :data:`RETRIED_OK`;
* every terminal failure carries an **error taxonomy** kind —
  :data:`TIMEOUT`, :data:`WORKER_CRASH`, :data:`SIM_ERROR`,
  :data:`BUDGET_EXCEEDED` — plus the traceback tail, instead of a bare
  exception name;
* a **run journal** streams completed outcomes to a JSONL file as they
  finish, and a resume pass skips journaled runs by content digest, so a
  campaign killed mid-run finishes where it left off with a
  byte-identical ``metrics_fingerprint()``.

The executor is generic over the task function — the campaign engine
passes its grid-point worker, the tests pass chaos fixtures — and
:class:`ChaosSpec` provides the fault drills (raise / crash / hang on
cue) that keep the recovery paths honest.

Serial execution (``workers=1``) applies the same retries, budget,
journal, and taxonomy, but cannot preempt a hung run: wall-clock
timeouts are only enforced on the pool path.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue
import random
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import InvariantViolation, ReproError
from ..store.digest import task_digest


class ResilienceError(ReproError):
    """A resilient-execution configuration, chaos, or journal problem."""


# ----------------------------------------------------------------------
# Error taxonomy.
# ----------------------------------------------------------------------
#: The run exceeded the per-run wall-clock timeout and was killed.
TIMEOUT = "timeout"
#: The worker process executing the run died (signal, OOM, ``os._exit``).
WORKER_CRASH = "worker_crash"
#: The run itself raised (simulation error, bad spec, chaos ``raise``).
SIM_ERROR = "sim_error"
#: The run raised :class:`~repro.errors.InvariantViolation`: a torture
#: oracle failed.  Deterministic by construction, so retries are
#: *disabled* for this kind — re-running could only mask the finding.
INVARIANT_VIOLATION = "invariant_violation"
#: The campaign's total wall-clock budget ran out before this run did.
BUDGET_EXCEEDED = "budget_exceeded"
#: The run failed at least once but succeeded on a retry (``ok`` is True).
RETRIED_OK = "retried_ok"

#: Every kind an outcome's ``error_kind`` can carry.
ERROR_KINDS = (TIMEOUT, WORKER_CRASH, SIM_ERROR, INVARIANT_VIOLATION,
               BUDGET_EXCEEDED, RETRIED_OK)

#: Traceback lines kept per failed attempt (the tail is where the cause is).
TRACEBACK_TAIL_LINES = 8

#: Dispatch-loop poll period.  Completion detection lags by up to one
#: poll, so this bounds the per-task latency the loop adds over a bare
#: ``pool.map`` (measured by ``benchmarks/bench_resilient_overhead.py``);
#: polling ``AsyncResult.ready()`` at this rate costs negligible CPU.
_POLL_S = 0.002

#: How long a dispatched run may stay beacon-less after a worker death
#: before the parent concludes the dead worker took it (see `_run_pool`).
_BEACON_GRACE_S = 1.0


def default_start_method() -> Optional[str]:
    """``fork`` where the platform offers it (cheap workers, inherited
    pages), else the platform default.  ``CampaignRunner`` makes this
    explicit so the pool path is also exercised — and tested — under
    ``spawn``, where everything must travel by pickle."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else None


def traceback_tail(limit: int = TRACEBACK_TAIL_LINES) -> str:
    """The last ``limit`` lines of the active exception's traceback."""
    lines = traceback.format_exc().strip().splitlines()
    return "\n".join(lines[-limit:])


# ----------------------------------------------------------------------
# Policy.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How hard to fight for each run, and for how long overall.

    ``retries`` failed attempts are re-dispatched after a seeded,
    jittered exponential backoff; ``timeout_s`` is the per-run wall-clock
    watchdog (pool path only); ``max_total_s`` is a campaign-wide
    wall-clock budget — once spent, remaining runs are tagged
    :data:`BUDGET_EXCEEDED` instead of executing.
    """

    retries: int = 0
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    max_total_s: Optional[float] = None

    def delay_s(self, index: int, attempt: int) -> float:
        """Backoff before re-dispatching run ``index`` after ``attempt``
        failures.  Seeded per (policy seed, run, attempt), so a rerun of
        the same campaign waits the same schedule — retry timing is as
        reproducible as the runs themselves."""
        base = self.backoff_s * (self.backoff_factor ** max(0, attempt - 1))
        rng = random.Random(f"{self.seed}:{index}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


# ----------------------------------------------------------------------
# Chaos drills.
# ----------------------------------------------------------------------
#: Chaos kinds: raise an exception, kill the worker, or hang it.
CHAOS_KINDS = ("raise", "crash", "hang")


@dataclass(frozen=True)
class ChaosSpec:
    """A misbehavior drill for one grid point — the fixture that keeps
    the recovery paths honest (tests, CI smoke, and operator fire
    drills).

    ``kind`` is ``"raise"`` (throw :class:`ResilienceError`), ``"crash"``
    (``os._exit`` the worker mid-run), or ``"hang"`` (sleep ``hang_s``).
    With a ``latch`` file, only the first ``arm`` attempts misbehave —
    the attempt counter lives in the file so it survives worker
    boundaries — which is how "fails once, then succeeds on retry" is
    scripted.  Without a latch every attempt misbehaves.
    """

    kind: str = "raise"
    arm: int = 1
    latch: Optional[str] = None
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ResilienceError(
                f"unknown chaos kind {self.kind!r} "
                f"(want one of {', '.join(CHAOS_KINDS)})")

    def trip(self) -> None:
        """Misbehave if still armed; called at the top of the run."""
        if self.latch is not None:
            try:
                with open(self.latch) as handle:
                    count = int(handle.read().strip() or 0)
            except (OSError, ValueError):
                count = 0
            count += 1
            with open(self.latch, "w") as handle:
                handle.write(str(count))
            if count > self.arm:
                return
        if self.kind == "hang":
            time.sleep(self.hang_s)
            return
        if self.kind == "crash":
            os._exit(17)
        raise ResilienceError(f"chaos: injected failure ({self.kind})")


# ----------------------------------------------------------------------
# Results and accounting.
# ----------------------------------------------------------------------
@dataclass
class TaskResult:
    """One task's final accounting after retries and journal replay."""

    index: int
    result: Any = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    traceback: Optional[str] = None
    elapsed_s: float = 0.0
    attempts: int = 1
    journaled: bool = False
    #: Served from a content-addressed result store (``repro.store``)
    #: instead of executing — the cross-campaign analog of ``journaled``.
    stored: bool = False
    #: The original exception object — inline (serial) execution only,
    #: so ``reraise`` can propagate the real type to the caller.
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ExecStats:
    """What resilience cost: every recovery action, counted."""

    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    worker_restarts: int = 0
    budget_exceeded: int = 0
    journal_skipped: int = 0


# ----------------------------------------------------------------------
# The journal.
# ----------------------------------------------------------------------
class RunJournal:
    """Append-only JSONL of completed runs, streamed as they finish.

    Each line carries the run's content digest, so a resume pass matches
    journaled outcomes to the *same* runs of the *same* spec — a changed
    spec simply misses and re-executes.  Only successful runs are
    journaled: failures are retried fresh on resume (a crash or timeout
    may not recur on a healthy machine).  A torn trailing line — the
    signature of a mid-write kill — is tolerated and ignored on load.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    def append(self, entry: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(entry, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def load(path: str) -> Dict[str, dict]:
        """Digest-keyed journal entries; missing file means no entries.

        A truncated or corrupt line — the torn tail of a mid-write kill,
        or bit rot anywhere in the file — is skipped with a warning
        instead of raising, so one bad line never costs the rest of a
        journal's resume value.
        """
        entries: Dict[str, dict] = {}
        try:
            handle = open(path, errors="replace")
        except FileNotFoundError:
            return entries
        with handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"run journal {path}: skipping corrupt line "
                        f"{number} (torn write?)", RuntimeWarning,
                        stacklevel=2)
                    continue
                if isinstance(entry, dict) and "digest" in entry:
                    entries[entry["digest"]] = entry
                else:
                    warnings.warn(
                        f"run journal {path}: skipping line {number} "
                        f"(not a digest-keyed entry)", RuntimeWarning,
                        stacklevel=2)
        return entries


def _default_digest(index: int, payload: Any) -> str:
    """Canonical JSON content digest (:func:`repro.store.digest.
    task_digest`): stable across processes and dict construction order,
    unlike the ``repr()`` hashing it replaced."""
    return task_digest(index, payload)


def _legacy_repr_digest(index: int, payload: Any) -> str:
    """The pre-store ``repr()``-based digest, kept only so journals
    written before the canonical digest landed stay resumable (the
    executor falls back to this key on a canonical-digest miss)."""
    return hashlib.sha256(repr((index, payload)).encode()).hexdigest()


# ----------------------------------------------------------------------
# Worker-side plumbing (module-level: must pickle under ``spawn``).
# ----------------------------------------------------------------------
_BEACON = None  # per-worker: the start-announcement queue


def _install_worker(beacon, initializer, initargs) -> None:
    """Pool initializer: wire the beacon, then run the user's own."""
    global _BEACON
    _BEACON = beacon
    if initializer is not None:
        initializer(*initargs)


def _classify(exc: BaseException) -> str:
    """Taxonomy kind for an exception a run raised."""
    return INVARIANT_VIOLATION if isinstance(exc, InvariantViolation) \
        else SIM_ERROR


def _guarded_call(task_fn: Callable[[Any], Any], index: int,
                  payload: Any) -> Tuple[bool, Any, Optional[str],
                                         Optional[str], Optional[str],
                                         float]:
    """Announce, execute, and capture — nothing escapes but the tuple."""
    if _BEACON is not None:
        try:
            _BEACON.put((os.getpid(), index))
        except Exception:
            pass  # a lost beacon degrades crash attribution, not results
    start = time.perf_counter()
    try:
        return (True, task_fn(payload), None, None, None,
                time.perf_counter() - start)
    except Exception as exc:
        return (False, None, _classify(exc),
                f"{type(exc).__name__}: {exc}",
                traceback_tail(), time.perf_counter() - start)


# ----------------------------------------------------------------------
# Dispatch bookkeeping.
# ----------------------------------------------------------------------
@dataclass
class _Attempt:
    """One dispatchable unit: a task plus its retry state."""

    index: int
    payload: Any
    digest: str
    attempts: int = 0          # attempts dispatched so far
    not_before: float = 0.0    # monotonic backoff gate


@dataclass
class _Flight:
    """One in-flight dispatch: the attempt plus where/when it runs."""

    entry: _Attempt
    handle: Any                # multiprocessing AsyncResult
    dispatched_at: float
    pid: Optional[int] = None  # set when the worker's beacon arrives


class ResilientExecutor:
    """Runs ``(index, payload)`` tasks through ``task_fn`` with retries,
    a timeout watchdog, crash recovery, a wall-clock budget, and journal
    streaming/resume.  Generic over the task function so campaign
    workers and chaos fixtures share one dispatch loop."""

    def __init__(self, task_fn: Callable[[Any], Any], workers: int = 1,
                 policy: Optional[RetryPolicy] = None,
                 initializer: Optional[Callable] = None,
                 initargs: Sequence[Any] = (),
                 start_method: Optional[str] = None,
                 journal: Optional[RunJournal] = None,
                 resume: Optional[Dict[str, dict]] = None,
                 digest_fn: Callable[[int, Any], str] = _default_digest,
                 encode: Callable[[Any], Any] = lambda value: value,
                 decode: Callable[[Any], Any] = lambda value: value,
                 stats: Optional[ExecStats] = None) -> None:
        self.task_fn = task_fn
        self.workers = max(1, int(workers))
        self.policy = policy if policy is not None else RetryPolicy()
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.start_method = start_method if start_method is not None \
            else default_start_method()
        self.journal = journal
        self.resume = resume or {}
        self.digest_fn = digest_fn
        self.encode = encode
        self.decode = decode
        self.stats = stats if stats is not None else ExecStats()
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Tuple[int, Any]]) -> List[TaskResult]:
        """Execute every task, returning results sorted by index — one
        :class:`TaskResult` per task, no matter what happened to it."""
        if self.policy.max_total_s is not None:
            self._deadline = time.monotonic() + self.policy.max_total_s
        results: Dict[int, TaskResult] = {}
        todo: List[_Attempt] = []
        for index, payload in tasks:
            digest = self.digest_fn(index, payload)
            entry = self.resume.get(digest)
            if entry is None and self.resume \
                    and self.digest_fn is _default_digest:
                # Compatibility read path: journals written before the
                # canonical digest used repr() hashing.
                entry = self.resume.get(_legacy_repr_digest(index,
                                                            payload))
            if entry is not None:
                results[index] = self._from_journal(index, entry)
                self.stats.journal_skipped += 1
            else:
                todo.append(_Attempt(index=index, payload=payload,
                                     digest=digest))
        if todo:
            # A single run only warrants a pool when a watchdog must be
            # able to kill it; serial execution cannot preempt.
            if self.workers <= 1 or (len(todo) <= 1
                                     and self.policy.timeout_s is None):
                self._run_serial(todo, results)
            else:
                self._run_pool(todo, results)
        return [results[index] for index in sorted(results)]

    # ------------------------------------------------------------------
    # Serial path: same taxonomy/retries/budget/journal, no preemption.
    # ------------------------------------------------------------------
    def _run_serial(self, todo: List[_Attempt],
                    results: Dict[int, TaskResult]) -> None:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        for entry in todo:
            if self._budget_exhausted():
                self._give_up(results, entry)
                continue
            results[entry.index] = self._serial_task(entry)

    def _serial_task(self, entry: _Attempt) -> TaskResult:
        while True:
            entry.attempts += 1
            start = time.perf_counter()
            try:
                value = self.task_fn(entry.payload)
            except Exception as exc:
                elapsed = time.perf_counter() - start
                error = f"{type(exc).__name__}: {exc}"
                tail = traceback_tail()
                kind = _classify(exc)
                if kind != INVARIANT_VIOLATION \
                        and entry.attempts <= self.policy.retries \
                        and not self._budget_exhausted():
                    self.stats.retries += 1
                    time.sleep(self.policy.delay_s(entry.index,
                                                   entry.attempts))
                    continue
                return TaskResult(index=entry.index, error=error,
                                  error_kind=kind, traceback=tail,
                                  elapsed_s=elapsed,
                                  attempts=entry.attempts, exception=exc)
            elapsed = time.perf_counter() - start
            return self._succeed(entry, value, elapsed)

    # ------------------------------------------------------------------
    # Pool path: async dispatch + beacon + watchdog + respawn.
    # ------------------------------------------------------------------
    def _run_pool(self, todo: List[_Attempt],
                  results: Dict[int, TaskResult]) -> None:
        ctx = multiprocessing.get_context(self.start_method)
        processes = min(self.workers, len(todo))
        # Without a watchdog the clock doesn't matter, so keep a backlog
        # queued in the pool — a worker that finishes picks up its next
        # task without waiting for the parent's poll.  With a timeout,
        # in-flight work stays bounded by the worker count so that
        # dispatch time ≈ start time and the watchdog clock is honest.
        depth = processes * 2 if self.policy.timeout_s is None \
            else processes
        pending: List[_Attempt] = list(todo)
        inflight: Dict[int, _Flight] = {}
        pool = beacon = None
        last_death_at: Optional[float] = None
        unattributed = 0           # observed deaths not yet blamed on a run
        try:
            pool, beacon, known_pids = self._spawn(ctx, processes)
            while pending or inflight:
                now = time.monotonic()

                if self._budget_exhausted():
                    for entry in pending + [flight.entry
                                            for flight in inflight.values()]:
                        self._give_up(results, entry)
                    pending.clear()
                    inflight.clear()
                    break

                # Dispatch into free slots.  In-flight work is bounded by
                # the worker count, so a dispatched run starts (nearly)
                # immediately and the watchdog clock is honest.
                progressed = False
                while len(inflight) < depth:
                    entry = self._next_ready(pending, now)
                    if entry is None:
                        break
                    inflight[entry.index] = self._dispatch(pool, entry, now)
                    progressed = True

                # Beacons attribute runs to worker pids.
                self._drain_beacon(beacon, inflight)

                # Completed runs (success or captured exception).
                ready = [index for index, flight in inflight.items()
                         if flight.handle.ready()]
                progressed = progressed or bool(ready)
                for index in ready:
                    flight = inflight.pop(index)
                    ok, value, kind, error, tail, elapsed = \
                        flight.handle.get()
                    if ok:
                        results[index] = self._succeed(flight.entry, value,
                                                       elapsed)
                    else:
                        self._fail(results, pending, flight.entry,
                                   kind, error, tail, elapsed, now)

                # Crashed workers: a vanished pid takes its run with it
                # (the pool replaces the worker on its own).  Runs whose
                # beacons matched a dead pid are failed directly; beyond
                # those, at most one beacon-less run per unattributed
                # death is assumed lost too (oldest dispatch first, after
                # a grace period) — re-running a live run is safe
                # (deterministic sims; first result wins), losing one is
                # not, and the bound keeps backlog runs that merely sat
                # queued through a death from being blamed for it.
                pids = self._pool_pids(pool)
                dead = known_pids - pids
                if dead:
                    last_death_at = now
                    self.stats.worker_restarts += len(dead)
                    unattributed += len(dead)
                for index, flight in list(inflight.items()):
                    if flight.pid is not None and flight.pid in dead:
                        inflight.pop(index)
                        unattributed -= 1
                        self._crash(results, pending, flight, now)
                if unattributed > 0 and last_death_at is not None:
                    suspects = sorted(
                        (flight for flight in inflight.values()
                         if flight.pid is None
                         and last_death_at >= flight.dispatched_at
                         and now - flight.dispatched_at > _BEACON_GRACE_S),
                        key=lambda flight: flight.dispatched_at)
                    for flight in suspects[:unattributed]:
                        inflight.pop(flight.entry.index)
                        unattributed -= 1
                        self._crash(results, pending, flight, now)
                known_pids = pids

                # Watchdog: a hung worker cannot be cancelled one run at
                # a time, so tear the whole pool down; healthy in-flight
                # runs re-dispatch without an attempt charge.
                if self.policy.timeout_s is not None and inflight:
                    expired = {index for index, flight in inflight.items()
                               if now - flight.dispatched_at
                               > self.policy.timeout_s}
                    if expired:
                        self.stats.timeouts += len(expired)
                        for index, flight in list(inflight.items()):
                            inflight.pop(index)
                            if index in expired:
                                self._fail(
                                    results, pending, flight.entry, TIMEOUT,
                                    f"run exceeded the "
                                    f"{self.policy.timeout_s:g}s wall-clock "
                                    f"timeout", None,
                                    now - flight.dispatched_at, now)
                            else:
                                flight.entry.attempts -= 1
                                flight.entry.not_before = 0.0
                                pending.append(flight.entry)
                        self._teardown(pool, beacon)
                        pool, beacon, known_pids = self._spawn(ctx,
                                                               processes)
                        self.stats.worker_restarts += processes
                        last_death_at = None
                        unattributed = 0

                # Sleep only when nothing moved: a completed run frees a
                # slot that refills on the very next iteration, so the
                # loop adds at most one poll of latency per task.
                if not progressed:
                    time.sleep(_POLL_S)
        finally:
            self._teardown(pool, beacon)

    # ------------------------------------------------------------------
    def _spawn(self, ctx, processes: int):
        beacon = ctx.Queue()
        pool = ctx.Pool(processes=processes, initializer=_install_worker,
                        initargs=(beacon, self.initializer, self.initargs))
        return pool, beacon, self._pool_pids(pool)

    @staticmethod
    def _teardown(pool, beacon) -> None:
        if pool is not None:
            pool.terminate()
            pool.join()
        if beacon is not None:
            beacon.close()

    @staticmethod
    def _pool_pids(pool) -> set:
        return {proc.pid for proc in getattr(pool, "_pool", [])
                if proc.pid is not None}

    @staticmethod
    def _next_ready(pending: List[_Attempt],
                    now: float) -> Optional[_Attempt]:
        for position, entry in enumerate(pending):
            if entry.not_before <= now:
                del pending[position]
                return entry
        return None

    def _dispatch(self, pool, entry: _Attempt, now: float) -> _Flight:
        entry.attempts += 1
        handle = pool.apply_async(_guarded_call,
                                  (self.task_fn, entry.index, entry.payload))
        return _Flight(entry=entry, handle=handle, dispatched_at=now)

    @staticmethod
    def _drain_beacon(beacon, inflight: Dict[int, _Flight]) -> None:
        while True:
            try:
                pid, index = beacon.get_nowait()
            except queue.Empty:
                return
            except (OSError, ValueError):
                return  # queue torn down under us during a respawn
            flight = inflight.get(index)
            if flight is not None:
                flight.pid = pid

    # ------------------------------------------------------------------
    def _budget_exhausted(self) -> bool:
        return self._deadline is not None \
            and time.monotonic() >= self._deadline

    def _give_up(self, results: Dict[int, TaskResult],
                 entry: _Attempt) -> None:
        self.stats.budget_exceeded += 1
        results[entry.index] = TaskResult(
            index=entry.index,
            error=f"campaign wall-clock budget "
                  f"({self.policy.max_total_s:g}s) exhausted",
            error_kind=BUDGET_EXCEEDED, attempts=entry.attempts)

    def _succeed(self, entry: _Attempt, value: Any,
                 elapsed: float) -> TaskResult:
        outcome = TaskResult(index=entry.index, result=value,
                             elapsed_s=elapsed, attempts=entry.attempts)
        if entry.attempts > 1:
            outcome.error_kind = RETRIED_OK
        if self.journal is not None:
            self.journal.append({
                "digest": entry.digest, "index": entry.index,
                "attempts": outcome.attempts,
                "elapsed_s": outcome.elapsed_s,
                "error_kind": outcome.error_kind,
                "result": self.encode(outcome.result),
            })
        return outcome

    def _crash(self, results: Dict[int, TaskResult],
               pending: List[_Attempt], flight: _Flight,
               now: float) -> None:
        self.stats.worker_crashes += 1
        self._fail(results, pending, flight.entry, WORKER_CRASH,
                   f"worker process died (pid {flight.pid})", None,
                   now - flight.dispatched_at, now)

    def _fail(self, results: Dict[int, TaskResult],
              pending: List[_Attempt], entry: _Attempt, kind: str,
              error: Optional[str], tail: Optional[str], elapsed: float,
              now: float) -> None:
        # Oracle violations are deterministic: a retry can only mask the
        # finding, never fix it, so the retry policy does not apply.
        if kind != INVARIANT_VIOLATION \
                and entry.attempts <= self.policy.retries \
                and not self._budget_exhausted():
            self.stats.retries += 1
            entry.not_before = now + self.policy.delay_s(entry.index,
                                                         entry.attempts)
            pending.append(entry)
            return
        results[entry.index] = TaskResult(
            index=entry.index, error=error, error_kind=kind,
            traceback=tail, elapsed_s=elapsed, attempts=entry.attempts)

    def _from_journal(self, index: int, entry: dict) -> TaskResult:
        data = entry.get("result")
        return TaskResult(index=index,
                          result=self.decode(data) if data is not None
                          else None,
                          error_kind=entry.get("error_kind"),
                          attempts=entry.get("attempts", 1),
                          elapsed_s=entry.get("elapsed_s", 0.0),
                          journaled=True)
