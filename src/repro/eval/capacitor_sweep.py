"""Capacitor-size sensitivity (Fig. 15).

The paper varies the energy buffer over 1/2/5/10 mF with thresholds set so
every size buffers the same usable energy, and measures total execution
time in the harvesting environment: bigger capacitors charge slower, so
total time grows with capacitance while NVP and GECKO track each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .campaign import AttackSpec, CampaignRunner, ExperimentSpec
from .common import VictimConfig

CAPACITOR_SIZES_F = (1e-3, 2e-3, 5e-3, 10e-3)


@dataclass
class CapacitorPoint:
    """Time to finish a fixed batch of application runs at one size."""

    capacitance_f: float
    scheme: str
    total_time_s: float
    completions: int


def _equal_energy_thresholds(capacitance: float,
                             usable_j: float = 1.5e-4,
                             v_off: float = 2.2) -> Dict[str, float]:
    """Thresholds buffering the same usable energy regardless of C (§VII-D).

    The window is deliberately small (time-compressed experiment): every
    size stores ``usable_j`` joules between ``v_off`` and ``v_on``, so only
    capacitance-dependent effects — self-discharge, mainly — separate the
    curves.
    """
    v_on = math.sqrt(v_off ** 2 + 2.0 * usable_j / capacitance)
    v_backup = v_off + 0.6 * (v_on - v_off)
    return {"v_on": v_on, "v_backup": v_backup, "v_off": v_off}


def figure15(workload: str = "crc32",
             sizes: Sequence[float] = CAPACITOR_SIZES_F,
             schemes: Sequence[str] = ("nvp", "gecko"),
             target_completions: int = 800,
             harvest_power_w: float = 1.2e-3,
             leakage_a_per_f: float = 0.04,
             max_sim_s: float = 20.0,
             workers: int = 1) -> List[CapacitorPoint]:
    """Total execution time for a fixed batch, across capacitor sizes.

    Harvested power sits below the active draw, so the device duty-cycles:
    run from ``v_on`` down to ``v_backup``, checkpoint, recharge.  The
    usable energy is equal across sizes (§VII-D), but self-discharge grows
    with capacitance, so big buffers charge slower and total time rises.

    One batch-mode campaign: sizes and thresholds are coupled, so the axis
    sweeps whole :class:`VictimConfig` objects; each scheme compiles once.
    """
    victims: List[VictimConfig] = []
    for scheme in schemes:
        for size in sizes:
            thresholds = _equal_energy_thresholds(size)
            victims.append(VictimConfig(
                workload=workload, scheme=scheme, capacitance=size,
                supply_w=harvest_power_w,
                cap_v_max=3.3, cap_leakage_a_per_f=leakage_a_per_f,
                cap_v_init=thresholds["v_on"],
                **thresholds,
            ))
    campaign = CampaignRunner(workers=workers).run(ExperimentSpec(
        name="fig15-capacitor",
        victim=victims[0],
        attack=AttackSpec.silent(),
        sweep={"victim": victims},
        baseline=False,
        mode="batch",
        target_completions=target_completions,
        batch_window_s=0.05,
        max_sim_s=max_sim_s,
        sim_overrides={"quantum": 256, "idle_dt_s": 1e-3,
                       "max_slices": 50_000_000},
    ))
    return [
        CapacitorPoint(
            capacitance_f=victim.capacitance, scheme=victim.scheme,
            total_time_s=outcome.result.duration_s,
            completions=outcome.result.completions,
        )
        for victim, outcome in zip(victims, campaign.outcomes)
    ]
