"""Capacitor-size sensitivity (Fig. 15).

The paper varies the energy buffer over 1/2/5/10 mF with thresholds set so
every size buffers the same usable energy, and measures total execution
time in the harvesting environment: bigger capacitors charge slower, so
total time grows with capacitance while NVP and GECKO track each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import compile_scheme
from ..energy import Capacitor, ConstantSupply, PowerSystem
from ..errors import SimulationError
from ..runtime import IntermittentSimulator, Machine, SimConfig, runtime_for
from ..workloads import source

CAPACITOR_SIZES_F = (1e-3, 2e-3, 5e-3, 10e-3)


@dataclass
class CapacitorPoint:
    """Time to finish a fixed batch of application runs at one size."""

    capacitance_f: float
    scheme: str
    total_time_s: float
    completions: int


def _equal_energy_thresholds(capacitance: float,
                             usable_j: float = 1.5e-4,
                             v_off: float = 2.2) -> Dict[str, float]:
    """Thresholds buffering the same usable energy regardless of C (§VII-D).

    The window is deliberately small (time-compressed experiment): every
    size stores ``usable_j`` joules between ``v_off`` and ``v_on``, so only
    capacitance-dependent effects — self-discharge, mainly — separate the
    curves.
    """
    v_on = math.sqrt(v_off ** 2 + 2.0 * usable_j / capacitance)
    v_backup = v_off + 0.6 * (v_on - v_off)
    return {"v_on": v_on, "v_backup": v_backup, "v_off": v_off}


def figure15(workload: str = "crc32",
             sizes: Sequence[float] = CAPACITOR_SIZES_F,
             schemes: Sequence[str] = ("nvp", "gecko"),
             target_completions: int = 800,
             harvest_power_w: float = 1.2e-3,
             leakage_a_per_f: float = 0.04,
             max_sim_s: float = 20.0) -> List[CapacitorPoint]:
    """Total execution time for a fixed batch, across capacitor sizes.

    Harvested power sits below the active draw, so the device duty-cycles:
    run from ``v_on`` down to ``v_backup``, checkpoint, recharge.  The
    usable energy is equal across sizes (§VII-D), but self-discharge grows
    with capacitance, so big buffers charge slower and total time rises.
    """
    points: List[CapacitorPoint] = []
    for scheme in schemes:
        compiled = compile_scheme(source(workload), scheme)
        for size in sizes:
            thresholds = _equal_energy_thresholds(size)
            capacitor = Capacitor(size, v_max=3.3,
                                  leakage_a_per_f=leakage_a_per_f)
            capacitor.reset(thresholds["v_on"])
            power = PowerSystem(
                capacitor=capacitor,
                harvester=ConstantSupply(harvest_power_w),
                **thresholds,
            )
            sim = IntermittentSimulator(
                machine=Machine(compiled.linked),
                runtime=runtime_for(compiled),
                power=power,
                config=SimConfig(quantum=256, idle_dt_s=1e-3,
                                 max_slices=50_000_000),
            )
            completions = 0
            window = 0.05
            while completions < target_completions and sim.t < max_sim_s:
                result = sim.run(window)
                completions += result.completions
            points.append(CapacitorPoint(
                capacitance_f=size, scheme=scheme,
                total_time_s=sim.t, completions=completions,
            ))
    return points
