"""Declarative experiment campaigns: a sweep is data, not a for-loop.

Every figure and table in the paper's evaluation (§IV, §VII) is a sweep —
over frequency, distance, capacitance, scheme, or device.  This module
turns those sweeps into values:

* :class:`ExperimentSpec` — one victim + attack + path + sim config, plus
  ``sweep`` axes that expand into the cartesian grid of runs;
* :class:`CampaignRunner` — executes the grid, serially or across a
  ``multiprocessing`` pool (specs are picklable; each worker builds its own
  simulator), with a keyed compile cache (each (workload, scheme, budget)
  compiles once per campaign) and baseline deduplication (the silent-attack
  baseline for a victim runs once and is shared by every attacked point);
* :class:`CampaignResult` — per-run results, rates, timings and failures,
  serializable to JSON.

A 41-point Fig. 4-style sweep therefore costs one compile, one baseline,
and 41 attacked runs, instead of 41 of each::

    spec = ExperimentSpec(
        victim=VictimConfig(device_name="TI-MSP430FR5994", duration_s=0.03),
        attack=AttackSpec.tone(tx_dbm=20.0),
        path=PathSpec.dpi("P2"),
        sweep={"attack.freq_mhz": frequency_sweep_mhz()},
    )
    campaign = CampaignRunner(workers=4).run(spec)
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..emi import AttackSchedule, DPIPath, EMISource, RemotePath
from ..errors import ReproError
from ..obs import (
    CAMPAIGN_RETRIES,
    CAMPAIGN_TIMEOUTS,
    CAMPAIGN_WORKER_RESTARTS,
    Observability,
    merge_flat,
)
from ..runtime import IntermittentSimulator, Machine, SimResult, runtime_for
from ..store.digest import jsonable as _jsonable
from ..store.digest import run_digest
from .common import REMOTE_DISTANCE_M, REMOTE_TX_DBM, VictimConfig
from .resilient import (
    ExecStats,
    ResilientExecutor,
    RetryPolicy,
    RunJournal,
    TaskResult,
    default_start_method,
)


class CampaignError(ReproError):
    """An experiment spec that cannot be expanded or executed."""


# ----------------------------------------------------------------------
# Declarative attack / path descriptions (picklable, cache-keyable).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttackSpec:
    """A tone described by data; the schedule is built per grid point.

    ``freq_mhz=None`` resolves to the victim monitor's resonant peak at
    build time (the paper's "most effective tone").  ``windows`` are
    (start, end) fractions of the run window; ``None`` means a continuous
    tone from t=0 and ``()`` means no transmission at all.
    """

    freq_mhz: Optional[float] = None
    tx_dbm: float = REMOTE_TX_DBM
    windows: Optional[Tuple[Tuple[float, float], ...]] = None

    @classmethod
    def silent(cls) -> "AttackSpec":
        return cls(windows=())

    @classmethod
    def tone(cls, freq_mhz: Optional[float] = None,
             tx_dbm: float = REMOTE_TX_DBM) -> "AttackSpec":
        return cls(freq_mhz=freq_mhz, tx_dbm=tx_dbm)

    @classmethod
    def bursts(cls, windows: Sequence[Tuple[float, float]],
               freq_mhz: Optional[float] = None,
               tx_dbm: float = REMOTE_TX_DBM) -> "AttackSpec":
        return cls(freq_mhz=freq_mhz, tx_dbm=tx_dbm,
                   windows=tuple(tuple(w) for w in windows))

    def build(self, victim: VictimConfig, duration_s: float) -> AttackSchedule:
        if self.windows == ():
            return AttackSchedule.silent()
        if self.freq_mhz is not None:
            freq_hz = self.freq_mhz * 1e6
        else:
            curve = victim.profile().curve_for(victim.monitor_kind)
            freq_hz = curve.peak_frequency()
        source = EMISource(freq_hz, self.tx_dbm)
        if self.windows is None:
            return AttackSchedule.always(source)
        schedule = AttackSchedule()
        for start, end in self.windows:
            schedule.add(start * duration_s, end * duration_s, source)
        return schedule


@dataclass(frozen=True)
class PathSpec:
    """Remote (over-the-air) or DPI (wired) coupling, as data."""

    kind: str = "remote"               # "remote" | "dpi"
    distance_m: float = REMOTE_DISTANCE_M
    walls: int = 0
    point: str = "P2"                  # DPI injection point

    @classmethod
    def remote(cls, distance_m: float = REMOTE_DISTANCE_M,
               walls: int = 0) -> "PathSpec":
        return cls(kind="remote", distance_m=distance_m, walls=walls)

    @classmethod
    def dpi(cls, point: str = "P2") -> "PathSpec":
        return cls(kind="dpi", point=point)

    def build(self):
        if self.kind == "remote":
            return RemotePath(distance_m=self.distance_m, walls=self.walls)
        if self.kind == "dpi":
            return DPIPath(point=self.point)
        raise CampaignError(f"unknown path kind {self.kind!r}")


def _build_attack(attack: Any, victim: VictimConfig,
                  duration_s: float) -> AttackSchedule:
    """Specs build per point; raw AttackSchedule objects pass through."""
    if isinstance(attack, AttackSpec):
        return attack.build(victim, duration_s)
    return attack


def _build_path(path: Any):
    return path.build() if isinstance(path, PathSpec) else path


def _key_of(obj: Any) -> Any:
    """A hashable cache key for a spec or a raw schedule/path object."""
    return obj if isinstance(obj, (AttackSpec, PathSpec)) else repr(obj)


# ----------------------------------------------------------------------
# Grid points.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved grid point.  Picklable: workers build their own
    simulator from it, so campaigns fan out across processes safely."""

    victim: VictimConfig
    attack: Any = field(default_factory=AttackSpec.silent)
    path: Any = field(default_factory=PathSpec)
    duration_s: Optional[float] = None
    sim_overrides: Tuple[Tuple[str, Any], ...] = ()
    mode: str = "fixed"                # "fixed" | "batch"
    target_completions: int = 0        # batch mode: stop after this many
    batch_window_s: float = 0.05       # batch mode: sim window per step
    max_sim_s: float = 20.0            # batch mode: hard time stop
    #: Optional fault injection (a :class:`~repro.faultsim.FaultSpec`);
    #: the worker builds the injector, so grid points stay picklable.
    fault: Any = None
    #: Attach a deterministic :class:`~repro.obs.Observability` bundle to
    #: the run; its metrics travel back inside :attr:`SimResult.metrics`,
    #: so serial and pooled executions aggregate identically.
    telemetry: bool = False
    #: Optional misbehavior drill (a :class:`~repro.eval.resilient.ChaosSpec`)
    #: tripped at the top of the run — how crash/hang/retry recovery is
    #: exercised end-to-end without faking the executor.
    chaos: Any = None

    @property
    def duration(self) -> float:
        return self.duration_s if self.duration_s is not None \
            else self.victim.duration_s

    def compile_key(self) -> Tuple:
        return self.victim.compile_key()

    def baseline_key(self) -> Tuple:
        """Everything the silent baseline depends on — not the attack."""
        return (self.victim.cache_key(), _key_of(self.path), self.duration,
                self.sim_overrides, self.mode, self.target_completions,
                self.batch_window_s, self.max_sim_s, self.telemetry)

    def silenced(self) -> "RunSpec":
        """The golden reference point: no attack, no injected fault."""
        return replace(self, attack=AttackSpec.silent(), fault=None,
                       chaos=None)


def execute_run(run: RunSpec, compiled) -> SimResult:
    """Build a fresh simulator for one grid point and run it."""
    if run.chaos is not None:
        run.chaos.trip()
    victim = run.victim
    duration = run.duration
    injector = None
    if run.fault is not None:
        from ..faultsim.injector import FaultInjector  # avoid import cycle
        injector = FaultInjector.from_spec(run.fault)
    obs = Observability.for_telemetry() if run.telemetry else None
    sim = IntermittentSimulator(
        machine=Machine(compiled.linked),
        runtime=runtime_for(compiled),
        power=victim.power_system(),
        attack=_build_attack(run.attack, victim, duration),
        path=_build_path(run.path),
        device_profile=victim.profile(),
        monitor_kind=victim.monitor_kind,
        config=victim.sim_config(**dict(run.sim_overrides)),
        fault_injector=injector,
        obs=obs,
        backend=victim.backend,
    )
    if run.mode == "batch":
        return _run_batch(sim, run)
    if run.mode != "fixed":
        raise CampaignError(f"unknown run mode {run.mode!r}")
    return sim.run(duration)


def _run_batch(sim: IntermittentSimulator, run: RunSpec) -> SimResult:
    """Fixed-batch mode (Fig. 15): simulate windows until the completion
    target is met or ``max_sim_s`` of simulated time elapses."""
    total = SimResult()
    start_t = sim.t
    while total.completions < run.target_completions \
            and sim.t < run.max_sim_s:
        window = sim.run(run.batch_window_s)
        _merge_window(total, window)
    total.duration_s = sim.t - start_t
    return total


def _merge_window(total: SimResult, window: SimResult) -> None:
    total.executed_cycles += window.executed_cycles
    total.overhead_cycles += window.overhead_cycles
    total.completions += window.completions
    total.reboots += window.reboots
    total.brownouts += window.brownouts
    total.completion_times.extend(window.completion_times)
    total.committed_outputs.extend(window.committed_outputs)
    total.timeline.extend(window.timeline)
    # Runtime-stat fields are cumulative snapshots, not per-window deltas.
    total.jit_checkpoints = window.jit_checkpoints
    total.jit_checkpoint_failures = window.jit_checkpoint_failures
    total.attacks_detected = window.attacks_detected
    total.rollback_restores = window.rollback_restores
    total.marks_committed = window.marks_committed
    total.final_state = window.final_state
    # The simulator snapshots metrics/events cumulatively at the end of
    # every window, so the latest window carries the whole history.
    if window.metrics:
        total.metrics = window.metrics
    if window.events:
        total.events = window.events
    if window.machine_fault:
        total.machine_fault = window.machine_fault


# ----------------------------------------------------------------------
# The spec.
# ----------------------------------------------------------------------
@dataclass
class ExperimentSpec:
    """A whole experiment as data: base point + sweep axes.

    ``sweep`` maps axis targets to value lists; the grid is the cartesian
    product in declaration order.  Axis targets:

    * ``"victim"`` / ``"attack"`` / ``"path"`` — replace the whole object
      (for coupled parameters, e.g. Fig. 15's threshold-matched victims);
    * ``"victim.<field>"`` — :meth:`VictimConfig.with_overrides`;
    * ``"attack.<field>"`` / ``"path.<field>"`` — spec field replacement;
    * ``"sim.<field>"`` — a :class:`SimConfig` override;
    * ``"duration_s"`` — the run window;
    * ``"backend"`` — the execution backend ("interpreter" | "threaded"),
      shorthand for ``"victim.backend"``;
    * ``"fault"`` — a fault injection per point (:mod:`repro.faultsim`);
    * ``"chaos"`` — a misbehavior drill per point
      (:class:`~repro.eval.resilient.ChaosSpec`);
    * ``"*"`` — a *paired* axis: each value is a mapping of the targets
      above, applied together as one grid point.  This is how coupled
      parameters sweep without a cartesian blow-up — e.g. the adversary
      search's (attack, path, duration) candidates.

    ``baseline=True`` runs the silent-attack baseline for every distinct
    (victim, path, duration, sim config) and attaches forward-progress
    rates to the outcomes; identical baselines are computed once.
    """

    name: str = "campaign"
    victim: VictimConfig = field(default_factory=VictimConfig)
    attack: Any = field(default_factory=AttackSpec.silent)
    path: Any = field(default_factory=PathSpec)
    duration_s: Optional[float] = None
    sim_overrides: Mapping[str, Any] = field(default_factory=dict)
    sweep: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    baseline: bool = True
    mode: str = "fixed"
    target_completions: int = 0
    batch_window_s: float = 0.05
    max_sim_s: float = 20.0
    fault: Any = None
    #: Attach per-run observability metrics (see :attr:`RunSpec.telemetry`).
    telemetry: bool = False
    #: Misbehavior drill applied to every point (see :attr:`RunSpec.chaos`).
    chaos: Any = None
    #: Execution backend for every point; ``None`` keeps the victim's own
    #: :attr:`VictimConfig.backend` (sweepable via the ``"backend"`` axis).
    backend: Optional[str] = None

    def expand(self) -> List[Tuple[Dict[str, Any], RunSpec]]:
        """The (params, run) grid, in cartesian-product order."""
        axes = list(self.sweep.items())
        grid = []
        for values in itertools.product(*(vals for _, vals in axes)):
            params = dict(zip((target for target, _ in axes), values))
            grid.append((params, self._resolve(params)))
        return grid

    def _resolve(self, params: Mapping[str, Any]) -> RunSpec:
        victim = self.victim if self.backend is None \
            else self.victim.with_overrides(backend=self.backend)
        state = {"victim": victim, "attack": self.attack,
                 "path": self.path, "duration": self.duration_s,
                 "fault": self.fault, "chaos": self.chaos}
        overrides = dict(self.sim_overrides)

        def apply(target: str, value: Any) -> None:
            if target == "victim":
                state["victim"] = value
            elif target == "attack":
                state["attack"] = value
            elif target == "path":
                state["path"] = value
            elif target == "fault":
                state["fault"] = value
            elif target == "chaos":
                state["chaos"] = value
            elif target == "duration_s":
                state["duration"] = value
            elif target == "backend":
                state["victim"] = \
                    state["victim"].with_overrides(backend=value)
            elif target.startswith("victim."):
                state["victim"] = \
                    state["victim"].with_overrides(**{target[7:]: value})
            elif target.startswith("attack."):
                if not isinstance(state["attack"], AttackSpec):
                    raise CampaignError(
                        f"axis {target!r} needs an AttackSpec base attack")
                state["attack"] = replace(state["attack"], **{target[7:]: value})
            elif target.startswith("path."):
                if not isinstance(state["path"], PathSpec):
                    raise CampaignError(
                        f"axis {target!r} needs a PathSpec base path")
                state["path"] = replace(state["path"], **{target[5:]: value})
            elif target.startswith("sim."):
                overrides[target[4:]] = value
            else:
                raise CampaignError(f"unknown sweep axis {target!r}")

        for target, value in params.items():
            if target == "*":
                if not isinstance(value, Mapping):
                    raise CampaignError(
                        f"paired axis '*' values must be mappings of axis "
                        f"targets, got {type(value).__name__}")
                for sub_target, sub_value in value.items():
                    if sub_target == "*":
                        raise CampaignError("paired axis '*' cannot nest")
                    apply(sub_target, sub_value)
            else:
                apply(target, value)
        victim, attack, path = state["victim"], state["attack"], state["path"]
        duration, fault = state["duration"], state["fault"]
        return RunSpec(
            victim=victim, attack=attack, path=path, duration_s=duration,
            sim_overrides=tuple(sorted(overrides.items())),
            mode=self.mode, target_completions=self.target_completions,
            batch_window_s=self.batch_window_s, max_sim_s=self.max_sim_s,
            fault=fault, telemetry=self.telemetry, chaos=state["chaos"],
        )


# ----------------------------------------------------------------------
# Results.  (``_jsonable`` is the canonical :func:`repro.store.digest.
# jsonable` — one folding rule for digests and serialization alike.)
# ----------------------------------------------------------------------
@dataclass
class RunOutcome:
    """One grid point's accounting: result, rate, timing, failure."""

    index: int
    params: Dict[str, Any] = field(default_factory=dict)
    result: Optional[SimResult] = None
    baseline: Optional[SimResult] = None   # shared object across outcomes
    progress_rate: Optional[float] = None
    error: Optional[str] = None
    #: Taxonomy tag (:data:`~repro.eval.resilient.ERROR_KINDS`): why the
    #: run failed — or :data:`~repro.eval.resilient.RETRIED_OK` when it
    #: failed at least once and a retry saved it (``ok`` stays True).
    error_kind: Optional[str] = None
    #: Traceback tail of the final failed attempt, when one raised.
    traceback: Optional[str] = None
    #: Execution attempts this outcome took (journal replays keep theirs).
    attempts: int = 1
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "params": _jsonable(self.params),
            "progress_rate": self.progress_rate,
            "error": self.error,
            "error_kind": self.error_kind,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
            "result": self.result.to_dict() if self.result else None,
        }


@dataclass
class CampaignStats:
    """Cache effectiveness and cost accounting for one campaign."""

    grid_points: int = 0
    compiles: int = 0
    compile_cache_hits: int = 0
    baseline_runs: int = 0
    baseline_cache_hits: int = 0
    failures: int = 0
    workers: int = 1
    wall_time_s: float = 0.0
    # Resilience accounting (see repro.eval.resilient).
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    worker_restarts: int = 0
    budget_exceeded: int = 0
    journal_skipped: int = 0
    # Result-store accounting (see repro.store): grid points served from
    # the content-addressed store vs executed (then stored).
    store_hits: int = 0
    store_misses: int = 0
    store_puts: int = 0


@dataclass
class CampaignResult:
    """Everything a campaign produced, serializable to JSON."""

    name: str
    stats: CampaignStats = field(default_factory=CampaignStats)
    outcomes: List[RunOutcome] = field(default_factory=list)
    baselines: List[RunOutcome] = field(default_factory=list)

    def results(self) -> List[Optional[SimResult]]:
        return [outcome.result for outcome in self.outcomes]

    def rates(self) -> List[Optional[float]]:
        return [outcome.progress_rate for outcome in self.outcomes]

    def failures(self) -> List[RunOutcome]:
        return [o for o in self.outcomes + self.baselines if o.error]

    def aggregate_metrics(self) -> Dict[str, Any]:
        """Campaign-level telemetry: every outcome's flat metrics summed.

        Aggregation is in outcome order over data that travelled inside
        the (picklable) results, so a serial run and a pooled run of the
        same spec produce identical dictionaries.
        """
        total: Dict[str, Any] = {}
        for outcome in self.baselines + self.outcomes:
            if outcome.result is not None and outcome.result.metrics:
                merge_flat(total, outcome.result.metrics)
        return total

    def metrics_fingerprint(self) -> str:
        """sha256 over the canonical JSON of :meth:`aggregate_metrics`."""
        canonical = json.dumps(self.aggregate_metrics(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "stats": dataclasses.asdict(self.stats),
            "outcomes": [o.to_dict() for o in self.outcomes],
            "baselines": [o.to_dict() for o in self.baselines],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


# ----------------------------------------------------------------------
# Execution: serial fast path or a resilient process pool.
# ----------------------------------------------------------------------
#: Per-worker compile cache, installed by the pool initializer.  The
#: start method is explicit (:func:`default_start_method`): under
#: ``fork`` the parent's dict is inherited for free, under ``spawn`` the
#: initargs pickle carries it — both are tested.
_WORKER_COMPILED: Dict[Tuple, Any] = {}


def _init_worker(compiled: Dict[Tuple, Any]) -> None:
    global _WORKER_COMPILED
    _WORKER_COMPILED = compiled


def _pool_execute(run: RunSpec) -> SimResult:
    """The resilient executor's task function: one grid point per call."""
    return execute_run(run, _WORKER_COMPILED[run.compile_key()])


def _encode_result(result: SimResult) -> dict:
    return result.to_dict()


def _decode_result(data: dict) -> SimResult:
    return SimResult.from_dict(data)


def _digest_fn(name: str):
    """Content digests for journal/resume matching: the campaign name,
    the task's slot, and the full (JSON-canonical) run description.  A
    changed spec digests differently and simply re-executes."""
    def digest(index: int, run: RunSpec) -> str:
        payload = json.dumps(_jsonable(dataclasses.asdict(run)),
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(f"{name}#{index}:{payload}".encode()) \
            .hexdigest()
    return digest


class CampaignRunner:
    """Executes :class:`ExperimentSpec` grids with compile caching,
    baseline deduplication, and a resilient worker pool.

    The compile cache persists across :meth:`run` calls (and can be seeded
    via ``compile_cache``), so multi-stage experiments — e.g. a rate sweep
    followed by failure-rate reruns at the biting frequencies — reuse the
    same compiled artifacts.

    Resilience knobs (see :mod:`repro.eval.resilient`):

    * ``policy`` — per-run timeout, bounded retries with seeded backoff,
      and a campaign wall-clock budget;
    * ``journal`` — stream completed runs to a JSONL file as they finish;
    * ``resume`` — skip runs already journaled at that path (typically
      the same file), so a campaign killed mid-run finishes where it left
      off with an identical :meth:`CampaignResult.metrics_fingerprint`;
    * ``start_method`` — explicit pool start method (default ``fork``
      where available); ``spawn`` works because the compile cache travels
      through the pool initializer's pickled initargs;
    * ``obs`` — campaign-level counters (``campaign.retries``,
      ``campaign.timeouts``, ``campaign.worker_restarts``) are recorded
      on this bundle's metrics registry.  They stay out of the per-run
      metrics, so fingerprints compare clean runs to resumed ones.

    Store-backed memoization (see :mod:`repro.store`, :mod:`repro.serve`):

    * ``store`` — any object with ``get(digest)`` / ``put(digest, value,
      meta)`` / ``contains(digest)`` (a local
      :class:`~repro.store.ResultStore` or a
      :meth:`~repro.serve.client.ServeClient.store_view`).  Every task is
      keyed by its content digest (:func:`~repro.store.digest.run_digest`
      — campaign-independent, so hits cross campaign and process
      boundaries); hits skip compilation and simulation entirely, misses
      execute and are written back.
    * ``dispatcher`` — an object with ``execute(tasks) -> [TaskResult]``
      (a :meth:`~repro.serve.client.ServeClient.dispatcher`): store
      misses are routed there — e.g. through a ``repro-gecko serve``
      instance's fair-share queues — instead of the local executor.
    """

    def __init__(self, workers: int = 1,
                 compile_cache: Optional[Dict[Tuple, Any]] = None,
                 reraise: bool = False,
                 policy: Optional[RetryPolicy] = None,
                 journal: Optional[str] = None,
                 resume: Optional[str] = None,
                 start_method: Optional[str] = None,
                 obs: Optional[Observability] = None,
                 store: Optional[Any] = None,
                 dispatcher: Optional[Any] = None) -> None:
        self.workers = max(1, int(workers))
        self.compile_cache: Dict[Tuple, Any] = \
            compile_cache if compile_cache is not None else {}
        self.reraise = reraise
        self.policy = policy if policy is not None else RetryPolicy()
        self.journal_path = journal
        self.resume_path = resume
        self.start_method = start_method if start_method is not None \
            else default_start_method()
        self.obs = obs
        self.store = store
        self.dispatcher = dispatcher

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> CampaignResult:
        start = time.perf_counter()
        stats = CampaignStats(workers=self.workers)
        grid = spec.expand()
        if not grid:
            raise CampaignError("spec expanded to an empty grid")
        stats.grid_points = len(grid)

        # Baseline dedup: one silent run per distinct baseline key.
        baseline_slot: Dict[Tuple, int] = {}
        baseline_specs: List[RunSpec] = []
        if spec.baseline:
            for _, run in grid:
                key = run.baseline_key()
                if key in baseline_slot:
                    stats.baseline_cache_hits += 1
                else:
                    baseline_slot[key] = len(baseline_specs)
                    baseline_specs.append(run.silenced())
                    stats.baseline_runs += 1

        # Baselines and attacked points are independent simulations, so
        # they share one task list (and one pool pass).
        tasks = [(i, run) for i, run in enumerate(baseline_specs)]
        offset = len(tasks)
        tasks += [(offset + i, run) for i, (_, run) in enumerate(grid)]

        # Resume and store lookups happen before compiling: compile keys
        # whose every run is journaled or store-served are never needed,
        # so a warm store skips the compiles too (the hit path invokes
        # neither the compiler nor the simulator).
        digest = _digest_fn(spec.name)
        resume = RunJournal.load(self.resume_path) if self.resume_path \
            else {}
        store_hits: Dict[int, dict] = {}
        store_digests: Dict[int, str] = {}
        if self.store is not None:
            for index, run in tasks:
                key = run_digest(run)
                store_digests[index] = key
                entry = self.store.get(key)
                if entry is not None:
                    store_hits[index] = entry
        needed = {run.compile_key() for index, run in tasks
                  if digest(index, run) not in resume
                  and index not in store_hits} \
            if self.dispatcher is None else set()
        for _, run in grid:
            key = run.compile_key()
            if key in self.compile_cache:
                stats.compile_cache_hits += 1
            elif key in needed:
                self.compile_cache[key] = run.victim.compile()
                stats.compiles += 1

        raw = self._run_tasks(tasks, digest=digest, resume=resume,
                              stats=stats, store_hits=store_hits,
                              store_digests=store_digests,
                              name=spec.name)
        if self.reraise:
            self._reraise_first_failure(raw)

        baselines = [
            RunOutcome(index=i, result=tr.result, error=tr.error,
                       error_kind=tr.error_kind, traceback=tr.traceback,
                       attempts=tr.attempts, elapsed_s=tr.elapsed_s)
            for i, tr in enumerate(raw[:offset])
        ]
        outcomes: List[RunOutcome] = []
        for i, ((params, run), tr) in enumerate(zip(grid, raw[offset:])):
            outcome = RunOutcome(index=i, params=params, result=tr.result,
                                 error=tr.error, error_kind=tr.error_kind,
                                 traceback=tr.traceback,
                                 attempts=tr.attempts,
                                 elapsed_s=tr.elapsed_s)
            if spec.baseline and tr.result is not None:
                base = baselines[baseline_slot[run.baseline_key()]].result
                outcome.baseline = base
                if base is not None:
                    outcome.progress_rate = (
                        min(1.0,
                            tr.result.executed_cycles / base.executed_cycles)
                        if base.executed_cycles > 0 else 0.0
                    )
            outcomes.append(outcome)
        stats.failures = sum(1 for o in outcomes + baselines if o.error)
        stats.wall_time_s = time.perf_counter() - start
        return CampaignResult(name=spec.name, stats=stats,
                              outcomes=outcomes, baselines=baselines)

    # ------------------------------------------------------------------
    def _run_tasks(self, tasks, digest=None, resume=None,
                   stats: Optional[CampaignStats] = None,
                   store_hits: Optional[Dict[int, dict]] = None,
                   store_digests: Optional[Dict[int, str]] = None,
                   name: str = "campaign") -> List[TaskResult]:
        """Dispatch the unified task list through the resilient executor.

        Serial and pooled execution share one path — taxonomy, retries,
        budget, journal and resume behave identically — so ``reraise``
        and failure accounting no longer fork on ``workers``.

        With a ``store`` attached, hit tasks are decoded straight from
        the store (no simulator, no compiler) and misses — executed
        locally or via the ``dispatcher`` — are written back, so the
        next campaign to resolve the same :class:`RunSpec` digest is
        served from cache.
        """
        store_hits = store_hits or {}
        store_digests = store_digests or {}
        results: Dict[int, TaskResult] = {}
        for index, entry in store_hits.items():
            value = entry.get("value") if isinstance(entry, dict) else None
            results[index] = TaskResult(
                index=index,
                result=_decode_result(value) if value is not None
                else None,
                stored=True)
        todo = [(index, run) for index, run in tasks
                if index not in store_hits]

        raw: List[TaskResult] = []
        if todo and self.dispatcher is not None:
            raw = self.dispatcher.execute(todo)
            exec_stats = ExecStats()
        elif todo:
            exec_stats = ExecStats()
            journal = RunJournal(self.journal_path) if self.journal_path \
                else None
            executor = ResilientExecutor(
                task_fn=_pool_execute, workers=self.workers,
                policy=self.policy, initializer=_init_worker,
                initargs=(self.compile_cache,),
                start_method=self.start_method, journal=journal,
                resume=resume,
                digest_fn=digest or _digest_fn("campaign"),
                encode=_encode_result, decode=_decode_result,
                stats=exec_stats)
            try:
                raw = executor.run(todo)
            finally:
                if journal is not None:
                    journal.close()
        else:
            exec_stats = ExecStats()

        # Write executed results back: the dispatcher's server owns its
        # own store, so only locally-executed misses are put here.
        store_puts = 0
        if self.store is not None and self.dispatcher is None:
            for tr in raw:
                key = store_digests.get(tr.index)
                if tr.ok and tr.result is not None and key is not None:
                    if self.store.put(key, _encode_result(tr.result),
                                      meta={"name": name,
                                            "elapsed_s": tr.elapsed_s}):
                        store_puts += 1

        for tr in raw:
            results[tr.index] = tr
        raw = [results[index] for index in sorted(results)]
        if stats is not None and self.store is not None:
            stats.store_hits = len(store_hits)
            stats.store_misses = len(todo)
            stats.store_puts = store_puts
        if stats is not None:
            stats.retries = exec_stats.retries
            stats.timeouts = exec_stats.timeouts
            stats.worker_crashes = exec_stats.worker_crashes
            stats.worker_restarts = exec_stats.worker_restarts
            stats.budget_exceeded = exec_stats.budget_exceeded
            stats.journal_skipped = exec_stats.journal_skipped
        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.count(CAMPAIGN_RETRIES, exec_stats.retries)
            metrics.count(CAMPAIGN_TIMEOUTS, exec_stats.timeouts)
            metrics.count(CAMPAIGN_WORKER_RESTARTS,
                          exec_stats.worker_restarts)
        return raw

    def _reraise_first_failure(self, raw: List[TaskResult]) -> None:
        """``reraise=True`` now applies to pooled execution too: serial
        runs propagate the original exception object, pooled runs raise a
        :class:`CampaignError` carrying the taxonomy and traceback tail
        (the original object died with the worker)."""
        for tr in raw:
            if tr.error is None:
                continue
            if tr.exception is not None:
                raise tr.exception
            detail = f"\n{tr.traceback}" if tr.traceback else ""
            raise CampaignError(
                f"run {tr.index} failed ({tr.error_kind}): "
                f"{tr.error}{detail}")


def run_campaign(spec: ExperimentSpec, workers: int = 1) -> CampaignResult:
    """One-shot convenience: ``CampaignRunner(workers).run(spec)``."""
    return CampaignRunner(workers=workers).run(spec)
