"""Declarative experiment campaigns: a sweep is data, not a for-loop.

Every figure and table in the paper's evaluation (§IV, §VII) is a sweep —
over frequency, distance, capacitance, scheme, or device.  This module
turns those sweeps into values:

* :class:`ExperimentSpec` — one victim + attack + path + sim config, plus
  ``sweep`` axes that expand into the cartesian grid of runs;
* :class:`CampaignRunner` — executes the grid, serially or across a
  ``multiprocessing`` pool (specs are picklable; each worker builds its own
  simulator), with a keyed compile cache (each (workload, scheme, budget)
  compiles once per campaign) and baseline deduplication (the silent-attack
  baseline for a victim runs once and is shared by every attacked point);
* :class:`CampaignResult` — per-run results, rates, timings and failures,
  serializable to JSON.

A 41-point Fig. 4-style sweep therefore costs one compile, one baseline,
and 41 attacked runs, instead of 41 of each::

    spec = ExperimentSpec(
        victim=VictimConfig(device_name="TI-MSP430FR5994", duration_s=0.03),
        attack=AttackSpec.tone(tx_dbm=20.0),
        path=PathSpec.dpi("P2"),
        sweep={"attack.freq_mhz": frequency_sweep_mhz()},
    )
    campaign = CampaignRunner(workers=4).run(spec)
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..emi import AttackSchedule, DPIPath, EMISource, RemotePath
from ..errors import ReproError
from ..obs import Observability, merge_flat
from ..runtime import IntermittentSimulator, Machine, SimResult, runtime_for
from .common import REMOTE_DISTANCE_M, REMOTE_TX_DBM, VictimConfig


class CampaignError(ReproError):
    """An experiment spec that cannot be expanded or executed."""


# ----------------------------------------------------------------------
# Declarative attack / path descriptions (picklable, cache-keyable).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttackSpec:
    """A tone described by data; the schedule is built per grid point.

    ``freq_mhz=None`` resolves to the victim monitor's resonant peak at
    build time (the paper's "most effective tone").  ``windows`` are
    (start, end) fractions of the run window; ``None`` means a continuous
    tone from t=0 and ``()`` means no transmission at all.
    """

    freq_mhz: Optional[float] = None
    tx_dbm: float = REMOTE_TX_DBM
    windows: Optional[Tuple[Tuple[float, float], ...]] = None

    @classmethod
    def silent(cls) -> "AttackSpec":
        return cls(windows=())

    @classmethod
    def tone(cls, freq_mhz: Optional[float] = None,
             tx_dbm: float = REMOTE_TX_DBM) -> "AttackSpec":
        return cls(freq_mhz=freq_mhz, tx_dbm=tx_dbm)

    @classmethod
    def bursts(cls, windows: Sequence[Tuple[float, float]],
               freq_mhz: Optional[float] = None,
               tx_dbm: float = REMOTE_TX_DBM) -> "AttackSpec":
        return cls(freq_mhz=freq_mhz, tx_dbm=tx_dbm,
                   windows=tuple(tuple(w) for w in windows))

    def build(self, victim: VictimConfig, duration_s: float) -> AttackSchedule:
        if self.windows == ():
            return AttackSchedule.silent()
        if self.freq_mhz is not None:
            freq_hz = self.freq_mhz * 1e6
        else:
            curve = victim.profile().curve_for(victim.monitor_kind)
            freq_hz = curve.peak_frequency()
        source = EMISource(freq_hz, self.tx_dbm)
        if self.windows is None:
            return AttackSchedule.always(source)
        schedule = AttackSchedule()
        for start, end in self.windows:
            schedule.add(start * duration_s, end * duration_s, source)
        return schedule


@dataclass(frozen=True)
class PathSpec:
    """Remote (over-the-air) or DPI (wired) coupling, as data."""

    kind: str = "remote"               # "remote" | "dpi"
    distance_m: float = REMOTE_DISTANCE_M
    walls: int = 0
    point: str = "P2"                  # DPI injection point

    @classmethod
    def remote(cls, distance_m: float = REMOTE_DISTANCE_M,
               walls: int = 0) -> "PathSpec":
        return cls(kind="remote", distance_m=distance_m, walls=walls)

    @classmethod
    def dpi(cls, point: str = "P2") -> "PathSpec":
        return cls(kind="dpi", point=point)

    def build(self):
        if self.kind == "remote":
            return RemotePath(distance_m=self.distance_m, walls=self.walls)
        if self.kind == "dpi":
            return DPIPath(point=self.point)
        raise CampaignError(f"unknown path kind {self.kind!r}")


def _build_attack(attack: Any, victim: VictimConfig,
                  duration_s: float) -> AttackSchedule:
    """Specs build per point; raw AttackSchedule objects pass through."""
    if isinstance(attack, AttackSpec):
        return attack.build(victim, duration_s)
    return attack


def _build_path(path: Any):
    return path.build() if isinstance(path, PathSpec) else path


def _key_of(obj: Any) -> Any:
    """A hashable cache key for a spec or a raw schedule/path object."""
    return obj if isinstance(obj, (AttackSpec, PathSpec)) else repr(obj)


# ----------------------------------------------------------------------
# Grid points.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved grid point.  Picklable: workers build their own
    simulator from it, so campaigns fan out across processes safely."""

    victim: VictimConfig
    attack: Any = field(default_factory=AttackSpec.silent)
    path: Any = field(default_factory=PathSpec)
    duration_s: Optional[float] = None
    sim_overrides: Tuple[Tuple[str, Any], ...] = ()
    mode: str = "fixed"                # "fixed" | "batch"
    target_completions: int = 0        # batch mode: stop after this many
    batch_window_s: float = 0.05       # batch mode: sim window per step
    max_sim_s: float = 20.0            # batch mode: hard time stop
    #: Optional fault injection (a :class:`~repro.faultsim.FaultSpec`);
    #: the worker builds the injector, so grid points stay picklable.
    fault: Any = None
    #: Attach a deterministic :class:`~repro.obs.Observability` bundle to
    #: the run; its metrics travel back inside :attr:`SimResult.metrics`,
    #: so serial and pooled executions aggregate identically.
    telemetry: bool = False

    @property
    def duration(self) -> float:
        return self.duration_s if self.duration_s is not None \
            else self.victim.duration_s

    def compile_key(self) -> Tuple:
        return self.victim.compile_key()

    def baseline_key(self) -> Tuple:
        """Everything the silent baseline depends on — not the attack."""
        return (self.victim.cache_key(), _key_of(self.path), self.duration,
                self.sim_overrides, self.mode, self.target_completions,
                self.batch_window_s, self.max_sim_s, self.telemetry)

    def silenced(self) -> "RunSpec":
        """The golden reference point: no attack, no injected fault."""
        return replace(self, attack=AttackSpec.silent(), fault=None)


def execute_run(run: RunSpec, compiled) -> SimResult:
    """Build a fresh simulator for one grid point and run it."""
    victim = run.victim
    duration = run.duration
    injector = None
    if run.fault is not None:
        from ..faultsim.injector import FaultInjector  # avoid import cycle
        injector = FaultInjector.from_spec(run.fault)
    obs = Observability.for_telemetry() if run.telemetry else None
    sim = IntermittentSimulator(
        machine=Machine(compiled.linked),
        runtime=runtime_for(compiled),
        power=victim.power_system(),
        attack=_build_attack(run.attack, victim, duration),
        path=_build_path(run.path),
        device_profile=victim.profile(),
        monitor_kind=victim.monitor_kind,
        config=victim.sim_config(**dict(run.sim_overrides)),
        fault_injector=injector,
        obs=obs,
    )
    if run.mode == "batch":
        return _run_batch(sim, run)
    if run.mode != "fixed":
        raise CampaignError(f"unknown run mode {run.mode!r}")
    return sim.run(duration)


def _run_batch(sim: IntermittentSimulator, run: RunSpec) -> SimResult:
    """Fixed-batch mode (Fig. 15): simulate windows until the completion
    target is met or ``max_sim_s`` of simulated time elapses."""
    total = SimResult()
    start_t = sim.t
    while total.completions < run.target_completions \
            and sim.t < run.max_sim_s:
        window = sim.run(run.batch_window_s)
        _merge_window(total, window)
    total.duration_s = sim.t - start_t
    return total


def _merge_window(total: SimResult, window: SimResult) -> None:
    total.executed_cycles += window.executed_cycles
    total.overhead_cycles += window.overhead_cycles
    total.completions += window.completions
    total.reboots += window.reboots
    total.brownouts += window.brownouts
    total.completion_times.extend(window.completion_times)
    total.committed_outputs.extend(window.committed_outputs)
    total.timeline.extend(window.timeline)
    # Runtime-stat fields are cumulative snapshots, not per-window deltas.
    total.jit_checkpoints = window.jit_checkpoints
    total.jit_checkpoint_failures = window.jit_checkpoint_failures
    total.attacks_detected = window.attacks_detected
    total.rollback_restores = window.rollback_restores
    total.marks_committed = window.marks_committed
    total.final_state = window.final_state
    # The simulator snapshots metrics/events cumulatively at the end of
    # every window, so the latest window carries the whole history.
    if window.metrics:
        total.metrics = window.metrics
    if window.events:
        total.events = window.events
    if window.machine_fault:
        total.machine_fault = window.machine_fault


# ----------------------------------------------------------------------
# The spec.
# ----------------------------------------------------------------------
@dataclass
class ExperimentSpec:
    """A whole experiment as data: base point + sweep axes.

    ``sweep`` maps axis targets to value lists; the grid is the cartesian
    product in declaration order.  Axis targets:

    * ``"victim"`` / ``"attack"`` / ``"path"`` — replace the whole object
      (for coupled parameters, e.g. Fig. 15's threshold-matched victims);
    * ``"victim.<field>"`` — :meth:`VictimConfig.with_overrides`;
    * ``"attack.<field>"`` / ``"path.<field>"`` — spec field replacement;
    * ``"sim.<field>"`` — a :class:`SimConfig` override;
    * ``"duration_s"`` — the run window;
    * ``"fault"`` — a fault injection per point (:mod:`repro.faultsim`);
    * ``"*"`` — a *paired* axis: each value is a mapping of the targets
      above, applied together as one grid point.  This is how coupled
      parameters sweep without a cartesian blow-up — e.g. the adversary
      search's (attack, path, duration) candidates.

    ``baseline=True`` runs the silent-attack baseline for every distinct
    (victim, path, duration, sim config) and attaches forward-progress
    rates to the outcomes; identical baselines are computed once.
    """

    name: str = "campaign"
    victim: VictimConfig = field(default_factory=VictimConfig)
    attack: Any = field(default_factory=AttackSpec.silent)
    path: Any = field(default_factory=PathSpec)
    duration_s: Optional[float] = None
    sim_overrides: Mapping[str, Any] = field(default_factory=dict)
    sweep: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    baseline: bool = True
    mode: str = "fixed"
    target_completions: int = 0
    batch_window_s: float = 0.05
    max_sim_s: float = 20.0
    fault: Any = None
    #: Attach per-run observability metrics (see :attr:`RunSpec.telemetry`).
    telemetry: bool = False

    def expand(self) -> List[Tuple[Dict[str, Any], RunSpec]]:
        """The (params, run) grid, in cartesian-product order."""
        axes = list(self.sweep.items())
        grid = []
        for values in itertools.product(*(vals for _, vals in axes)):
            params = dict(zip((target for target, _ in axes), values))
            grid.append((params, self._resolve(params)))
        return grid

    def _resolve(self, params: Mapping[str, Any]) -> RunSpec:
        state = {"victim": self.victim, "attack": self.attack,
                 "path": self.path, "duration": self.duration_s,
                 "fault": self.fault}
        overrides = dict(self.sim_overrides)

        def apply(target: str, value: Any) -> None:
            if target == "victim":
                state["victim"] = value
            elif target == "attack":
                state["attack"] = value
            elif target == "path":
                state["path"] = value
            elif target == "fault":
                state["fault"] = value
            elif target == "duration_s":
                state["duration"] = value
            elif target.startswith("victim."):
                state["victim"] = \
                    state["victim"].with_overrides(**{target[7:]: value})
            elif target.startswith("attack."):
                if not isinstance(state["attack"], AttackSpec):
                    raise CampaignError(
                        f"axis {target!r} needs an AttackSpec base attack")
                state["attack"] = replace(state["attack"], **{target[7:]: value})
            elif target.startswith("path."):
                if not isinstance(state["path"], PathSpec):
                    raise CampaignError(
                        f"axis {target!r} needs a PathSpec base path")
                state["path"] = replace(state["path"], **{target[5:]: value})
            elif target.startswith("sim."):
                overrides[target[4:]] = value
            else:
                raise CampaignError(f"unknown sweep axis {target!r}")

        for target, value in params.items():
            if target == "*":
                if not isinstance(value, Mapping):
                    raise CampaignError(
                        f"paired axis '*' values must be mappings of axis "
                        f"targets, got {type(value).__name__}")
                for sub_target, sub_value in value.items():
                    if sub_target == "*":
                        raise CampaignError("paired axis '*' cannot nest")
                    apply(sub_target, sub_value)
            else:
                apply(target, value)
        victim, attack, path = state["victim"], state["attack"], state["path"]
        duration, fault = state["duration"], state["fault"]
        return RunSpec(
            victim=victim, attack=attack, path=path, duration_s=duration,
            sim_overrides=tuple(sorted(overrides.items())),
            mode=self.mode, target_completions=self.target_completions,
            batch_window_s=self.batch_window_s, max_sim_s=self.max_sim_s,
            fault=fault, telemetry=self.telemetry,
        )


# ----------------------------------------------------------------------
# Results.
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class RunOutcome:
    """One grid point's accounting: result, rate, timing, failure."""

    index: int
    params: Dict[str, Any] = field(default_factory=dict)
    result: Optional[SimResult] = None
    baseline: Optional[SimResult] = None   # shared object across outcomes
    progress_rate: Optional[float] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "params": _jsonable(self.params),
            "progress_rate": self.progress_rate,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "result": self.result.to_dict() if self.result else None,
        }


@dataclass
class CampaignStats:
    """Cache effectiveness and cost accounting for one campaign."""

    grid_points: int = 0
    compiles: int = 0
    compile_cache_hits: int = 0
    baseline_runs: int = 0
    baseline_cache_hits: int = 0
    failures: int = 0
    workers: int = 1
    wall_time_s: float = 0.0


@dataclass
class CampaignResult:
    """Everything a campaign produced, serializable to JSON."""

    name: str
    stats: CampaignStats = field(default_factory=CampaignStats)
    outcomes: List[RunOutcome] = field(default_factory=list)
    baselines: List[RunOutcome] = field(default_factory=list)

    def results(self) -> List[Optional[SimResult]]:
        return [outcome.result for outcome in self.outcomes]

    def rates(self) -> List[Optional[float]]:
        return [outcome.progress_rate for outcome in self.outcomes]

    def failures(self) -> List[RunOutcome]:
        return [o for o in self.outcomes + self.baselines if o.error]

    def aggregate_metrics(self) -> Dict[str, Any]:
        """Campaign-level telemetry: every outcome's flat metrics summed.

        Aggregation is in outcome order over data that travelled inside
        the (picklable) results, so a serial run and a pooled run of the
        same spec produce identical dictionaries.
        """
        total: Dict[str, Any] = {}
        for outcome in self.baselines + self.outcomes:
            if outcome.result is not None and outcome.result.metrics:
                merge_flat(total, outcome.result.metrics)
        return total

    def metrics_fingerprint(self) -> str:
        """sha256 over the canonical JSON of :meth:`aggregate_metrics`."""
        canonical = json.dumps(self.aggregate_metrics(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "stats": dataclasses.asdict(self.stats),
            "outcomes": [o.to_dict() for o in self.outcomes],
            "baselines": [o.to_dict() for o in self.baselines],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


# ----------------------------------------------------------------------
# Execution: serial fast path or a process pool.
# ----------------------------------------------------------------------
#: Per-worker compile cache, installed by the pool initializer (under the
#: default ``fork`` start method the parent's dict is inherited for free).
_WORKER_COMPILED: Dict[Tuple, Any] = {}


def _init_worker(compiled: Dict[Tuple, Any]) -> None:
    global _WORKER_COMPILED
    _WORKER_COMPILED = compiled


def _worker_task(task: Tuple[int, RunSpec]):
    index, run = task
    start = time.perf_counter()
    try:
        result = execute_run(run, _WORKER_COMPILED[run.compile_key()])
        return index, result, None, time.perf_counter() - start
    except Exception as exc:  # per-run failure accounting
        error = f"{type(exc).__name__}: {exc}"
        return index, None, error, time.perf_counter() - start


class CampaignRunner:
    """Executes :class:`ExperimentSpec` grids with compile caching,
    baseline deduplication, and an optional worker pool.

    The compile cache persists across :meth:`run` calls (and can be seeded
    via ``compile_cache``), so multi-stage experiments — e.g. a rate sweep
    followed by failure-rate reruns at the biting frequencies — reuse the
    same compiled artifacts.
    """

    def __init__(self, workers: int = 1,
                 compile_cache: Optional[Dict[Tuple, Any]] = None,
                 reraise: bool = False) -> None:
        self.workers = max(1, int(workers))
        self.compile_cache: Dict[Tuple, Any] = \
            compile_cache if compile_cache is not None else {}
        self.reraise = reraise

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> CampaignResult:
        start = time.perf_counter()
        stats = CampaignStats(workers=self.workers)
        grid = spec.expand()
        if not grid:
            raise CampaignError("spec expanded to an empty grid")
        stats.grid_points = len(grid)

        for _, run in grid:
            key = run.compile_key()
            if key in self.compile_cache:
                stats.compile_cache_hits += 1
            else:
                self.compile_cache[key] = run.victim.compile()
                stats.compiles += 1

        # Baseline dedup: one silent run per distinct baseline key.
        baseline_slot: Dict[Tuple, int] = {}
        baseline_specs: List[RunSpec] = []
        if spec.baseline:
            for _, run in grid:
                key = run.baseline_key()
                if key in baseline_slot:
                    stats.baseline_cache_hits += 1
                else:
                    baseline_slot[key] = len(baseline_specs)
                    baseline_specs.append(run.silenced())
                    stats.baseline_runs += 1

        # Baselines and attacked points are independent simulations, so
        # they share one task list (and one pool pass).
        tasks = [(i, run) for i, run in enumerate(baseline_specs)]
        offset = len(tasks)
        tasks += [(offset + i, run) for i, (_, run) in enumerate(grid)]
        raw = self._run_tasks(tasks)

        baselines = [
            RunOutcome(index=i, result=result, error=error, elapsed_s=dt)
            for i, (_, result, error, dt) in enumerate(raw[:offset])
        ]
        outcomes: List[RunOutcome] = []
        for i, ((params, run), (_, result, error, dt)) in \
                enumerate(zip(grid, raw[offset:])):
            outcome = RunOutcome(index=i, params=params, result=result,
                                 error=error, elapsed_s=dt)
            if spec.baseline and result is not None:
                base = baselines[baseline_slot[run.baseline_key()]].result
                outcome.baseline = base
                if base is not None:
                    outcome.progress_rate = (
                        min(1.0, result.executed_cycles / base.executed_cycles)
                        if base.executed_cycles > 0 else 0.0
                    )
            outcomes.append(outcome)
        stats.failures = sum(1 for o in outcomes + baselines if o.error)
        stats.wall_time_s = time.perf_counter() - start
        return CampaignResult(name=spec.name, stats=stats,
                              outcomes=outcomes, baselines=baselines)

    # ------------------------------------------------------------------
    def _run_tasks(self, tasks):
        if self.workers <= 1 or len(tasks) <= 1:
            return [self._run_inline(task) for task in tasks]
        processes = min(self.workers, len(tasks))
        with multiprocessing.Pool(processes=processes,
                                  initializer=_init_worker,
                                  initargs=(self.compile_cache,)) as pool:
            return pool.map(_worker_task, tasks)

    def _run_inline(self, task: Tuple[int, RunSpec]):
        index, run = task
        start = time.perf_counter()
        compiled = self.compile_cache[run.compile_key()]
        if self.reraise:
            return index, execute_run(run, compiled), None, \
                time.perf_counter() - start
        try:
            return index, execute_run(run, compiled), None, \
                time.perf_counter() - start
        except Exception as exc:  # per-run failure accounting
            error = f"{type(exc).__name__}: {exc}"
            return index, None, error, time.perf_counter() - start


def run_campaign(spec: ExperimentSpec, workers: int = 1) -> CampaignResult:
    """One-shot convenience: ``CampaignRunner(workers).run(spec)``."""
    return CampaignRunner(workers=workers).run(spec)
