"""Real-time attack control (Fig. 9): hopping frequencies to set the rate.

The paper shows an adversary modulating the victim's forward-progress rate
over time by switching the tone among frequencies of different coupling
strength — full DoS at resonance, partial degradation off-peak, stealthy
pauses in between.  This experiment replays such a schedule against the
MSP430FR5994 and reports the per-segment progress rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..emi import AttackSchedule, EMISource, RemotePath
from ..emi.devices import EVALUATION_BOARD
from .common import REMOTE_TX_DBM, VictimConfig, run_attack

#: A Fig. 9-style schedule: (duration share, frequency MHz or None=quiet).
DEFAULT_SEGMENTS: Tuple[Tuple[float, Optional[float]], ...] = (
    (0.15, None),     # quiet: full speed
    (0.15, 27.0),     # resonance: DoS
    (0.15, None),     # recover
    (0.15, 33.0),     # secondary peak: partial degradation
    (0.15, 30.0),     # shoulder: mild degradation
    (0.25, 27.0),     # resonance again
)


@dataclass
class Segment:
    start_s: float
    end_s: float
    freq_mhz: Optional[float]
    progress_rate: float


def realtime_control(device_name: str = EVALUATION_BOARD,
                     monitor_kind: str = "adc",
                     segments: Sequence[Tuple[float, Optional[float]]] = DEFAULT_SEGMENTS,
                     total_s: float = 0.3) -> List[Segment]:
    """Replay a frequency-hopping schedule; measure R per segment.

    Each segment is simulated as its own window over a persistent device so
    the rates line up with the paper's time-series plots (Fig. 9a/9b).
    """
    victim = VictimConfig(device_name=device_name, monitor_kind=monitor_kind)
    compiled = victim.compile()

    # Per-segment baseline: an unattacked window of the same length.
    results: List[Segment] = []
    t = 0.0
    for share, freq in segments:
        window = share * total_s
        baseline = run_attack(victim, AttackSchedule.silent(),
                              compiled=compiled, duration_s=window)
        if freq is None:
            schedule = AttackSchedule.silent()
        else:
            schedule = AttackSchedule.always(
                EMISource(freq * 1e6, REMOTE_TX_DBM)
            )
        attacked = run_attack(victim, schedule, compiled=compiled,
                              duration_s=window)
        rate = 1.0
        if baseline.executed_cycles > 0:
            rate = min(1.0, attacked.executed_cycles / baseline.executed_cycles)
        results.append(Segment(start_s=t, end_s=t + window,
                               freq_mhz=freq, progress_rate=rate))
        t += window
    return results
