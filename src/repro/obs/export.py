"""Exporters: Perfetto/Chrome-trace timelines and JSONL event logs.

The Perfetto exporter renders one simulated run the way the paper renders
its oscilloscope screenshots (Fig. 9/13): the capacitor voltage as a
counter track, the device state (running/sleeping/off/failed) as a lane of
slices, and the discrete events — checkpoints, reboots, detections, EMI
bursts, injected faults — as instants.  The output is the Chrome trace
JSON-array format, which https://ui.perfetto.dev opens directly.

The JSONL exporter is the machine-readable twin: one event per line,
round-trippable, diffable, and streamable into any downstream tooling.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .events import Event, EventBus, Sample

#: Simulated seconds -> trace microseconds (Chrome trace ts unit).
_US = 1e6

#: Process/thread layout of the exported trace.
PID_DEVICE = 1
TID_STATE = 1
TID_EVENTS = 2


def _meta(name: str, pid: int, tid: Optional[int] = None,
          label: str = "") -> dict:
    event = {"ph": "M", "name": name, "pid": pid, "ts": 0,
             "args": {"name": label}}
    if tid is not None:
        event["tid"] = tid
    return event


def state_slices(samples: Sequence[Sample]) -> List[dict]:
    """Coalesce the sampled state timeline into complete ("X") slices."""
    slices: List[dict] = []
    if not samples:
        return slices
    start = samples[0]
    last_t = start.t
    for sample in samples[1:]:
        last_t = sample.t
        if sample.state != start.state:
            slices.append({
                "ph": "X", "name": start.state, "cat": "state",
                "pid": PID_DEVICE, "tid": TID_STATE,
                "ts": start.t * _US, "dur": max(0.0, (sample.t - start.t) * _US),
            })
            start = sample
    slices.append({
        "ph": "X", "name": start.state, "cat": "state",
        "pid": PID_DEVICE, "tid": TID_STATE,
        "ts": start.t * _US, "dur": max(0.0, (last_t - start.t) * _US),
    })
    return slices


def voltage_counters(samples: Sequence[Sample],
                     name: str = "V_cap") -> List[dict]:
    """The capacitor voltage as a Perfetto counter track."""
    return [{
        "ph": "C", "name": name, "cat": "power", "pid": PID_DEVICE,
        "ts": sample.t * _US, "args": {"V": sample.voltage},
    } for sample in samples]


def event_instants(events: Iterable[Event]) -> List[dict]:
    """Discrete events as global instant markers."""
    instants = []
    for event in events:
        entry = {
            "ph": "i", "s": "g", "name": event.kind, "cat": "event",
            "pid": PID_DEVICE, "tid": TID_EVENTS, "ts": event.t * _US,
        }
        if event.detail:
            entry["args"] = {"detail": event.detail}
        instants.append(entry)
    return instants


def to_perfetto(bus: EventBus, trace_name: str = "repro-gecko",
                thresholds: Optional[Dict[str, float]] = None) -> dict:
    """The whole bus as a Chrome-trace/Perfetto JSON object.

    ``thresholds`` (e.g. ``{"V_backup": 2.6, "V_on": 3.0}``) become extra
    constant counter tracks so the trigger levels are visible against the
    voltage curve, like the annotated screenshots in the paper.
    """
    trace_events: List[dict] = [
        _meta("process_name", PID_DEVICE, label=trace_name),
        _meta("thread_name", PID_DEVICE, TID_STATE, "device state"),
        _meta("thread_name", PID_DEVICE, TID_EVENTS, "events"),
    ]
    samples = list(bus.samples)
    trace_events.extend(state_slices(samples))
    trace_events.extend(voltage_counters(samples))
    for name, level in (thresholds or {}).items():
        for edge in (samples[0], samples[-1]) if samples else ():
            trace_events.append({
                "ph": "C", "name": name, "cat": "power", "pid": PID_DEVICE,
                "ts": edge.t * _US, "args": {"V": level},
            })
    trace_events.extend(event_instants(bus.events))
    # Perfetto tolerates unordered input but monotonic output makes the
    # trace diffable and trivially schema-checkable.
    trace_events.sort(key=lambda e: (e["ts"], e["ph"] != "M"))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_perfetto(path: str, bus: EventBus,
                   trace_name: str = "repro-gecko",
                   thresholds: Optional[Dict[str, float]] = None) -> dict:
    """Serialize :func:`to_perfetto` to ``path``; returns the trace dict."""
    trace = to_perfetto(bus, trace_name=trace_name, thresholds=thresholds)
    with open(path, "w") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    return trace


def validate_perfetto(trace: dict) -> None:
    """Minimal schema check: required fields present, timestamps monotonic.

    Raises ``ValueError`` on the first violation — the CI smoke job and the
    exporter tests call this instead of shipping a JSON-schema dependency.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no traceEvents list")
    last_ts = None
    for index, event in enumerate(events):
        for key in ("ph", "ts", "pid", "name"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing {key!r}")
        if event["ph"] == "M":
            continue
        if last_ts is not None and event["ts"] < last_ts:
            raise ValueError(
                f"traceEvents[{index}] ts {event['ts']} < previous {last_ts}")
        last_ts = event["ts"]


# ----------------------------------------------------------------------
# JSONL event logs.
# ----------------------------------------------------------------------
def write_jsonl(path: str, events: Iterable[Event]) -> int:
    """One JSON object per line; returns the number of lines written."""
    count = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Event]:
    events: List[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events
