"""Typed, timestamped structured events and the bus that carries them.

The :class:`EventBus` is the spine of the observability subsystem: every
layer of the simulator — the machine, the crash-consistency runtimes, the
power system, the fault injector, the whole-system simulator — publishes
:class:`Event` records to one bus instead of each harness re-plumbing its
own counters.  Subscribers (the ASCII :class:`~repro.runtime.trace.Tracer`,
exporters, tests) receive events as they happen; a bounded ring buffer
retains the most recent events for post-hoc queries, so a campaign worker
can ship "the last N events before the outcome" without unbounded memory.

Continuous signals (the capacitor-voltage timeline, with the device state
at each sample) travel on a separate sample channel with its own ring, so
a long voltage trace can never evict the discrete events it explains.

The bus is designed to disappear when unused: ``enabled=False`` (or simply
not attaching a bus at all — every instrumentation site is guarded by an
``is not None`` check) reduces :meth:`EventBus.emit` to a single attribute
test.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

# ----------------------------------------------------------------------
# Event taxonomy.  One flat vocabulary shared by every producer; the
# docstring table in docs/observability.md is generated from this intent.
# ----------------------------------------------------------------------
#: Idempotent-region boundary committed (Machine MARK).
REGION_COMMIT = "region_commit"
#: JIT checkpoint protocol started (budget in detail).
CHECKPOINT_BEGIN = "checkpoint_begin"
#: JIT checkpoint committed (validity flag + ACK landed).
CHECKPOINT_OK = "checkpoint"
#: JIT checkpoint ran out of energy before the commit markers.
CHECKPOINT_FAILED = "checkpoint_failed"
#: Voltage monitor raised a signal (detail: "checkpoint" or "wake").
MONITOR_TRIP = "monitor_trip"
#: Device rebooted (power-on reset or honoured wake signal).
REBOOT = "reboot"
#: Supply sank below V_off while running.
BROWNOUT = "brownout"
#: EMI attack tone became active at the victim.
EMI_ON = "emi_on"
#: EMI attack tone ceased.
EMI_OFF = "emi_off"
#: A fault-injection campaign delivered its fault.
FAULT_INJECTED = "fault_injected"
#: Runtime detected an attack (ACK or region-completion detector).
DETECTION = "detection"
#: GECKO switched between JIT and rollback modes.
MODE_SWITCH = "mode_switch"
#: Rollback recovery executed a restore plan.
ROLLBACK_RESTORE = "rollback_restore"
#: JIT checkpoint image restored into volatile state.
JIT_RESTORE = "jit_restore"
#: Application iteration committed its final output.
COMPLETION = "completion"
#: The machine trapped (MachineFault); device is bricked.
FAULT = "fault"
#: Adversary search scored one attack candidate (detail: scheme + scores).
ADVERSARY_CANDIDATE = "adversary_candidate"
#: Adversary search finished one strategy round (detail: round stats).
ADVERSARY_ROUND = "adversary_round"

#: Every event kind, in a stable documentation order.
EVENT_KINDS = (
    REGION_COMMIT, CHECKPOINT_BEGIN, CHECKPOINT_OK, CHECKPOINT_FAILED,
    MONITOR_TRIP, REBOOT, BROWNOUT, EMI_ON, EMI_OFF, FAULT_INJECTED,
    DETECTION, MODE_SWITCH, ROLLBACK_RESTORE, JIT_RESTORE, COMPLETION,
    FAULT, ADVERSARY_CANDIDATE, ADVERSARY_ROUND,
)


@dataclass(frozen=True)
class Event:
    """One discrete occurrence at a simulated instant."""

    t: float
    kind: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {"t": self.t, "kind": self.kind, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(t=data["t"], kind=data["kind"],
                   detail=data.get("detail", ""))


@dataclass(frozen=True)
class Sample:
    """One point of the continuous (voltage, device-state) timeline."""

    t: float
    voltage: float
    state: str

    def to_dict(self) -> dict:
        return {"t": self.t, "voltage": self.voltage, "state": self.state}

    @classmethod
    def from_dict(cls, data: dict) -> "Sample":
        return cls(t=data["t"], voltage=data["voltage"], state=data["state"])


class EventBus:
    """Publish/subscribe event fan-out with bounded ring retention.

    ``ring``/``sample_ring`` bound the retained history; subscribers see
    every event regardless of retention (the ring is for post-hoc tails,
    the subscriptions are the live path).
    """

    def __init__(self, enabled: bool = True, ring: int = 4096,
                 sample_ring: int = 65536) -> None:
        self.enabled = enabled
        self.events: Deque[Event] = deque(maxlen=ring)
        self.samples: Deque[Sample] = deque(maxlen=sample_ring)
        self._subs: List[Tuple[Callable[[Event], None],
                               Optional[frozenset]]] = []
        self._sample_subs: List[Callable[[Sample], None]] = []

    # -- publishing -----------------------------------------------------
    def emit(self, t: float, kind: str, detail: str = "") -> None:
        """Publish one event (no-op when the bus is disabled)."""
        if not self.enabled:
            return
        event = Event(t=t, kind=kind, detail=detail)
        self.events.append(event)
        for fn, kinds in self._subs:
            if kinds is None or kind in kinds:
                fn(event)

    def sample(self, t: float, voltage: float, state: str) -> None:
        """Publish one continuous-timeline point."""
        if not self.enabled:
            return
        point = Sample(t=t, voltage=voltage, state=state)
        self.samples.append(point)
        for fn in self._sample_subs:
            fn(point)

    # -- subscription ---------------------------------------------------
    def subscribe(self, fn: Callable[[Event], None],
                  kinds: Optional[Iterable[str]] = None) -> None:
        """Receive every event, or only the given kinds."""
        self._subs.append((fn, frozenset(kinds) if kinds is not None
                           else None))

    def subscribe_samples(self, fn: Callable[[Sample], None]) -> None:
        self._sample_subs.append(fn)

    def unsubscribe(self, fn: Callable) -> None:
        """Detach a subscriber from both channels (no-op if absent) —
        long-lived buses (e.g. a serving process streaming events to
        transient clients) would otherwise leak dead callbacks."""
        self._subs = [(sub, kinds) for sub, kinds in self._subs
                      if sub is not fn]
        self._sample_subs = [sub for sub in self._sample_subs
                             if sub is not fn]

    # -- queries --------------------------------------------------------
    def tail(self, n: int = 32) -> List[Event]:
        """The most recent ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        return list(self.events)[-n:]

    def events_of(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def kind_counts(self) -> Dict[str, int]:
        """Retained-ring histogram: {kind: count}."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self.events.clear()
        self.samples.clear()
