"""Phase profiler: wall-time and simulated-cycle attribution.

Answers "where does a simulation actually spend its time?" in the two
currencies that matter here:

* **wall time** per host-side phase (compile, the step loop, the energy
  model, the monitor, export) via :meth:`Profiler.phase` context blocks —
  the hot-spot map every later performance PR optimizes against;
* **simulated cycles** per category (opcode classes like ``alu``/``mem``/
  ``ctrl``, runtime overheads) via :meth:`Profiler.add_cycles`, so a
  "faster" scheme can be decomposed into *which instructions* it avoided.

The profiler is explicitly opt-in: instrumented hot paths hold a direct
reference (``self._prof``) that stays ``None`` unless a profiler is both
attached and enabled, so the disabled cost is one identity check.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional


class Profiler:
    """Accumulates wall seconds per phase and simulated cycles per category."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.wall_s: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.cycles: Dict[str, float] = {}

    # -- wall time ------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Time a host-side phase; nested phases each keep their own bin."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.wall_s[name] = self.wall_s.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def add_wall(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold externally measured time in (pre-timed inner loops)."""
        if not self.enabled:
            return
        self.wall_s[name] = self.wall_s.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + calls

    # -- simulated cycles ----------------------------------------------
    def add_cycles(self, category: str, cycles: float) -> None:
        self.cycles[category] = self.cycles.get(category, 0.0) + cycles

    # -- reporting ------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "wall_s": dict(sorted(self.wall_s.items())),
            "calls": dict(sorted(self.calls.items())),
            "cycles": dict(sorted(self.cycles.items())),
        }

    def render(self) -> str:
        """A two-table ASCII report: wall time by phase, cycles by class."""
        lines = []
        total_wall = sum(self.wall_s.values())
        if self.wall_s:
            lines.append(f"{'phase':<22} {'wall s':>10} {'share':>7} "
                         f"{'calls':>9}")
            lines.append("-" * 52)
            for name, seconds in sorted(self.wall_s.items(),
                                        key=lambda kv: -kv[1]):
                share = seconds / total_wall if total_wall else 0.0
                lines.append(f"{name:<22} {seconds:>10.4f} {share:>6.1%} "
                             f"{self.calls.get(name, 0):>9d}")
        total_cycles = sum(self.cycles.values())
        if self.cycles:
            if lines:
                lines.append("")
            lines.append(f"{'cycle category':<22} {'cycles':>14} {'share':>7}")
            lines.append("-" * 45)
            for name, cycles in sorted(self.cycles.items(),
                                       key=lambda kv: -kv[1]):
                share = cycles / total_cycles if total_cycles else 0.0
                lines.append(f"{name:<22} {cycles:>14.0f} {share:>6.1%}")
        return "\n".join(lines) if lines else "(profiler recorded nothing)"


def maybe(profiler: Optional[Profiler]) -> Optional[Profiler]:
    """The profiler if it is attached *and* enabled, else None.

    Hot paths store this result so the disabled case costs one ``is not
    None`` test per use site.
    """
    if profiler is not None and profiler.enabled:
        return profiler
    return None
