"""Labelled counters, gauges, and histograms with a near-zero no-op path.

A :class:`MetricsRegistry` is the numeric side of the observability
subsystem: where the :class:`~repro.obs.events.EventBus` carries *what
happened*, the registry accumulates *how much* — cycles per opcode class,
joules harvested and consumed, checkpoints by status — under Prometheus-
style ``name{label=value}`` identities, so the same metric names compare
across schemes, workloads, and devices.

Design constraints, in order:

1. **Disabled must cost nothing.**  A disabled registry hands out shared
   no-op instruments; instrumented hot paths cache the instrument once and
   pay a single method call (or guard it behind an ``is not None`` check
   and pay nothing at all).
2. **Deterministic serialization.**  :meth:`MetricsRegistry.as_dict`
   renders a flat, sorted ``{qualified_name: value}`` dict — the payload
   merged into :meth:`SimResult.to_dict` and fingerprinted by the campaign
   engine to prove serial and parallel sweeps identical.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (generic log-ish spread).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                   1000.0)

#: Campaign-runner resilience counters.  These live on the *runner's*
#: registry, never in per-run result metrics — a clean sweep and a
#: crash-resumed one must fingerprint identically.
CAMPAIGN_RETRIES = "campaign.retries"
CAMPAIGN_TIMEOUTS = "campaign.timeouts"
CAMPAIGN_WORKER_RESTARTS = "campaign.worker_restarts"


def qualified_name(name: str, labels: Dict[str, object]) -> str:
    """Prometheus-style flat identity: ``name{k=v,k2=v2}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value (float increments allowed)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down; records the last set point."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: le bounds)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # +inf last
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    value = 0
    sum = 0.0
    count = 0

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass


#: The one no-op instrument every disabled registry hands out.
NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Instrument factory + store, keyed by (name, sorted labels)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories ------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = qualified_name(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = qualified_name(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = qualified_name(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS)
        return instrument

    # -- shorthands -----------------------------------------------------
    def count(self, name: str, amount: Number = 1, **labels) -> None:
        """One-shot increment (cold paths; hot paths cache the counter)."""
        if self.enabled:
            self.counter(name, **labels).inc(amount)

    # -- serialization --------------------------------------------------
    def as_dict(self) -> Dict[str, Number]:
        """Flat, sorted, JSON-safe view of every instrument.

        Histograms expand Prometheus-style into ``_bucket{le=..}``,
        ``_sum`` and ``_count`` entries.
        """
        flat: Dict[str, Number] = {}
        for key, counter in self._counters.items():
            flat[key] = counter.value
        for key, gauge in self._gauges.items():
            flat[key] = gauge.value
        for key, histogram in self._histograms.items():
            name, labels = _split_key(key)
            for bound, count in zip(histogram.bounds, histogram.counts):
                flat[_requalify(name, labels, "_bucket", f"le={bound:g}")] \
                    = count
            flat[_requalify(name, labels, "_bucket", "le=+Inf")] = \
                sum(histogram.counts)
            flat[_requalify(name, labels, "_sum", None)] = histogram.sum
            flat[_requalify(name, labels, "_count", None)] = histogram.count
        return dict(sorted(flat.items()))

    def merge_dict(self, flat: Dict[str, Number]) -> None:
        """Fold a previously exported flat dict in (summing counters)."""
        if not self.enabled:
            return
        for key, value in flat.items():
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.inc(value)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def merge_flat(into: Dict[str, Number],
               flat: Dict[str, Number]) -> Dict[str, Number]:
    """Sum one flat metrics dict into another (campaign aggregation)."""
    for key, value in flat.items():
        into[key] = into.get(key, 0) + value
    return into


def _split_key(key: str) -> Tuple[str, Optional[str]]:
    if key.endswith("}") and "{" in key:
        name, _, inner = key.partition("{")
        return name, inner[:-1]
    return key, None


def _requalify(name: str, labels: Optional[str], suffix: str,
               extra: Optional[str]) -> str:
    parts = [p for p in (labels, extra) if p]
    if parts:
        return f"{name}{suffix}{{{','.join(parts)}}}"
    return f"{name}{suffix}"
