"""Unified observability: event bus, metrics, exporters, and profiling.

One :class:`Observability` object travels through a simulation and gives
every layer the same three capabilities:

* ``obs.emit(kind, detail)`` — publish a typed, timestamped event to the
  :class:`~repro.obs.events.EventBus` (subscribers + bounded ring);
* ``obs.metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry` of
  labelled counters/gauges/histograms, exported as a flat dict;
* ``obs.profiler`` — an optional :class:`~repro.obs.profiler.Profiler`
  attributing wall time per phase and simulated cycles per opcode class.

The simulator binds the bus clock to its own simulated time at attach, so
producers never pass timestamps by hand.  Everything is opt-in: components
guard on ``obs is not None``, the bus and registry each have near-zero
disabled paths, and an absent profiler costs one identity check.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from .events import (
    ADVERSARY_CANDIDATE,
    ADVERSARY_ROUND,
    BROWNOUT,
    CHECKPOINT_BEGIN,
    CHECKPOINT_FAILED,
    CHECKPOINT_OK,
    COMPLETION,
    DETECTION,
    EMI_OFF,
    EMI_ON,
    EVENT_KINDS,
    Event,
    EventBus,
    FAULT,
    FAULT_INJECTED,
    JIT_RESTORE,
    MODE_SWITCH,
    MONITOR_TRIP,
    REBOOT,
    REGION_COMMIT,
    ROLLBACK_RESTORE,
    Sample,
)
from .export import (
    read_jsonl,
    to_perfetto,
    validate_perfetto,
    write_jsonl,
    write_perfetto,
)
from .metrics import (
    CAMPAIGN_RETRIES,
    CAMPAIGN_TIMEOUTS,
    CAMPAIGN_WORKER_RESTARTS,
    MetricsRegistry,
    merge_flat,
    qualified_name,
)
from .profiler import Profiler

__all__ = [
    "ADVERSARY_CANDIDATE", "ADVERSARY_ROUND",
    "BROWNOUT", "CAMPAIGN_RETRIES", "CAMPAIGN_TIMEOUTS",
    "CAMPAIGN_WORKER_RESTARTS",
    "CHECKPOINT_BEGIN", "CHECKPOINT_FAILED", "CHECKPOINT_OK",
    "COMPLETION", "DETECTION", "EMI_OFF", "EMI_ON", "EVENT_KINDS", "Event",
    "EventBus", "FAULT", "FAULT_INJECTED", "JIT_RESTORE", "MODE_SWITCH",
    "MONITOR_TRIP", "MetricsRegistry", "Observability", "Profiler", "REBOOT",
    "REGION_COMMIT", "ROLLBACK_RESTORE", "Sample", "merge_flat",
    "qualified_name", "read_jsonl", "to_perfetto", "validate_perfetto",
    "write_jsonl", "write_perfetto",
]


class Observability:
    """The bundle a simulation carries: bus + metrics + optional profiler."""

    def __init__(self, bus: Optional[EventBus] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profiler: Optional[Profiler] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.bus = bus if bus is not None else EventBus()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler
        self._clock = clock

    # -- construction ---------------------------------------------------
    @classmethod
    def for_tracing(cls, ring: int = 4096,
                    sample_ring: int = 65536) -> "Observability":
        """Bus + metrics on, no profiler: the `--trace-out` configuration."""
        return cls(bus=EventBus(ring=ring, sample_ring=sample_ring),
                   metrics=MetricsRegistry())

    @classmethod
    def for_telemetry(cls, ring: int = 128) -> "Observability":
        """Campaign-worker configuration: metrics plus a small event ring,
        no voltage samples retained (they dominate memory at scale)."""
        return cls(bus=EventBus(ring=ring, sample_ring=1),
                   metrics=MetricsRegistry())

    @classmethod
    def for_profiling(cls) -> "Observability":
        return cls(bus=EventBus(), metrics=MetricsRegistry(),
                   profiler=Profiler())

    @classmethod
    def disabled(cls) -> "Observability":
        """Everything off — for measuring the guarded no-op overhead."""
        return cls(bus=EventBus(enabled=False),
                   metrics=MetricsRegistry(enabled=False))

    # -- clock ----------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated-time source (the simulator's ``t``)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- publishing -----------------------------------------------------
    def emit(self, kind: str, detail: str = "",
             t: Optional[float] = None) -> None:
        """Publish one event at ``t`` (default: the bound clock's now),
        and bump the ``events{kind=...}`` counter."""
        if not self.bus.enabled:
            return
        self.bus.emit(self.now() if t is None else t, kind, detail)
        self.metrics.count("events", kind=kind)

    def sample(self, voltage: float, state: str,
               t: Optional[float] = None) -> None:
        if not self.bus.enabled:
            return
        self.bus.sample(self.now() if t is None else t, voltage, state)

    # -- export ---------------------------------------------------------
    def flat_metrics(self) -> Dict[str, Union[int, float]]:
        return self.metrics.as_dict()

    def event_tail(self, n: int = 32) -> list:
        """The last ``n`` ring-retained events as JSON-safe dicts."""
        return [event.to_dict() for event in self.bus.tail(n)]
