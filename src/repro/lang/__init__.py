"""MiniC front-end: lexer, parser, AST, and lowering to IR."""

from . import ast
from .lexer import Token, tokenize
from .lowering import compile_source, lower_program
from .parser import Parser, parse

__all__ = ["Parser", "Token", "ast", "compile_source", "lower_program",
           "parse", "tokenize"]
