"""Recursive-descent parser for MiniC.

Grammar (EBNF, ``//`` and ``/* */`` comments allowed anywhere)::

    program     := (global_decl | func_decl | isr_decl)*
    global_decl := 'int' IDENT ('[' NUM ']')? ('=' init)? ';'
    init        := NUM | '{' NUM (',' NUM)* '}'
    func_decl   := ('int' | 'void') IDENT '(' params? ')' block
    isr_decl    := 'isr' IDENT IDENT '(' ')' block   // source, handler
    params      := 'int' IDENT (',' 'int' IDENT)*
    block       := '{' stmt* '}'
    stmt        := var_decl | assign | if | while | for | return
                 | 'break' ';' | 'continue' ';' | out | expr ';' | block
    var_decl    := 'int' IDENT ('[' NUM ']')? ('=' (expr | '{' NUM* '}'))? ';'
    assign      := IDENT ('[' expr ']')? '=' expr ';'
    if          := 'if' '(' expr ')' stmt ('else' stmt)?
    while       := 'while' '(' expr ')' ('bound' '(' NUM ')')? stmt
    for         := 'for' '(' simple? ';' expr? ';' simple_nosemi? ')'
                   ('bound' '(' NUM ')')? stmt
    out         := 'out' '(' expr ')' ';'
    expr        := logic_or ; usual C precedence, short-circuit && and ||
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from . import ast
from .lexer import Token, tokenize

#: Binary precedence levels, loosest first.  ``&&``/``||`` are handled
#: separately because they short-circuit.
_PRECEDENCE: List[List[str]] = [
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._cur.kind == kind

    def _accept(self, kind: str) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str) -> Token:
        if not self._check(kind):
            raise ParseError(
                f"expected {kind!r}, found {self._cur.text!r}",
                self._cur.line, self._cur.col,
            )
        return self._advance()

    def _number(self) -> int:
        token = self._expect("num")
        return int(token.text, 0)

    # -- top level -------------------------------------------------------
    def parse_program(self) -> ast.ProgramAst:
        program = ast.ProgramAst()
        while not self._check("eof"):
            if self._check("isr"):
                program.functions.append(self._isr_decl())
                continue
            is_void = self._check("void")
            if not is_void and not self._check("int"):
                raise ParseError(
                    f"expected declaration, found {self._cur.text!r}",
                    self._cur.line, self._cur.col,
                )
            self._advance()
            name = self._expect("ident")
            if self._check("("):
                program.functions.append(
                    self._func_rest(name.text, not is_void, name.line)
                )
            else:
                if is_void:
                    raise ParseError("void variables are not allowed",
                                     name.line, name.col)
                program.globals.append(self._global_rest(name.text, name.line))
        return program

    def _isr_decl(self) -> ast.FuncDecl:
        """``isr <source> <name> () { ... }`` — a void, no-arg handler."""
        keyword = self._advance()
        source = self._expect("ident")
        name = self._expect("ident")
        decl = self._func_rest(name.text, False, name.line)
        if decl.params:
            raise ParseError("isr handlers take no parameters",
                             keyword.line, keyword.col)
        decl.isr_source = source.text
        return decl

    def _global_rest(self, name: str, line: int) -> ast.GlobalDecl:
        size: Optional[int] = None
        init_list: Optional[List[int]] = None
        if self._accept("["):
            size = self._number()
            self._expect("]")
        if self._accept("="):
            init_list = self._init_values(scalar=size is None)
        self._expect(";")
        return ast.GlobalDecl(name=name, size=size, init_list=init_list, line=line)

    def _init_values(self, scalar: bool) -> List[int]:
        if scalar:
            return [self._signed_number()]
        self._expect("{")
        values = [self._signed_number()]
        while self._accept(","):
            values.append(self._signed_number())
        self._expect("}")
        return values

    def _signed_number(self) -> int:
        if self._accept("-"):
            return -self._number()
        return self._number()

    def _func_rest(self, name: str, returns_value: bool, line: int) -> ast.FuncDecl:
        self._expect("(")
        params: List[str] = []
        if not self._check(")"):
            while True:
                self._expect("int")
                params.append(self._expect("ident").text)
                if not self._accept(","):
                    break
        self._expect(")")
        body = self._block()
        return ast.FuncDecl(name=name, params=params, body=body,
                            returns_value=returns_value, line=line)

    # -- statements ------------------------------------------------------
    def _block(self) -> ast.Block:
        start = self._expect("{")
        stmts: List[ast.Stmt] = []
        while not self._check("}"):
            if self._check("eof"):
                raise ParseError("unterminated block", start.line, start.col)
            stmts.append(self._stmt())
        self._expect("}")
        return ast.Block(line=start.line, stmts=stmts)

    def _stmt(self) -> ast.Stmt:
        token = self._cur
        if token.kind == "{":
            return self._block()
        if token.kind == "int":
            return self._var_decl()
        if token.kind == "if":
            return self._if()
        if token.kind == "while":
            return self._while()
        if token.kind == "for":
            return self._for()
        if token.kind == "return":
            self._advance()
            value = None if self._check(";") else self._expr()
            self._expect(";")
            return ast.Return(line=token.line, value=value)
        if token.kind == "break":
            self._advance()
            self._expect(";")
            return ast.Break(line=token.line)
        if token.kind == "continue":
            self._advance()
            self._expect(";")
            return ast.Continue(line=token.line)
        if token.kind == "out":
            self._advance()
            self._expect("(")
            value = self._expr()
            self._expect(")")
            self._expect(";")
            return ast.OutStmt(line=token.line, value=value)
        stmt = self._simple_stmt()
        self._expect(";")
        return stmt

    def _simple_stmt(self) -> ast.Stmt:
        """An assignment or expression statement, without the ';'."""
        token = self._cur
        if token.kind == "ident":
            after = self._tokens[self._pos + 1]
            if after.kind == "=":
                self._advance()
                self._advance()
                return ast.Assign(line=token.line, target=token.text,
                                  value=self._expr())
            if after.kind == "[":
                save = self._pos
                self._advance()
                self._advance()
                index = self._expr()
                self._expect("]")
                if self._accept("="):
                    return ast.Assign(line=token.line, target=token.text,
                                      index=index, value=self._expr())
                self._pos = save  # it was an expression like a[i] + 1
        return ast.ExprStmt(line=token.line, expr=self._expr())

    def _var_decl(self) -> ast.VarDecl:
        token = self._expect("int")
        name = self._expect("ident").text
        size: Optional[int] = None
        init: Optional[ast.Expr] = None
        init_list: Optional[List[int]] = None
        if self._accept("["):
            size = self._number()
            self._expect("]")
        if self._accept("="):
            if size is None:
                init = self._expr()
            else:
                init_list = self._init_values(scalar=False)
        self._expect(";")
        return ast.VarDecl(line=token.line, name=name, size=size,
                           init=init, init_list=init_list)

    def _if(self) -> ast.If:
        token = self._expect("if")
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        then = self._stmt()
        otherwise = self._stmt() if self._accept("else") else None
        return ast.If(line=token.line, cond=cond, then=then, otherwise=otherwise)

    def _bound_annotation(self) -> Optional[int]:
        if self._accept("bound"):
            self._expect("(")
            bound = self._number()
            self._expect(")")
            return bound
        return None

    def _while(self) -> ast.While:
        token = self._expect("while")
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        bound = self._bound_annotation()
        body = self._stmt()
        return ast.While(line=token.line, cond=cond, body=body, bound=bound)

    def _for(self) -> ast.For:
        token = self._expect("for")
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            init = (self._var_decl_nosemi()
                    if self._check("int") else self._simple_stmt())
        if not isinstance(init, ast.VarDecl) or init is None:
            self._expect(";")
        cond: Optional[ast.Expr] = None
        if not self._check(";"):
            cond = self._expr()
        self._expect(";")
        step: Optional[ast.Stmt] = None
        if not self._check(")"):
            step = self._simple_stmt()
        self._expect(")")
        bound = self._bound_annotation()
        body = self._stmt()
        return ast.For(line=token.line, init=init, cond=cond, step=step,
                       body=body, bound=bound)

    def _var_decl_nosemi(self) -> ast.VarDecl:
        token = self._expect("int")
        name = self._expect("ident").text
        init: Optional[ast.Expr] = None
        if self._accept("="):
            init = self._expr()
        self._expect(";")
        return ast.VarDecl(line=token.line, name=name, init=init)

    # -- expressions -------------------------------------------------------
    def _expr(self) -> ast.Expr:
        return self._logic_or()

    def _logic_or(self) -> ast.Expr:
        left = self._logic_and()
        while self._check("||"):
            token = self._advance()
            right = self._logic_and()
            left = ast.Binary(line=token.line, op="||", left=left, right=right)
        return left

    def _logic_and(self) -> ast.Expr:
        left = self._binary(0)
        while self._check("&&"):
            token = self._advance()
            right = self._binary(0)
            left = ast.Binary(line=token.line, op="&&", left=left, right=right)
        return left

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._unary()
        left = self._binary(level + 1)
        while self._cur.kind in _PRECEDENCE[level]:
            token = self._advance()
            right = self._binary(level + 1)
            left = ast.Binary(line=token.line, op=token.kind,
                              left=left, right=right)
        return left

    def _unary(self) -> ast.Expr:
        token = self._cur
        if token.kind in ("-", "!", "~"):
            self._advance()
            return ast.Unary(line=token.line, op=token.kind,
                             operand=self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._cur
        if token.kind == "num":
            self._advance()
            return ast.Num(line=token.line, value=int(token.text, 0))
        if token.kind == "sense":
            self._advance()
            self._expect("(")
            self._expect(")")
            return ast.SenseExpr(line=token.line)
        if token.kind == "(":
            self._advance()
            expr = self._expr()
            self._expect(")")
            return expr
        if token.kind == "ident":
            self._advance()
            if self._accept("("):
                args: List[ast.Expr] = []
                if not self._check(")"):
                    args.append(self._expr())
                    while self._accept(","):
                        args.append(self._expr())
                self._expect(")")
                return ast.Call(line=token.line, name=token.text, args=args)
            if self._accept("["):
                index = self._expr()
                self._expect("]")
                return ast.ArrIndex(line=token.line, name=token.text, index=index)
            return ast.Var(line=token.line, name=token.text)
        raise ParseError(
            f"expected an expression, found {token.text!r}",
            token.line, token.col,
        )


def parse(source: str) -> ast.ProgramAst:
    """Parse MiniC source text into an AST."""
    return Parser(tokenize(source)).parse_program()
