"""Abstract syntax tree of MiniC.

All nodes carry a ``line`` for diagnostics.  Expressions are int-typed
(32-bit signed, wrapping); ``void`` exists only as a function return type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------
@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class ArrIndex(Expr):
    name: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""         # '-', '!', '~'
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""         # arithmetic/relational/logical operator token
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class SenseExpr(Expr):
    """The ``sense()`` builtin: read the next sensor sample."""


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    size: Optional[int] = None          # None = scalar; N = local array
    init: Optional[Expr] = None         # scalars only
    init_list: Optional[List[int]] = None  # arrays only


@dataclass
class Assign(Stmt):
    target: str = ""
    index: Optional[Expr] = None        # None = scalar assignment
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None
    bound: Optional[int] = None         # explicit ``bound(N)`` annotation


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None         # Assign or VarDecl or None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None         # Assign or None
    body: Optional[Stmt] = None
    bound: Optional[int] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class OutStmt(Stmt):
    """The ``out(e)`` builtin: emit a value on the observable channel."""

    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ----------------------------------------------------------------------
# Top level.
# ----------------------------------------------------------------------
@dataclass
class GlobalDecl:
    name: str
    size: Optional[int] = None          # None = scalar
    init_list: Optional[List[int]] = None
    line: int = 0


@dataclass
class FuncDecl:
    name: str
    params: List[str] = field(default_factory=list)
    body: Optional[Block] = None
    returns_value: bool = True          # False for ``void``
    line: int = 0
    #: Interrupt source this function handles (``isr timer f() {...}``),
    #: or ``None`` for an ordinary function.
    isr_source: Optional[str] = None


@dataclass
class ProgramAst:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)
