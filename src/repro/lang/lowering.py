"""Lowering from the MiniC AST to the mid-level IR.

Conventions:

* Scalar locals and parameters live in virtual registers.
* Local arrays live in the function's static frame (``__frame_<f>``).
* Arguments are passed through per-callee global slots ``__arg_<f>_<i>``;
  return values through ``__ret_<f>``.  The static-frame convention forbids
  recursion (rejected later by :meth:`repro.ir.cfg.Module.call_order`).
* ``&&``/``||`` short-circuit via control flow.
* ``for`` loops with constant init/limit/step and an unmodified induction
  variable get an inferred trip bound; ``bound(N)`` annotations override.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import SemanticError
from ..isa import instructions as ins
from ..isa.instructions import Instr, Opcode
from ..isa.operands import Imm, Label, Sym, VReg, trunc_div, trunc_rem, wrap32
from ..isa.program import ISR_SOURCES
from ..ir.cfg import BasicBlock, Function, Module, remove_unreachable
from . import ast
from .parser import parse

#: AST binary operator -> IR opcode (the short-circuit ones are absent).
_BINOP_OPCODES = {
    "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
    "/": Opcode.DIV, "%": Opcode.REM,
    "&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
    "<<": Opcode.SHL, ">>": Opcode.SAR,
    "<": Opcode.SLT, "<=": Opcode.SLE, ">": Opcode.SGT, ">=": Opcode.SGE,
    "==": Opcode.SEQ, "!=": Opcode.SNE,
}

Binding = Tuple[str, object]  # ("reg", VReg) | ("gscalar"|"garray", name[, size]) | ("larray", off, size)

#: Peripheral intrinsics (name -> arity).  Calls to these names lower to
#: MMIO loads/stores on the linker's peripheral control block; a user
#: function of the same name shadows the intrinsic.
_PERIPH_INTRINSICS: Dict[str, int] = {
    "irq_enable": 1, "irq_disable": 1, "irq_pending": 0,
    "irq_priority": 2, "irq_nest": 1,
    "timer_start": 1, "timer_stop": 0, "timer_count": 0,
    "adc_start": 1, "adc_stop": 0, "adc_read": 0, "adc_count": 0,
    "gpio_watch": 1, "gpio_stop": 0, "gpio_read": 0, "gpio_write": 1,
    "dma_start": 2, "dma_done": 0, "dma_get": 1,
}


def compile_source(source: str, entry: str = "main") -> Module:
    """Parse and lower MiniC source into a verified IR module."""
    return lower_program(parse(source), entry=entry)


def lower_program(program: ast.ProgramAst, entry: str = "main") -> Module:
    """Lower a parsed program into a verified IR module."""
    module = Module(entry=entry)
    func_decls: Dict[str, ast.FuncDecl] = {}
    for decl in program.functions:
        if decl.name in func_decls:
            raise SemanticError(f"line {decl.line}: duplicate function {decl.name}")
        func_decls[decl.name] = decl

    global_env: Dict[str, Binding] = {}
    for decl in program.globals:
        if decl.name in global_env or decl.name in func_decls:
            raise SemanticError(f"line {decl.line}: duplicate global {decl.name}")
        size = decl.size if decl.size is not None else 1
        init = decl.init_list
        if init is not None and len(init) > size:
            raise SemanticError(
                f"line {decl.line}: initialiser for {decl.name} too long"
            )
        module.add_global(decl.name, size, [wrap32(v) for v in init] if init else None)
        if decl.size is None:
            global_env[decl.name] = ("gscalar", decl.name)
        else:
            global_env[decl.name] = ("garray", (decl.name, decl.size))

    if entry not in func_decls:
        raise SemanticError(f"no {entry!r} function defined")

    for decl in func_decls.values():
        if decl.isr_source is None:
            continue
        if decl.isr_source not in ISR_SOURCES:
            raise SemanticError(
                f"line {decl.line}: unknown interrupt source "
                f"{decl.isr_source!r} (want one of "
                f"{', '.join(sorted(ISR_SOURCES))})"
            )
        if decl.name == entry:
            raise SemanticError(
                f"line {decl.line}: the entry function cannot be an isr")
        vector = ISR_SOURCES[decl.isr_source]
        if vector in module.isrs:
            raise SemanticError(
                f"line {decl.line}: duplicate handler for interrupt source "
                f"{decl.isr_source!r}"
            )
        module.isrs[vector] = decl.name
        module.uses_periph = True

    for decl in func_decls.values():
        for i in range(len(decl.params)):
            module.add_global(f"__arg_{decl.name}_{i}", 1)
        if decl.returns_value:
            module.add_global(f"__ret_{decl.name}", 1)

    for decl in func_decls.values():
        lowerer = _FunctionLowerer(module, decl, func_decls, global_env,
                                   is_entry=decl.name == entry)
        module.add_function(lowerer.lower())

    # Frame symbols (__frame_<f>) are *not* registered here: register
    # allocation may still grow frames with spill slots, so code generation
    # owns the final frame sizes.
    module.verify()
    return module


class _FunctionLowerer:
    """Lowers a single function body."""

    def __init__(self, module: Module, decl: ast.FuncDecl,
                 func_decls: Dict[str, ast.FuncDecl],
                 global_env: Dict[str, Binding], is_entry: bool) -> None:
        self._module = module
        self._decl = decl
        self._func_decls = func_decls
        self._is_entry = is_entry
        self._fn = Function(decl.name)
        self._scopes: List[Dict[str, Binding]] = [dict(global_env)]
        self._block: BasicBlock = self._fn.add_block(name="entry")
        self._loop_stack: List[Tuple[str, str]] = []  # (continue tgt, break tgt)

    # -- plumbing -----------------------------------------------------
    def _emit(self, instr: Instr) -> None:
        self._block.instrs.append(instr)

    def _start_block(self, name: Optional[str] = None, hint: str = "bb") -> None:
        self._block = self._fn.add_block(name=name, hint=hint)

    def _jump_to_new(self, hint: str) -> None:
        """Terminate the current block with a jump to a fresh one."""
        name = self._fn.new_label(hint)
        self._emit(ins.jmp(Label(name)))
        self._start_block(name=name)

    def _branch(self, cond: VReg, then_name: str, else_name: str) -> None:
        self._emit(ins.bnz(cond, Label(then_name)))
        self._emit(ins.jmp(Label(else_name)))

    def _lookup(self, name: str, line: int) -> Binding:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise SemanticError(f"line {line}: undeclared variable {name!r}")

    def _declare(self, name: str, binding: Binding, line: int) -> None:
        if name in self._scopes[-1]:
            raise SemanticError(f"line {line}: redeclaration of {name!r}")
        self._scopes[-1][name] = binding

    def _as_reg(self, operand: Union[VReg, Imm]) -> VReg:
        if isinstance(operand, VReg):
            return operand
        reg = self._fn.new_vreg()
        self._emit(ins.li(reg, operand.value))
        return reg

    # -- entry point ----------------------------------------------------
    def lower(self) -> Function:
        decl = self._decl
        self._fn.params = []
        for i, pname in enumerate(decl.params):
            reg = self._fn.new_vreg()
            self._emit(ins.load(reg, Sym(f"__arg_{decl.name}_{i}"), Imm(0)))
            self._declare(pname, ("reg", reg), decl.line)
            self._fn.params.append(reg)
        self._lower_block(decl.body)
        if not self._block.terminated:
            self._emit(Instr(Opcode.HALT) if self._is_entry else ins.ret())
        remove_unreachable(self._fn)
        return self._fn

    # -- statements -------------------------------------------------------
    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        handler = {
            ast.Block: self._lower_block,
            ast.VarDecl: self._lower_var_decl,
            ast.Assign: self._lower_assign,
            ast.If: self._lower_if,
            ast.While: self._lower_while,
            ast.For: self._lower_for,
            ast.Return: self._lower_return,
            ast.ExprStmt: self._lower_expr_stmt,
            ast.OutStmt: self._lower_out,
            ast.Break: self._lower_break,
            ast.Continue: self._lower_continue,
        }.get(type(stmt))
        if handler is None:
            raise SemanticError(f"unsupported statement {type(stmt).__name__}")
        handler(stmt)

    def _lower_block(self, block: ast.Block) -> None:
        self._scopes.append({})
        for stmt in block.stmts:
            self._lower_stmt(stmt)
        self._scopes.pop()

    def _lower_var_decl(self, stmt: ast.VarDecl) -> None:
        if stmt.size is None:
            reg = self._fn.new_vreg()
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
                if isinstance(value, Imm):
                    self._emit(ins.li(reg, value.value))
                else:
                    self._emit(ins.mov(reg, value))
            else:
                self._emit(ins.li(reg, 0))
            self._declare(stmt.name, ("reg", reg), stmt.line)
            return
        offset = self._fn.alloc_frame(stmt.size)
        self._declare(stmt.name, ("larray", (offset, stmt.size)), stmt.line)
        if stmt.init_list:
            if len(stmt.init_list) > stmt.size:
                raise SemanticError(
                    f"line {stmt.line}: initialiser for {stmt.name} too long"
                )
            for i, value in enumerate(stmt.init_list):
                reg = self._fn.new_vreg()
                self._emit(ins.li(reg, wrap32(value)))
                self._emit(ins.store(reg, Sym(self._fn.frame_symbol),
                                     Imm(offset + i)))

    def _lower_assign(self, stmt: ast.Assign) -> None:
        binding = self._lookup(stmt.target, stmt.line)
        kind, payload = binding
        if stmt.index is None:
            value = self._lower_expr(stmt.value)
            if kind == "reg":
                if isinstance(value, Imm):
                    self._emit(ins.li(payload, value.value))
                else:
                    self._emit(ins.mov(payload, value))
                return
            if kind == "gscalar":
                self._emit(ins.store(self._as_reg(value), Sym(payload), Imm(0)))
                return
            raise SemanticError(
                f"line {stmt.line}: cannot assign to array {stmt.target!r} "
                f"without an index"
            )
        sym, off = self._array_address(stmt.target, binding, stmt.index, stmt.line)
        value = self._lower_expr(stmt.value)
        self._emit(ins.store(self._as_reg(value), sym, off))

    def _array_address(self, name: str, binding: Binding, index: ast.Expr,
                       line: int) -> Tuple[Sym, Union[VReg, Imm]]:
        kind, payload = binding
        idx = self._lower_expr(index)
        if kind == "garray":
            sym_name, _size = payload
            return Sym(sym_name), idx
        if kind == "larray":
            offset, _size = payload
            if isinstance(idx, Imm):
                return Sym(self._fn.frame_symbol), Imm(offset + idx.value)
            base = self._fn.new_vreg()
            self._emit(ins.binop(Opcode.ADD, base, self._as_reg(idx), Imm(offset)))
            return Sym(self._fn.frame_symbol), base
        raise SemanticError(f"line {line}: {name!r} is not an array")

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._as_reg(self._lower_expr(stmt.cond))
        then_name = self._fn.new_label("then")
        join_name = self._fn.new_label("join")
        else_name = self._fn.new_label("else") if stmt.otherwise else join_name
        self._branch(cond, then_name, else_name)
        self._start_block(name=then_name)
        self._lower_stmt(stmt.then)
        if not self._block.terminated:
            self._emit(ins.jmp(Label(join_name)))
        if stmt.otherwise is not None:
            self._start_block(name=else_name)
            self._lower_stmt(stmt.otherwise)
            if not self._block.terminated:
                self._emit(ins.jmp(Label(join_name)))
        self._start_block(name=join_name)

    def _lower_while(self, stmt: ast.While) -> None:
        header = self._fn.new_label("loop")
        body_name = self._fn.new_label("body")
        after = self._fn.new_label("after")
        self._emit(ins.jmp(Label(header)))
        self._start_block(name=header)
        if stmt.bound is not None:
            self._block.meta["loop_bound"] = stmt.bound
        cond = self._as_reg(self._lower_expr(stmt.cond))
        self._branch(cond, body_name, after)
        self._start_block(name=body_name)
        self._loop_stack.append((header, after))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        if not self._block.terminated:
            self._emit(ins.jmp(Label(header)))
        self._start_block(name=after)

    def _lower_for(self, stmt: ast.For) -> None:
        self._scopes.append({})  # a for-init declaration scopes to the loop
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self._fn.new_label("loop")
        body_name = self._fn.new_label("body")
        step_name = self._fn.new_label("step")
        after = self._fn.new_label("after")
        self._emit(ins.jmp(Label(header)))
        self._start_block(name=header)
        bound = stmt.bound if stmt.bound is not None else _infer_for_bound(stmt)
        if bound is not None:
            self._block.meta["loop_bound"] = bound
        if stmt.cond is not None:
            cond = self._as_reg(self._lower_expr(stmt.cond))
            self._branch(cond, body_name, after)
        else:
            self._emit(ins.jmp(Label(body_name)))
        self._start_block(name=body_name)
        self._loop_stack.append((step_name, after))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        if not self._block.terminated:
            self._emit(ins.jmp(Label(step_name)))
        self._start_block(name=step_name)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self._emit(ins.jmp(Label(header)))
        self._start_block(name=after)
        self._scopes.pop()

    def _lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            if not self._decl.returns_value:
                raise SemanticError(
                    f"line {stmt.line}: void function {self._decl.name!r} "
                    f"returns a value"
                )
            value = self._as_reg(self._lower_expr(stmt.value))
            self._emit(ins.store(value, Sym(f"__ret_{self._decl.name}"), Imm(0)))
        self._emit(Instr(Opcode.HALT) if self._is_entry else ins.ret())
        self._start_block(hint="dead")

    def _lower_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        self._lower_expr(stmt.expr)

    def _lower_out(self, stmt: ast.OutStmt) -> None:
        value = self._as_reg(self._lower_expr(stmt.value))
        self._emit(ins.out(value))

    def _lower_break(self, stmt: ast.Break) -> None:
        if not self._loop_stack:
            raise SemanticError(f"line {stmt.line}: break outside a loop")
        self._emit(ins.jmp(Label(self._loop_stack[-1][1])))
        self._start_block(hint="dead")

    def _lower_continue(self, stmt: ast.Continue) -> None:
        if not self._loop_stack:
            raise SemanticError(f"line {stmt.line}: continue outside a loop")
        self._emit(ins.jmp(Label(self._loop_stack[-1][0])))
        self._start_block(hint="dead")

    # -- expressions ------------------------------------------------------
    def _lower_expr(self, expr: ast.Expr) -> Union[VReg, Imm]:
        if isinstance(expr, ast.Num):
            return Imm(wrap32(expr.value))
        if isinstance(expr, ast.Var):
            return self._lower_var(expr)
        if isinstance(expr, ast.ArrIndex):
            binding = self._lookup(expr.name, expr.line)
            sym, off = self._array_address(expr.name, binding, expr.index,
                                           expr.line)
            reg = self._fn.new_vreg()
            self._emit(ins.load(reg, sym, off))
            return reg
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self._lower_shortcircuit(expr)
            return self._lower_binary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.SenseExpr):
            reg = self._fn.new_vreg()
            self._emit(ins.sense(reg))
            return reg
        raise SemanticError(f"unsupported expression {type(expr).__name__}")

    def _lower_var(self, expr: ast.Var) -> Union[VReg, Imm]:
        kind, payload = self._lookup(expr.name, expr.line)
        if kind == "reg":
            return payload
        if kind == "gscalar":
            reg = self._fn.new_vreg()
            self._emit(ins.load(reg, Sym(payload), Imm(0)))
            return reg
        raise SemanticError(
            f"line {expr.line}: array {expr.name!r} used without an index"
        )

    def _lower_unary(self, expr: ast.Unary) -> Union[VReg, Imm]:
        operand = self._lower_expr(expr.operand)
        if isinstance(operand, Imm):
            value = operand.value
            folded = {"-": -value, "~": ~value, "!": int(value == 0)}[expr.op]
            return Imm(wrap32(folded))
        reg = self._fn.new_vreg()
        if expr.op == "-":
            self._emit(Instr(Opcode.NEG, dst=reg, a=operand))
        elif expr.op == "~":
            self._emit(Instr(Opcode.NOT, dst=reg, a=operand))
        else:  # '!'
            self._emit(ins.binop(Opcode.SEQ, reg, operand, Imm(0)))
        return reg

    def _lower_binary(self, expr: ast.Binary) -> Union[VReg, Imm]:
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        if isinstance(left, Imm) and isinstance(right, Imm):
            folded = _fold_binary(expr.op, left.value, right.value, expr.line)
            if folded is not None:
                return Imm(folded)
        opcode = _BINOP_OPCODES[expr.op]
        reg = self._fn.new_vreg()
        self._emit(ins.binop(opcode, reg, self._as_reg(left), right))
        return reg

    def _lower_shortcircuit(self, expr: ast.Binary) -> VReg:
        result = self._fn.new_vreg()
        rhs_name = self._fn.new_label("sc_rhs")
        done_name = self._fn.new_label("sc_done")
        set_name = self._fn.new_label("sc_const")
        left = self._as_reg(self._lower_expr(expr.left))
        if expr.op == "&&":
            self._branch(left, rhs_name, set_name)  # left false -> result 0
            const_value = 0
        else:
            self._branch(left, set_name, rhs_name)  # left true -> result 1
            const_value = 1
        self._start_block(name=set_name)
        self._emit(ins.li(result, const_value))
        self._emit(ins.jmp(Label(done_name)))
        self._start_block(name=rhs_name)
        right = self._as_reg(self._lower_expr(expr.right))
        self._emit(ins.binop(Opcode.SNE, result, right, Imm(0)))
        self._emit(ins.jmp(Label(done_name)))
        self._start_block(name=done_name)
        return result

    def _lower_call(self, expr: ast.Call) -> Union[VReg, Imm]:
        decl = self._func_decls.get(expr.name)
        if decl is None:
            lowered = self._lower_intrinsic(expr)
            if lowered is not None:
                return lowered
            raise SemanticError(f"line {expr.line}: call to undefined "
                                f"function {expr.name!r}")
        if decl.isr_source is not None:
            raise SemanticError(
                f"line {expr.line}: isr handler {expr.name!r} cannot be "
                f"called directly"
            )
        if len(expr.args) != len(decl.params):
            raise SemanticError(
                f"line {expr.line}: {expr.name}() takes {len(decl.params)} "
                f"arguments, got {len(expr.args)}"
            )
        arg_regs = [self._as_reg(self._lower_expr(arg)) for arg in expr.args]
        for i, reg in enumerate(arg_regs):
            self._emit(ins.store(reg, Sym(f"__arg_{expr.name}_{i}"), Imm(0)))
        self._emit(ins.call(expr.name))
        if decl.returns_value:
            reg = self._fn.new_vreg()
            self._emit(ins.load(reg, Sym(f"__ret_{expr.name}"), Imm(0)))
            return reg
        return Imm(0)  # a void call used as a value is harmlessly zero

    # -- peripheral MMIO intrinsics ------------------------------------
    def _periph_load(self, sym: str,
                     off: Union[VReg, Imm] = Imm(0)) -> VReg:
        reg = self._fn.new_vreg()
        self._emit(ins.load(reg, Sym(sym), off))
        return reg

    def _periph_store(self, sym: str, value: Union[VReg, Imm],
                      off: Union[VReg, Imm] = Imm(0)) -> None:
        self._emit(ins.store(self._as_reg(value), Sym(sym), off))

    def _periph_store_imm(self, sym: str, value: int) -> None:
        reg = self._fn.new_vreg()
        self._emit(ins.li(reg, value))
        self._emit(ins.store(reg, Sym(sym), Imm(0)))

    def _device_start(self, prefix: str, period: Union[VReg, Imm]) -> None:
        # ctrl is written 0 first so no spurious re-arm happens between
        # the configuration stores; base = 0 re-arms at the next boundary.
        self._periph_store_imm(f"{prefix}_ctrl", 0)
        self._periph_store(f"{prefix}_period", period)
        self._periph_store_imm(f"{prefix}_count", 0)
        self._periph_store_imm(f"{prefix}_base", 0)
        self._periph_store_imm(f"{prefix}_ctrl", 1)

    def _device_stop(self, prefix: str) -> None:
        self._periph_store_imm(f"{prefix}_ctrl", 0)
        self._periph_store_imm(f"{prefix}_base", 0)

    def _lower_intrinsic(self, expr: ast.Call) -> Optional[Union[VReg, Imm]]:
        """Lower a peripheral intrinsic, or return None if ``expr`` isn't
        one.  Intrinsics are plain loads/stores/ALU on the MMIO control
        block (:data:`repro.isa.program.PERIPH_SYMBOLS`) — no new opcodes."""
        name = expr.name
        arity = _PERIPH_INTRINSICS.get(name)
        if arity is None:
            return None
        if len(expr.args) != arity:
            raise SemanticError(
                f"line {expr.line}: {name}() takes {arity} "
                f"argument{'s' if arity != 1 else ''}, got {len(expr.args)}"
            )
        self._module.uses_periph = True
        args = [self._lower_expr(arg) for arg in expr.args]
        if name == "irq_enable" or name == "irq_disable":
            cur = self._periph_load("__irq_en")
            out = self._fn.new_vreg()
            if name == "irq_enable":
                self._emit(ins.binop(Opcode.OR, out, cur, args[0]))
            else:
                mask = args[0]
                if isinstance(mask, Imm):
                    inverted: Union[VReg, Imm] = Imm(wrap32(~mask.value))
                else:
                    inverted = self._fn.new_vreg()
                    self._emit(Instr(Opcode.NOT, dst=inverted, a=mask))
                self._emit(ins.binop(Opcode.AND, out, cur, inverted))
            self._periph_store("__irq_en", out)
            return Imm(0)
        if name == "irq_pending":
            return self._periph_load("__irq_pend")
        if name == "irq_priority":
            self._periph_store("__irq_prio", args[1], off=args[0])
            return Imm(0)
        if name == "irq_nest":
            self._periph_store("__irq_nest", args[0])
            return Imm(0)
        if name == "timer_start":
            self._device_start("__t0", args[0])
            return Imm(0)
        if name == "timer_stop":
            self._device_stop("__t0")
            return Imm(0)
        if name == "timer_count":
            return self._periph_load("__t0_count")
        if name == "adc_start":
            self._device_start("__adc", args[0])
            return Imm(0)
        if name == "adc_stop":
            self._device_stop("__adc")
            return Imm(0)
        if name == "adc_read":
            return self._periph_load("__adc_data")
        if name == "adc_count":
            return self._periph_load("__adc_count")
        if name == "gpio_watch":
            self._device_start("__gpio", args[0])
            return Imm(0)
        if name == "gpio_stop":
            self._device_stop("__gpio")
            return Imm(0)
        if name == "gpio_read":
            return self._periph_load("__gpio_in")
        if name == "gpio_write":
            self._periph_store("__gpio_out", args[0])
            return Imm(0)
        if name == "dma_start":
            self._periph_store_imm("__dma_ctrl", 0)
            self._periph_store("__dma_len", args[0])
            self._periph_store("__dma_rate", args[1])
            self._periph_store_imm("__dma_xfrd", 0)
            self._periph_store_imm("__dma_done", 0)
            self._periph_store_imm("__dma_base", 0)
            self._periph_store_imm("__dma_ctrl", 1)
            return Imm(0)
        if name == "dma_done":
            return self._periph_load("__dma_done")
        if name == "dma_get":
            return self._periph_load("__dma_buf", off=args[0])
        raise SemanticError(
            f"line {expr.line}: unimplemented intrinsic {name!r}"
        )  # pragma: no cover - table and dispatch kept in sync


def _fold_binary(op: str, a: int, b: int, line: int) -> Optional[int]:
    """Constant-fold a binary op; returns ``None`` when folding is unsafe."""
    if op in ("/", "%") and b == 0:
        raise SemanticError(f"line {line}: constant division by zero")
    shift = b & 31
    table = {
        "+": a + b, "-": a - b, "*": a * b,
        "&": a & b, "|": a | b, "^": a ^ b,
        "<<": a << shift, ">>": a >> shift,
        "<": int(a < b), "<=": int(a <= b), ">": int(a > b),
        ">=": int(a >= b), "==": int(a == b), "!=": int(a != b),
    }
    if op == "/":
        return trunc_div(a, b)
    if op == "%":
        return trunc_rem(a, b)
    if op in table:
        return wrap32(table[op])
    return None


def _infer_for_bound(stmt: ast.For) -> Optional[int]:
    """Infer a trip bound for a canonical counted ``for`` loop."""
    init = stmt.init
    if isinstance(init, ast.VarDecl) and isinstance(init.init, ast.Num):
        var, start = init.name, init.init.value
    elif (isinstance(init, ast.Assign) and init.index is None
          and isinstance(init.value, ast.Num)):
        var, start = init.target, init.value.value
    else:
        return None
    cond = stmt.cond
    if not (isinstance(cond, ast.Binary) and isinstance(cond.left, ast.Var)
            and cond.left.name == var and isinstance(cond.right, ast.Num)
            and cond.op in ("<", "<=", ">", ">=")):
        return None
    limit = cond.right.value
    step_stmt = stmt.step
    if not (isinstance(step_stmt, ast.Assign) and step_stmt.target == var
            and step_stmt.index is None):
        return None
    step_expr = step_stmt.value
    if not (isinstance(step_expr, ast.Binary) and step_expr.op in ("+", "-")
            and isinstance(step_expr.left, ast.Var)
            and step_expr.left.name == var
            and isinstance(step_expr.right, ast.Num)):
        return None
    delta = step_expr.right.value
    if step_expr.op == "-":
        delta = -delta
    if delta == 0 or _modifies_var(stmt.body, var):
        return None
    if cond.op == "<" and delta > 0:
        span = limit - start
    elif cond.op == "<=" and delta > 0:
        span = limit - start + 1
    elif cond.op == ">" and delta < 0:
        span = start - limit
    elif cond.op == ">=" and delta < 0:
        span = start - limit + 1
    else:
        return None
    if span <= 0:
        return 0
    return -(-span // abs(delta))  # ceil division


def _modifies_var(node: object, var: str) -> bool:
    """Whether any statement under ``node`` assigns to scalar ``var``."""
    if isinstance(node, ast.Assign):
        return node.index is None and node.target == var
    if isinstance(node, ast.VarDecl):
        return node.name == var  # shadowing: be conservative
    if isinstance(node, ast.Block):
        return any(_modifies_var(s, var) for s in node.stmts)
    if isinstance(node, ast.If):
        return (_modifies_var(node.then, var)
                or _modifies_var(node.otherwise, var))
    if isinstance(node, (ast.While, ast.For)):
        parts = [node.body]
        if isinstance(node, ast.For):
            parts += [node.init, node.step]
        return any(_modifies_var(p, var) for p in parts if p is not None)
    return False
