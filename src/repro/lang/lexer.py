"""Tokenizer for MiniC, the reproduction's benchmark source language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import LexError

KEYWORDS = frozenset(
    {
        "int", "void", "if", "else", "while", "for", "return",
        "break", "continue", "bound", "out", "sense", "isr",
    }
)

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based line/column)."""

    kind: str   # "num" | "ident" | keyword | operator | "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source; raises :class:`LexError` on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line, col = 1, 1
    i = 0
    n = len(source)
    while i < n:
        char = source[i]
        # Whitespace.
        if char in " \t\r":
            i += 1
            col += 1
            continue
        if char == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, col)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # Numbers (decimal and hex).
        if char.isdigit():
            start = i
            if source.startswith(("0x", "0X"), i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            yield Token("num", text, line, col)
            col += i - start
            continue
        # Identifiers and keywords.
        if char.isalpha() or char == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = text if text in KEYWORDS else "ident"
            yield Token(kind, text, line, col)
            col += i - start
            continue
        # Operators and punctuation.
        for op in OPERATORS:
            if source.startswith(op, i):
                yield Token(op, op, line, col)
                i += len(op)
                col += len(op)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, col)
    yield Token("eof", "", line, col)
