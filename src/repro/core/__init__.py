"""GECKO: the paper's contribution — pruned, colored, attack-aware rollback.

The public compiler API lives here:

>>> from repro.core import compile_gecko, compile_nvp, compile_ratchet
>>> program = compile_gecko(minic_source)
>>> program.stats.pruning_reduction
"""

from .coloring import ColoringStats, color_function, verify_coloring
from .gecko import (
    CompileStats,
    CompiledProgram,
    DEFAULT_REGION_BUDGET,
    compile_gecko,
    compile_nvp,
    compile_ratchet,
    compile_scheme,
)
from .plans import RegionPlan, SliceExec, SlotLoad, slot_symbol
from .pruning import (
    PruneResult,
    collect_checkpoints,
    prune_function,
    prune_module,
    readonly_symbols,
)
from .recovery import CkptInfo, MAX_SLICE_LEN, SliceBuilder, materialize_slice

__all__ = [
    "CkptInfo", "ColoringStats", "CompileStats", "CompiledProgram",
    "DEFAULT_REGION_BUDGET", "MAX_SLICE_LEN", "PruneResult", "RegionPlan",
    "SliceBuilder", "SliceExec", "SlotLoad", "collect_checkpoints",
    "color_function", "compile_gecko", "compile_nvp", "compile_ratchet",
    "compile_scheme", "materialize_slice", "prune_function", "prune_module",
    "readonly_symbols", "slot_symbol", "verify_coloring",
]
