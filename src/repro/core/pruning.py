"""Checkpoint pruning (paper §VI-C).

Walks every boundary's checkpoint stores and removes the ones whose value a
recovery block can reconstruct (see :mod:`repro.core.recovery`).  The pass
keeps the checkpoint registry (:class:`~repro.core.recovery.CkptInfo`) alive
for the subsequent coloring and plan-building stages: pruned checkpoints
carry their abstract slice, kept ones may be referenced by slices and are
then locked against later pruning.

The paper's headline result — ~80% of checkpoint stores removed (Fig. 12) —
comes from two sources this pass reproduces: registers that stay unchanged
across consecutive boundaries (slice = one slot load from the previous
boundary) and values recomputable from constants or read-only tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..isa.instructions import Instr, Opcode
from ..isa.operands import PReg
from ..ir.cfg import Function, Module
from ..ir.reaching import reaching_definitions
from .recovery import CkptInfo, MAX_SLICE_LEN, SliceBuilder

Site = Tuple[str, int]


@dataclass
class PruneResult:
    """Per-function pruning outcome."""

    checkpoints: List[CkptInfo] = field(default_factory=list)
    total: int = 0
    pruned: int = 0

    @property
    def kept(self) -> int:
        return self.total - self.pruned

    @property
    def reduction(self) -> float:
        """Fraction of checkpoint stores removed (0..1)."""
        return self.pruned / self.total if self.total else 0.0


def readonly_symbols(module: Module) -> FrozenSet[str]:
    """Module globals that no instruction ever stores to."""
    written = set()
    for _, _, instr in module.all_instructions():
        if instr.op is Opcode.ST:
            written.add(instr.sym.name)
    return frozenset(name for name in module.globals if name not in written)


def collect_checkpoints(function: Function) -> List[CkptInfo]:
    """Build the checkpoint registry: every CKPT with its owning MARK."""
    infos: List[CkptInfo] = []
    for name in function.block_order:
        instrs = function.blocks[name].instrs
        pending: List[Tuple[Site, Instr]] = []
        for index, instr in enumerate(instrs):
            if instr.op is Opcode.CKPT:
                pending.append(((name, index), instr))
            elif instr.op is Opcode.MARK:
                for site, ck in pending:
                    infos.append(
                        CkptInfo(instr=ck, site=site, mark_site=(name, index),
                                 reg_index=ck.reg_index, mark_instr=instr)
                    )
                pending = []
            elif pending:
                # Checkpoints must be contiguous before their MARK.
                raise AssertionError(
                    f"stray CKPT not followed by MARK in {function.name}:{name}"
                )
    return infos


def prune_function(function: Function, readonly: FrozenSet[str],
                   max_slice_len: int = MAX_SLICE_LEN) -> PruneResult:
    """Prune reconstructible checkpoints of ``function`` (in place)."""
    infos = collect_checkpoints(function)
    result = PruneResult(checkpoints=infos, total=len(infos))
    if not infos:
        return result

    reaching = reaching_definitions(function)
    for info in infos:
        defs = reaching.defs_reaching_use(info.site, PReg(info.reg_index))
        info.unique_def = next(iter(defs)) if len(defs) == 1 else None

    builder = SliceBuilder(function, reaching, readonly, infos,
                           max_len=max_slice_len)
    for info in infos:
        if info.referenced_by:
            continue  # locked: another slice restores from this slot
        if info.unique_def is None:
            continue
        elements = builder.try_build(info)
        if elements is None:
            continue
        # Lock every slot source before committing the prune.
        sources = [
            infos[e.source_index] for e in elements
            if hasattr(e, "source_index")
        ]
        if any(not src.kept for src in sources):
            continue
        info.kept = False
        info.slice_elements = elements
        result.pruned += 1
        for src in sources:
            src.referenced_by.append(info)

    _remove_pruned(function, infos)
    return result


def _remove_pruned(function: Function, infos: List[CkptInfo]) -> None:
    pruned_objects = {id(i.instr) for i in infos if not i.kept}
    if not pruned_objects:
        return
    for name in function.block_order:
        block = function.blocks[name]
        block.instrs = [
            instr for instr in block.instrs if id(instr) not in pruned_objects
        ]


def locate_instr(function: Function, target: Instr) -> Optional[Site]:
    """Current position of an instruction object (identity lookup)."""
    for name in function.block_order:
        for index, instr in enumerate(function.blocks[name].instrs):
            if instr is target:
                return (name, index)
    return None


def unprune(function: Function, info: CkptInfo) -> None:
    """Re-insert a pruned checkpoint before its MARK (validation fallback)."""
    if info.kept:
        return
    site = locate_instr(function, info.mark_instr)
    if site is None:
        raise AssertionError(
            f"could not locate owning MARK to unprune R{info.reg_index}"
        )
    name, index = site
    function.blocks[name].instrs.insert(index, info.instr)
    info.kept = True
    info.slice_elements = None


def prune_module(module: Module,
                 max_slice_len: int = MAX_SLICE_LEN) -> Dict[str, PruneResult]:
    """Prune every function; returns per-function results."""
    readonly = readonly_symbols(module)
    return {
        name: prune_function(fn, readonly, max_slice_len)
        for name, fn in module.functions.items()
    }
