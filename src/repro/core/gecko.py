"""The GECKO compiler pipeline and the other compilation schemes.

Public entry points:

* :func:`compile_nvp`     — plain code generation, no instrumentation; crash
  consistency comes entirely from the JIT checkpoint runtime (the baseline).
* :func:`compile_ratchet` — idempotent regions + full register-file
  checkpoints with the dynamic double buffer, *no* WCET splitting (Ratchet).
* :func:`compile_gecko`   — the paper's five-step pipeline (§VI-B): region
  formation, WCET analysis, region splitting, re-formation, then register
  checkpointing with pruning (§VI-C), recovery blocks (§VI-E) and static
  2-colored double buffering (§VI-D).

Every compiled program carries per-region restore plans in the MARK
instructions' ``meta['plan']``; the runtimes build their lookup tables from
those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Union

from ..errors import CompileError
from ..isa.instructions import Instr, Opcode
from ..isa.program import LinkedProgram, link
from ..ir.cfg import Function, Module
from ..ir.dominators import dominators
from ..lang.lowering import compile_source
from ..compiler.checkpoint import insert_checkpoints
from ..compiler.codegen import lower_module
from ..compiler.regalloc import allocate_module
from ..compiler.region import (
    form_regions,
    renumber_regions,
    unsatisfied_antideps,
)
from ..compiler.splitting import split_regions, verify_region_budget
from .coloring import color_function, verify_coloring
from .plans import RegionPlan, SliceExec, SlotLoad
from .pruning import (
    PruneResult,
    collect_checkpoints,
    locate_instr,
    prune_function,
    readonly_symbols,
    unprune,
)
from .recovery import CkptInfo, SlotElement, materialize_slice

#: Default guaranteed power-on budget in cycles (one full capacitor charge
#: under worst-case draw — see PowerSystem.guaranteed_cycles(); a 1 mF
#: buffer at MSP430-class draw sustains far more than this, so the default
#: is conservative while leaving small kernels unsplit, as on real boards).
DEFAULT_REGION_BUDGET = 50_000

#: Cycle slack reserved when splitting so that the checkpoint stores later
#: inserted at each boundary (up to 15 registers x 4 cycles) still fit.
_SPLIT_MARGIN = 64

#: Words of lookup-table overhead per region entry (id -> entry PC, inputs).
_TABLE_WORDS_PER_REGION = 2


@dataclass
class CompileStats:
    """Static metrics for the paper's Fig. 12, Tab. III and §VII-C."""

    scheme: str = "gecko"
    regions: int = 0
    checkpoints_before_pruning: int = 0
    checkpoints_after_pruning: int = 0
    recovery_blocks: int = 0
    recovery_block_instrs: int = 0
    code_size: int = 0
    spills: int = 0
    #: Join-point coloring conflicts repaired by inserting a new region.
    coloring_conflicts: int = 0
    #: Registers that fell back to the per-register dynamic index (§VI-D).
    dynamic_fallbacks: int = 0

    @property
    def pruning_reduction(self) -> float:
        """Fraction of checkpoint stores removed by pruning (Fig. 12)."""
        if not self.checkpoints_before_pruning:
            return 0.0
        return 1.0 - (self.checkpoints_after_pruning
                      / self.checkpoints_before_pruning)

    @property
    def avg_recovery_block_len(self) -> float:
        if not self.recovery_blocks:
            return 0.0
        return self.recovery_block_instrs / self.recovery_blocks

    @property
    def lookup_table_size(self) -> int:
        """Instruction-equivalent size of the recovery lookup table (§VII-C)."""
        return (_TABLE_WORDS_PER_REGION * self.regions
                + self.recovery_block_instrs)

    @property
    def total_code_size(self) -> int:
        """Binary size proxy: program + recovery blocks + lookup table."""
        return self.code_size + self.lookup_table_size


@dataclass
class CompiledProgram:
    """A linked executable plus its instrumentation metadata."""

    linked: LinkedProgram
    scheme: str
    stats: CompileStats
    module: Module
    #: Per-function pruning results (gecko schemes only).
    prune_results: Dict[str, PruneResult] = field(default_factory=dict)

    @property
    def checkpoint_stores(self) -> int:
        """Static CKPT count in the final binary (Tab. III)."""
        return self.linked.count_opcode(Opcode.CKPT)

    @property
    def region_count(self) -> int:
        return self.linked.count_opcode(Opcode.MARK)


SourceOrModule = Union[str, Module]


def _prepare(source: SourceOrModule, optimize: bool = True) -> Module:
    module = compile_source(source) if isinstance(source, str) else source
    # The static-frame calling convention cannot express recursion; fail
    # loudly here rather than miscompile (call_order raises on cycles).
    module.call_order()
    # ISR handler closures must be well-formed for every scheme (the
    # exclusivity rules below are what make skipping their region
    # instrumentation sound).
    _isr_closures(module)
    if optimize:
        # Step 1 of the paper's pipeline: traditional optimizations on the
        # IR before any crash-consistency instrumentation.  Constant
        # propagation also exposes loop limits that were variables in the
        # source, so re-run bound inference at the IR level afterwards.
        from ..compiler.optimize import optimize_module
        from ..ir.loops import infer_loop_bounds
        optimize_module(module)
        for function in module.functions.values():
            infer_loop_bounds(function)
    return module


def compile_nvp(source: SourceOrModule,
                optimize: bool = True) -> CompiledProgram:
    """Compile with no software crash-consistency instrumentation."""
    module = _prepare(source, optimize)
    alloc = allocate_module(module)
    linked = link(lower_module(module))
    stats = CompileStats(
        scheme="nvp", code_size=linked.code_size(),
        spills=sum(a.spill_count for a in alloc.values()),
    )
    return CompiledProgram(linked=linked, scheme="nvp", stats=stats,
                           module=module)


def compile_ratchet(source: SourceOrModule,
                    optimize: bool = True) -> CompiledProgram:
    """Compile the Ratchet baseline: idempotent regions, full-RF checkpoints.

    Faithful to the paper's characterisation: no WCET-driven splitting
    (Ratchet regions can exceed a charge cycle, §VII-B3) and the dynamic
    double-buffer index flip rather than static coloring.
    """
    module = _prepare(source, optimize)
    alloc = allocate_module(module)
    isr_fns = _isr_functions(module)
    for name, function in module.functions.items():
        if name in isr_fns:
            # Handler closures get no region instrumentation: the hub's
            # frame push/pop is the crash-consistency mechanism around
            # them (stale frames heal by re-delivery).
            continue
        form_regions(function, loop_headers=True)
        insert_checkpoints(function, policy="ratchet")
        _check_idempotent(function)
    renumber_regions(module)
    for function in module.functions.values():
        _attach_plans(function, collect_checkpoints(function))
    linked = link(lower_module(module))
    stats = CompileStats(
        scheme="ratchet",
        regions=linked.count_opcode(Opcode.MARK),
        checkpoints_before_pruning=linked.count_opcode(Opcode.CKPT),
        checkpoints_after_pruning=linked.count_opcode(Opcode.CKPT),
        code_size=linked.code_size(),
        spills=sum(a.spill_count for a in alloc.values()),
    )
    return CompiledProgram(linked=linked, scheme="ratchet", stats=stats,
                           module=module)


def compile_gecko(source: SourceOrModule,
                  region_budget: int = DEFAULT_REGION_BUDGET,
                  prune: bool = True,
                  max_slice_len: Optional[int] = None,
                  optimize: bool = True) -> CompiledProgram:
    """Run the full GECKO pipeline.

    Args:
        source: MiniC text or an already-lowered IR module.
        region_budget: guaranteed power-on cycles every region must fit in.
        prune: disable to get the "GECKO w/o pruning" configuration (Fig. 11).
        max_slice_len: recovery-block length cap (default from recovery).
        optimize: run the classic middle-end passes first (pipeline step 1).
    """
    module = _prepare(source, optimize)
    alloc = allocate_module(module)
    readonly = readonly_symbols(module)
    stats = CompileStats(scheme="gecko" if prune else "gecko-nopruning")
    prune_results: Dict[str, PruneResult] = {}

    isr_fns = _isr_functions(module)
    for name, function in module.functions.items():
        if name in isr_fns:
            # No region instrumentation inside handler closures; their
            # whole activation must instead fit the power-on budget,
            # checked below (WCET, strict loop bounds).
            continue
        # Steps 2-4: form regions, split against the WCET budget, re-form.
        form_regions(function)
        split_regions(function, max(region_budget - _SPLIT_MARGIN, 32))
        form_regions(function)
        # Step 5: checkpoint the register inputs of every region.
        before = insert_checkpoints(function, policy="gecko")
        stats.checkpoints_before_pruning += before
        if prune:
            kwargs = {}
            if max_slice_len is not None:
                kwargs["max_slice_len"] = max_slice_len
            result = prune_function(function, readonly, **kwargs)
        else:
            result = PruneResult(checkpoints=collect_checkpoints(function),
                                 total=before)
        prune_results[name] = result
        color_stats = _color_and_validate(function, result.checkpoints)
        stats.coloring_conflicts += color_stats.conflicts_fixed
        stats.dynamic_fallbacks += color_stats.dynamic_fallbacks
        verify_region_budget(function, region_budget)

    _check_isr_wcet(module, region_budget)

    renumber_regions(module)
    for name, function in module.functions.items():
        if name in prune_results:
            _attach_plans(function, prune_results[name].checkpoints)

    linked = link(lower_module(module))
    stats.regions = linked.count_opcode(Opcode.MARK)
    stats.checkpoints_after_pruning = linked.count_opcode(Opcode.CKPT)
    # "Before pruning" counts what the binary would carry had no checkpoint
    # been pruned — the final count plus every store pruning removed (the
    # Fig. 12 comparison).
    stats.checkpoints_before_pruning = stats.checkpoints_after_pruning + sum(
        result.pruned for result in prune_results.values()
    )
    stats.code_size = linked.code_size()
    stats.spills = sum(a.spill_count for a in alloc.values())
    for instr in linked.instrs:
        plan = instr.meta.get("plan")
        if isinstance(plan, RegionPlan):
            for action in plan.restores.values():
                if isinstance(action, SliceExec):
                    stats.recovery_blocks += 1
                    stats.recovery_block_instrs += len(action)
    return CompiledProgram(linked=linked, scheme=stats.scheme, stats=stats,
                           module=module, prune_results=prune_results)


def compile_scheme(source: SourceOrModule, scheme: str,
                   **kwargs) -> CompiledProgram:
    """Dispatch by scheme name: 'nvp', 'ratchet', 'gecko', 'gecko-nopruning'."""
    if scheme == "nvp":
        return compile_nvp(source)
    if scheme == "ratchet":
        return compile_ratchet(source)
    if scheme == "gecko":
        return compile_gecko(source, **kwargs)
    if scheme == "gecko-nopruning":
        return compile_gecko(source, prune=False, **kwargs)
    raise ValueError(f"unknown compilation scheme {scheme!r}")


# ----------------------------------------------------------------------
# Coloring + post-coloring validation.
# ----------------------------------------------------------------------
def _color_and_validate(function: Function, infos: List[CkptInfo],
                        max_rounds: int = 50):
    """Color checkpoints, then repair anything coloring's edits broke.

    Two things can go stale after conflict repair inserts new boundaries:
    a pruned checkpoint's slot reference (another same-register checkpoint
    now sits between source and target), and a WARAW protection (a new MARK
    separates the protecting store from its load).  Both repairs insert
    instructions, so iterate to a fixpoint.  Returns the accumulated
    :class:`~repro.core.coloring.ColoringStats`.
    """
    from .coloring import ColoringStats

    total = ColoringStats()
    for _ in range(max_rounds):
        stats = color_function(function, infos)
        total.conflicts_fixed += stats.conflicts_fixed
        total.extra_checkpoints += stats.extra_checkpoints
        total.dynamic_fallbacks += stats.dynamic_fallbacks
        total.colored = stats.colored
        stale = _stale_slices(function, infos)
        if stale:
            for info in stale:
                unprune(function, info)
            continue
        dep = next(iter(unsatisfied_antideps(function)), None)
        if dep is not None:
            _insert_boundary_before(function, infos, dep.store)
            continue
        verify_coloring(function, infos)
        return total
    raise CompileError(
        f"post-coloring validation did not converge in {function.name}"
    )


def _stale_slices(function: Function,
                  infos: List[CkptInfo]) -> List[CkptInfo]:
    """Pruned checkpoints whose slot references are no longer safe."""
    from .recovery import _path_through_exists  # shared path utility

    dom = dominators(function)
    current: Dict[int, object] = {}

    def site_of(instr: Instr):
        key = id(instr)
        if key not in current:
            current[key] = locate_instr(function, instr)
        return current[key]

    stale: List[CkptInfo] = []
    for info in infos:
        if info.kept or not info.slice_elements:
            continue
        mark_site = site_of(info.mark_instr)
        if mark_site is None:
            stale.append(info)
            continue
        for element in info.slice_elements:
            if not isinstance(element, SlotElement):
                continue
            source = infos[element.source_index]
            source_site = site_of(source.instr)
            if source_site is None or not source.kept:
                stale.append(info)
                break
            if not _dominates(dom, source_site, mark_site):
                stale.append(info)
                break
            others = {
                site_of(other.instr)
                for other in infos
                if other.kept and other is not source
                and other.reg_index == source.reg_index
                and site_of(other.instr) is not None
            }
            if others and _path_through_exists(function, source_site,
                                               mark_site, others):
                stale.append(info)
                break
    return stale


def _dominates(dom, a, b) -> bool:
    if a[0] == b[0]:
        return a[1] < b[1]
    return a[0] in dom.get(b[0], set())


def _insert_boundary_before(function: Function, infos: List[CkptInfo],
                            store_site) -> None:
    """Cut an anti-dependence post-coloring: MARK + minimal checkpoints.

    Live inputs restorable from an existing dominating slot are left to the
    plan builder; checkpointing them here would disturb their coloring.
    """
    from ..isa.instructions import ckpt as make_ckpt, mark
    from ..isa.operands import PReg
    from ..ir.liveness import liveness
    from .pruning import locate_instr as _locate
    from .recovery import find_dominating_slot

    block_name, index = store_site
    live = liveness(function, ignore_ckpt_uses=True)
    live_here = live.live_at(function, block_name, index)

    site_cache: Dict[int, object] = {}

    def site_of(info: CkptInfo):
        key = id(info.instr)
        if key not in site_cache:
            site_cache[key] = _locate(function, info.instr)
        return site_cache[key]

    inputs = []
    for reg in sorted(live_here, key=lambda r: getattr(r, "index", 99)):
        if not isinstance(reg, PReg) or not 1 <= reg.index < 16:
            continue
        slot = find_dominating_slot(function, infos, reg.index,
                                    (block_name, index), site_of=site_of)
        if slot is None:
            inputs.append(reg.index)

    block = function.blocks[block_name]
    new_mark = mark(0)
    new_instrs: List[Instr] = []
    for reg_index in inputs:
        ck = make_ckpt(PReg(reg_index), reg_index=reg_index, color=None)
        new_instrs.append(ck)
        infos.append(
            CkptInfo(instr=ck, site=(block_name, index),
                     mark_site=(block_name, index),
                     reg_index=reg_index, mark_instr=new_mark)
        )
    new_instrs.append(new_mark)
    block.instrs[index:index] = new_instrs


# ----------------------------------------------------------------------
# Restore-plan construction.
# ----------------------------------------------------------------------
def _attach_plans(function: Function, infos: List[CkptInfo]) -> None:
    """Attach a RegionPlan to every MARK.

    Each live input register of a region is restored via (in order of
    preference) its own boundary checkpoint, its pruning recovery block, or
    a dominating checkpoint slot from an earlier boundary (covers repair
    boundaries that deliberately checkpoint only the conflicted register).
    """
    from ..ir.dominators import dominators
    from ..ir.liveness import liveness
    from ..isa.operands import PReg
    from .pruning import locate_instr as _locate
    from .recovery import find_restore_source

    by_mark: Dict[int, List[CkptInfo]] = {}
    for info in infos:
        by_mark.setdefault(id(info.mark_instr), []).append(info)

    live = liveness(function, ignore_ckpt_uses=True)
    dom = dominators(function)
    site_cache: Dict[int, object] = {}

    def site_of(info: CkptInfo):
        key = id(info.instr)
        if key not in site_cache:
            site_cache[key] = _locate(function, info.instr)
        return site_cache[key]

    for name in function.block_order:
        for index, instr in enumerate(function.blocks[name].instrs):
            if instr.op is not Opcode.MARK:
                continue
            plan = RegionPlan(region=instr.region or 0)
            for info in by_mark.get(id(instr), []):
                if info.kept:
                    plan.restores[info.reg_index] = SlotLoad(
                        reg_index=info.reg_index, color=info.instr.color,
                        per_reg=bool(info.instr.meta.get("per_reg")),
                    )
                elif info.slice_elements:
                    plan.restores[info.reg_index] = SliceExec(
                        target=info.reg_index,
                        instrs=materialize_slice(infos, info.slice_elements),
                    )
            for reg in live.live_at(function, name, index + 1):
                if not isinstance(reg, PReg) or not 1 <= reg.index < 16:
                    continue
                if reg.index in plan.restores:
                    continue
                found = find_restore_source(function, infos, reg.index,
                                            (name, index), dom=dom,
                                            site_of=site_of)
                if found is None:
                    raise CompileError(
                        f"{function.name}: live input R{reg.index} of the "
                        f"region at {name}:{index} has no restore path"
                    )
                kind, source_index = found
                source = infos[source_index]
                if kind == "slot":
                    plan.restores[reg.index] = SlotLoad(
                        reg_index=source.reg_index, color=source.instr.color,
                        per_reg=bool(source.instr.meta.get("per_reg")),
                    )
                else:
                    plan.restores[reg.index] = SliceExec(
                        target=reg.index,
                        instrs=materialize_slice(infos, source.slice_elements),
                    )
            instr.meta["plan"] = plan


# ----------------------------------------------------------------------
# ISR handler closures.
# ----------------------------------------------------------------------
def _isr_closures(module: Module) -> Dict[int, FrozenSet[str]]:
    """Per-vector handler closures, with the exclusivity rules enforced.

    A handler closure (the handler plus everything it may call) gets no
    region/checkpoint instrumentation: its crash consistency comes from
    the hub's frame push/pop and at-least-once re-delivery.  That is only
    sound if closure functions are *exclusive* — never called from main
    code or from another vector's closure — because an instrumented
    caller re-entering a shared callee after rollback would replay the
    callee without its checkpoints.
    """
    if not module.isrs:
        return {}
    callees: Dict[str, set] = {name: set() for name in module.functions}
    callers: Dict[str, set] = {name: set() for name in module.functions}
    for fname, _, instr in module.all_instructions():
        if instr.op is Opcode.CALL:
            callees[fname].add(instr.callee)
            callers[instr.callee].add(fname)

    closures: Dict[int, FrozenSet[str]] = {}
    owner: Dict[str, int] = {}
    for vector, handler in sorted(module.isrs.items()):
        if handler not in module.functions:
            raise CompileError(
                f"isr vector {vector} names undefined function {handler!r}")
        if handler == module.entry:
            raise CompileError("the entry function cannot be an isr handler")
        seen = {handler}
        work = [handler]
        while work:
            for callee in callees[work.pop()]:
                if callee not in seen:
                    seen.add(callee)
                    work.append(callee)
        for fname in seen:
            if fname in owner:
                raise CompileError(
                    f"function {fname!r} is shared between the vector-"
                    f"{owner[fname]} and vector-{vector} isr closures"
                )
            owner[fname] = vector
        closures[vector] = frozenset(seen)

    if module.entry in owner:
        raise CompileError(
            f"isr closure (vector {owner[module.entry]}) reaches the entry "
            f"function"
        )
    for fname, vector in owner.items():
        outside = callers[fname] - closures[vector]
        if outside:
            raise CompileError(
                f"function {fname!r} belongs to the vector-{vector} isr "
                f"closure but is also called from "
                f"{', '.join(sorted(outside))}"
            )
    return closures


def _isr_functions(module: Module) -> FrozenSet[str]:
    """Every function owned by any ISR handler closure."""
    closures = _isr_closures(module)
    names: set = set()
    for fns in closures.values():
        names |= fns
    return frozenset(names)


def _check_isr_wcet(module: Module, region_budget: int) -> None:
    """Every handler activation must fit the guaranteed power-on budget.

    Handlers carry no MARKs, so a whole activation is the atomic unit a
    power failure can force to re-run; under GECKO it must therefore fit
    ``region_budget`` like any split region.  Loop bounds are strict —
    an unbounded loop inside a handler closure is a compile error.
    """
    if not module.isrs:
        return
    from ..errors import WCETError
    from ..ir.wcet import function_wcet

    closures = _isr_closures(module)
    members: set = set()
    for fns in closures.values():
        members |= fns
    wcets: Dict[str, int] = {}
    for fname in module.call_order():
        if fname not in members:
            continue
        try:
            wcets[fname] = int(function_wcet(
                module.functions[fname], callee_wcet=wcets, strict=True))
        except WCETError as exc:
            raise CompileError(
                f"isr closure function {fname!r}: {exc}") from exc
    for vector, handler in sorted(module.isrs.items()):
        wcet = wcets[handler]
        if wcet > region_budget:
            raise CompileError(
                f"isr handler {handler!r} (vector {vector}) has WCET "
                f"{wcet} cycles, exceeding the region budget "
                f"{region_budget}"
            )


def _check_idempotent(function: Function) -> None:
    deps = unsatisfied_antideps(function)
    if deps:
        raise CompileError(
            f"{function.name}: {len(deps)} unsatisfied anti-dependences "
            f"after region formation"
        )
