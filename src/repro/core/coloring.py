"""Static 2-coloring of checkpoint storage (paper §VI-D).

Each register's checkpoints alternate between the two buffer copies
(``__ckpt0``/``__ckpt1``) so a crash mid-checkpoint can never corrupt the
slot the committed region restores from.  Because GECKO prunes checkpoints,
the dynamic flip Ratchet uses is unavailable; instead each CKPT gets a
*static* color such that any two checkpoints of the same register that can
execute consecutively (no other checkpoint of that register in between)
receive different colors.

Coloring a register is 2-coloring its *adjacency graph*.  Odd cycles arise
at CFG join points (and at loops containing a single checkpoint of the
register); following the paper, the conflict is repaired by creating a new
region on the offending CFG edge with an additional checkpoint — here, a
full input checkpoint set, so the new region is independently recoverable —
and recoloring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CompileError
from ..isa.instructions import Instr, Opcode, ckpt as make_ckpt, jmp, mark
from ..isa.operands import Label, NUM_REGS, PReg
from ..ir.cfg import BasicBlock, Function
from ..ir.liveness import liveness
from .pruning import locate_instr
from .recovery import CkptInfo

Site = Tuple[str, int]


@dataclass
class ColoringStats:
    """Outcome of the coloring pass for one function."""

    colored: int = 0
    conflicts_fixed: int = 0
    extra_checkpoints: int = 0
    dynamic_fallbacks: int = 0


def color_function(function: Function, infos: List[CkptInfo],
                   max_repairs_per_reg: int = 12) -> ColoringStats:
    """Assign colors to every kept checkpoint of ``function`` (in place).

    Registers are processed independently (a checkpoint of ``x`` never
    constrains ``y``'s buffers).  Odd cycles are repaired by inserting a new
    boundary region on the conflicting path (the paper's join-conflict fix);
    a register whose adjacency graph resists ``max_repairs_per_reg`` repairs
    — repairs can flip the parity of overlapping cycles — falls back to the
    paper's naive per-register dynamic index (§VI-D's 16-IndexStores
    scheme), applied to that register alone.  Convergence is therefore
    guaranteed, and the dynamic fallback's extra cost is confined to the
    rare pathological register.
    """
    stats = ColoringStats()
    dynamic: Set[int] = set()
    repairs: Dict[int, int] = {}
    # Repairs insert a checkpoint of the conflicting register only, so one
    # register's repair never perturbs another register's coloring and each
    # register converges independently.  A repair that would need to
    # checkpoint *other* registers too (because some live input of the new
    # region has no dominating slot to restore from) is refused, and the
    # register falls back to the per-register dynamic index instead.
    for reg_index in sorted({i.reg_index for i in infos if i.kept}):
        while reg_index not in dynamic:
            conflict = _try_color_register(function, infos, reg_index)
            if conflict is None:
                break
            fixed = None
            if repairs.get(reg_index, 0) < max_repairs_per_reg:
                fixed = _fix_conflict(function, infos, conflict)
            if fixed is None:
                dynamic.add(reg_index)
                stats.dynamic_fallbacks += 1
                _make_dynamic(infos, reg_index)
                break
            repairs[reg_index] = repairs.get(reg_index, 0) + 1
            stats.conflicts_fixed += 1
            stats.extra_checkpoints += fixed
    stats.colored = sum(1 for i in infos if i.kept)
    return stats


def _make_dynamic(infos: List[CkptInfo], reg_index: int) -> None:
    """Give up static coloring for one register: per-register dynamic index."""
    for info in infos:
        if info.kept and info.reg_index == reg_index:
            info.instr.color = None
            info.instr.meta["per_reg"] = True


@dataclass
class _Conflict:
    reg_index: int
    src: CkptInfo
    dst: CkptInfo
    path: List[Site]  # sites from just after src up to and including dst


def _try_color_register(function: Function, infos: List[CkptInfo],
                        reg_index: int) -> Optional["_Conflict"]:
    """2-color one register's checkpoints; returns the first conflict."""
    group = [i for i in infos if i.kept and i.reg_index == reg_index]
    current: Dict[int, Site] = {}
    for info in group:
        site = locate_instr(function, info.instr)
        if site is None:
            raise CompileError("checkpoint registry out of sync with IR")
        current[id(info.instr)] = site

    site_to_info = {current[id(i.instr)]: i for i in group}
    adjacency: Dict[int, Set[int]] = {k: set() for k in range(len(group))}
    paths: Dict[Tuple[int, int], List[Site]] = {}
    index_of = {id(i.instr): k for k, i in enumerate(group)}
    for k, info in enumerate(group):
        for neighbor_site, path in _adjacent_ckpts(
            function, current[id(info.instr)], set(site_to_info)
        ):
            j = index_of[id(site_to_info[neighbor_site].instr)]
            adjacency[k].add(j)
            adjacency[j].add(k)
            paths.setdefault((k, j), path)
    colors: Dict[int, int] = {}
    for start in range(len(group)):
        if start in colors:
            continue
        colors[start] = 0
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                required = 1 - colors[node]
                if neighbor not in colors:
                    colors[neighbor] = required
                    stack.append(neighbor)
                elif colors[neighbor] != required:
                    ordered = (node, neighbor)
                    if ordered not in paths:
                        ordered = (neighbor, node)
                    return _Conflict(
                        reg_index=reg_index,
                        src=group[ordered[0]],
                        dst=group[ordered[1]],
                        path=paths[ordered],
                    )
    for k, info in enumerate(group):
        info.instr.color = colors[k]
        info.instr.meta.pop("per_reg", None)
    return None


def _adjacent_ckpts(function: Function, site: Site,
                    stops: Set[Site]) -> List[Tuple[Site, List[Site]]]:
    """Same-register checkpoints reachable without crossing another one.

    Returns ``(neighbor site, path)`` pairs where ``path`` lists the sites
    walked from just after ``site`` up to and including the neighbor.
    """
    results: List[Tuple[Site, List[Site]]] = []
    seen: Set[Site] = set()
    parent: Dict[Site, Optional[Site]] = {}
    stack: List[Site] = []
    for nxt in _next_sites(function, site):
        if nxt not in parent:
            parent[nxt] = None
            stack.append(nxt)
    while stack:
        here = stack.pop()
        if here in seen:
            continue
        seen.add(here)
        if here in stops:
            path: List[Site] = []
            cursor: Optional[Site] = here
            while cursor is not None:
                path.append(cursor)
                cursor = parent[cursor]
            path.reverse()
            results.append((here, path))
            continue  # do not traverse past another checkpoint
        for nxt in _next_sites(function, here):
            if nxt not in parent:
                parent[nxt] = here
                stack.append(nxt)
    return results


def _next_sites(function: Function, site: Site) -> List[Site]:
    block, index = site
    instrs = function.blocks[block].instrs
    instr = instrs[index]
    if instr.op is Opcode.JMP:
        return [(instr.target.name, 0)]
    if instr.op is Opcode.BNZ:
        return [(instr.target.name, 0), (block, index + 1)]
    if instr.op in (Opcode.RET, Opcode.HALT):
        return []
    if index + 1 < len(instrs):
        return [(block, index + 1)]
    return []


def _fix_conflict(function: Function, infos: List[CkptInfo],
                  conflict: _Conflict) -> Optional[int]:
    """Insert a conflict-register-only boundary region on the offending path.

    When the conflicting path crosses a CFG edge, a new block is inserted on
    that edge (classic critical-edge splitting).  When the path is entirely
    within one block — an odd cycle detected on a straight-line segment —
    the boundary goes directly into the block: execution between two
    in-block positions is strictly sequential, so the insertion point cuts
    every src->dst path.

    The new region checkpoints *only* the conflicting register (the paper's
    rule); every other live input must be restorable from an existing
    dominating slot, otherwise the repair is refused (returns ``None``) and
    the caller falls back to the dynamic index for this register.
    """
    edge = _last_transition_edge(function, conflict.path)
    live = liveness(function, ignore_ckpt_uses=True)

    if edge is None:
        block_name, index = conflict.path[-1]
        live_here = live.live_at(function, block_name, index)
        if not _repair_is_free(function, infos, live_here,
                               (block_name, index), conflict.reg_index):
            return None
        new_mark = mark(0)
        new_instrs, added = _boundary_instrs(
            infos, [conflict.reg_index], new_mark, (block_name, index)
        )
        function.blocks[block_name].instrs[index:index] = new_instrs
        if not _repair_holds(function, infos, new_mark,
                             conflict.reg_index):
            del function.blocks[block_name] \
                .instrs[index:index + len(new_instrs)]
            del infos[-added:]
            return None
        return added

    branch_site, target_block = edge
    live_here = live.live_in.get(target_block, set())
    if not _repair_is_free(function, infos, live_here, branch_site,
                           conflict.reg_index):
        return None
    new_name = function.new_label("recolor")
    new_mark = mark(0)
    new_instrs, added = _boundary_instrs(
        infos, [conflict.reg_index], new_mark, (new_name, 0)
    )
    new_block = BasicBlock(new_name, instrs=new_instrs + [jmp(Label(target_block))])
    function.blocks[new_name] = new_block
    position = function.block_order.index(branch_site[0])
    function.block_order.insert(position + 1, new_name)
    branch_instr = function.blocks[branch_site[0]].instrs[branch_site[1]]
    branch_instr.target = Label(new_name)
    if not _repair_holds(function, infos, new_mark, conflict.reg_index):
        del function.blocks[new_name]
        function.block_order.remove(new_name)
        branch_instr.target = Label(target_block)
        del infos[-added:]
        return None
    return added


def _repair_holds(function: Function, infos: List[CkptInfo],
                  new_mark: Instr, conflict_reg: int) -> bool:
    """Re-validate a just-inserted repair boundary at its real site.

    ``_repair_is_free`` checks restore paths *before* the insertion, at
    the branch site — but the repair's own checkpoint of the conflict
    register can clobber-invalidate a slice restore another live input
    depended on (its slice may read the conflict register's slot).  So
    after mutating the IR, re-run the exact check ``_attach_plans`` will
    enforce; a repair that fails it is undone by the caller and the
    register falls back to the dynamic index instead of dying at
    plan-attachment with "no restore path".
    """
    from .recovery import find_restore_source
    from ..ir.dominators import dominators

    mark_site: Optional[Site] = None
    for name, index, instr in function.instructions():
        if instr is new_mark:
            mark_site = (name, index)
            break
    if mark_site is None:
        return False
    live = liveness(function, ignore_ckpt_uses=True)
    dom = dominators(function)
    site_cache: Dict[int, Optional[Site]] = {}

    def site_of(info: CkptInfo) -> Optional[Site]:
        key = id(info.instr)
        if key not in site_cache:
            site_cache[key] = locate_instr(function, info.instr)
        return site_cache[key]

    for reg in live.live_at(function, mark_site[0], mark_site[1] + 1):
        if not isinstance(reg, PReg) or not 1 <= reg.index < NUM_REGS:
            continue
        if reg.index == conflict_reg:     # restored by its own boundary
            continue                      # checkpoint
        if find_restore_source(function, infos, reg.index, mark_site,
                               dom=dom, site_of=site_of) is None:
            return False
    return True


def _repair_is_free(function: Function, infos: List[CkptInfo], live_regs,
                    mark_site: Site, conflict_reg: int) -> bool:
    """Whether every non-conflict live input has a restore source already."""
    from .recovery import find_restore_source

    site_cache: Dict[int, Optional[Site]] = {}

    def site_of(info: CkptInfo) -> Optional[Site]:
        key = id(info.instr)
        if key not in site_cache:
            site_cache[key] = locate_instr(function, info.instr)
        return site_cache[key]

    for reg in live_regs:
        if not isinstance(reg, PReg) or not 1 <= reg.index < NUM_REGS:
            continue
        if reg.index == conflict_reg:
            continue
        if find_restore_source(function, infos, reg.index, mark_site,
                               site_of=site_of) is None:
            return False
    return True


def _boundary_instrs(infos: List[CkptInfo], inputs: List[int],
                     new_mark: Instr, site: Site):
    """Build [CKPT..., MARK] and register the checkpoints."""
    instrs: List[Instr] = []
    for offset, reg_index in enumerate(inputs):
        ck = make_ckpt(PReg(reg_index), reg_index=reg_index, color=None)
        instrs.append(ck)
        infos.append(
            CkptInfo(instr=ck, site=(site[0], site[1] + offset),
                     mark_site=(site[0], site[1] + len(inputs)),
                     reg_index=reg_index, mark_instr=new_mark)
        )
    instrs.append(new_mark)
    return instrs, len(inputs)


def _last_transition_edge(function: Function,
                          path: List[Site]) -> Optional[Tuple[Site, str]]:
    """The last block-crossing edge on ``path``: (branch site, target block)."""
    previous: Optional[Site] = None
    result: Optional[Tuple[Site, str]] = None
    for site in path:
        if previous is not None and previous[0] != site[0]:
            result = (previous, site[0])
        previous = site
    return result


def verify_coloring(function: Function, infos: Sequence[CkptInfo]) -> None:
    """Assert invariant 4: path-consecutive same-register checkpoints alternate.

    Registers on the per-register dynamic fallback are exempt — their slot
    index is maintained at runtime (committed at each MARK), which gives
    alternation by construction.
    """
    kept = [i for i in infos if i.kept]
    sites: Dict[Site, CkptInfo] = {}
    dynamic_regs: Set[int] = set()
    for info in kept:
        if info.instr.meta.get("per_reg"):
            dynamic_regs.add(info.reg_index)
            continue
        site = locate_instr(function, info.instr)
        if site is None:
            raise CompileError("checkpoint registry out of sync with IR")
        sites[site] = info
    by_reg: Dict[int, Set[Site]] = {}
    for site, info in sites.items():
        by_reg.setdefault(info.reg_index, set()).add(site)
    for reg_index, group_sites in by_reg.items():
        if reg_index in dynamic_regs:
            continue
        for site in group_sites:
            for neighbor_site, _ in _adjacent_ckpts(function, site, group_sites):
                a = sites[site].instr.color
                b = sites[neighbor_site].instr.color
                if a is None or b is None or a == b:
                    raise CompileError(
                        f"coloring invariant violated for R{reg_index} "
                        f"in {function.name}: {site} -> {neighbor_site}"
                    )
