"""Recovery-block (slice) construction for checkpoint pruning (paper §VI-E).

A checkpoint of register ``r`` at boundary ``B`` may be pruned when the
value ``r`` holds at ``B`` can be *reconstructed* after a crash.  The
builder backtracks register data dependences from the checkpoint's use of
``r`` (paper: data-dependence backtracking over the PDG) and terminates at

* a constant (``LI``),
* a load from read-only memory (lookup tables — never stored anywhere in
  the module),
* a *kept* checkpoint slot of some register whose committed slot provably
  still holds the needed value at recovery time.

The slot-termination soundness conditions mirror the paper's double-buffer
argument (§VI-D): the referenced checkpoint ``c2`` must (1) hold the same
unique reaching definition, (2) dominate ``B``'s boundary so it executed,
and (3) have no other kept checkpoint of the same register between it and
``B`` on any path — then at most one later same-register checkpoint can run
before a crash, and 2-coloring guarantees it uses the other buffer.

Backtracking fails (the checkpoint is kept) on: multiple reaching
definitions (control-dependence integrity — the slice's control flow could
diverge from the original), cyclic dependences (loop-carried values),
mutable memory, ``sense()`` inputs, or slices above the length cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..isa.instructions import BINOPS, Instr, Opcode, UNOPS
from ..isa.operands import Imm, PReg, Sym
from ..ir.cfg import Function
from ..ir.dominators import dominators
from ..ir.reaching import ReachingResult

Site = Tuple[str, int]

#: Default cap on recovery-block length (the paper reports ~6 instructions).
MAX_SLICE_LEN = 8


@dataclass
class CkptInfo:
    """One checkpoint store and its boundary association."""

    instr: Instr                  # the CKPT instruction object (mutated later)
    site: Site                    # position at pruning time
    mark_site: Site               # position of the owning MARK (pruning time)
    reg_index: int
    #: The owning MARK instruction object — positions shift across passes,
    #: object identity does not.
    mark_instr: Optional[Instr] = None
    kept: bool = True
    #: Unique reaching definition of the register at this site (or None).
    unique_def: Optional[Site] = None
    #: Checkpoints whose slices reference this one (must stay kept).
    referenced_by: List["CkptInfo"] = field(default_factory=list)
    #: Abstract slice elements when pruned.
    slice_elements: Optional[List["SliceElement"]] = None


@dataclass(frozen=True)
class InstrElement:
    """A recomputation step: re-execute a copy of an original instruction.

    The copy is captured eagerly because checkpoint removal shifts
    instruction indices after pruning.
    """

    instr: Instr


@dataclass(frozen=True)
class SlotElement:
    """A termination step: load a register from another checkpoint's slot."""

    source_index: int             # index of the referenced CkptInfo
    reg: PReg                     # destination register (as the slice sees it)


SliceElement = Union[InstrElement, SlotElement]


class SliceBuilder:
    """Builds recovery slices for one function's checkpoints."""

    def __init__(self, function: Function, reaching: ReachingResult,
                 readonly_symbols: FrozenSet[str],
                 checkpoints: Sequence[CkptInfo],
                 max_len: int = MAX_SLICE_LEN) -> None:
        self._fn = function
        self._reaching = reaching
        self._dom = dominators(function)
        self._readonly = readonly_symbols
        self._ckpts = list(checkpoints)
        self._max_len = max_len
        self._def_site_cache: Dict[int, Set[Site]] = {}
        self._alias_site_cache: Dict[Tuple, Set[Site]] = {}
        #: kept checkpoints per register index, for slot termination.
        self._by_reg: Dict[int, List[int]] = {}
        for i, info in enumerate(self._ckpts):
            self._by_reg.setdefault(info.reg_index, []).append(i)

    # ------------------------------------------------------------------
    def try_build(self, target: CkptInfo) -> Optional[List[SliceElement]]:
        """Attempt a slice for ``target``; returns elements or ``None``."""
        state = _BuildState()
        ok = self._resolve_use(
            target.site, PReg(target.reg_index), target, state
        )
        if not ok or len(state.elements) > self._max_len:
            return None
        if not state.elements:
            return None
        return state.elements

    # ------------------------------------------------------------------
    def _resolve_use(self, use_site: Site, reg: PReg, target: CkptInfo,
                     state: "_BuildState") -> bool:
        token = self._resolution_token(use_site, reg, target)
        bound = state.reg_binding.get(reg)
        if bound is not None:
            return bound == token  # one value per register name per slice
        if token is None:
            return False
        kind, payload = token
        if kind == "slot":
            state.reg_binding[reg] = token
            state.elements.append(SlotElement(source_index=payload, reg=reg))
            state.slot_sources.append(payload)
            return True
        def_site = payload
        if def_site in state.on_stack:
            return False  # loop-carried value
        instr = self._fn.blocks[def_site[0]].instrs[def_site[1]]
        state.on_stack.add(def_site)
        try:
            for used in instr.uses():
                if not self._resolve_use(def_site, used, target, state):
                    return False
        finally:
            state.on_stack.discard(def_site)
        state.reg_binding[reg] = token
        state.elements.append(InstrElement(instr=instr.copy()))
        return len(state.elements) <= self._max_len

    def _resolution_token(self, use_site: Site, reg: PReg,
                          target: CkptInfo) -> Optional[Tuple[str, object]]:
        """How to rebuild the value ``reg`` carried into ``use_site``."""
        slot = self._find_slot_source(reg, use_site, target)
        if slot is not None:
            return ("slot", slot)
        defs = self._reaching.defs_reaching_use(use_site, reg)
        if len(defs) != 1:
            return None  # control-dependence integrity: ambiguous origin
        def_site = next(iter(defs))
        instr = self._fn.blocks[def_site[0]].instrs[def_site[1]]
        if not self._is_recomputable(instr, def_site, target):
            return None
        return ("def", def_site)

    def _is_recomputable(self, instr: Instr, def_site: Site,
                         target: CkptInfo) -> bool:
        if instr.op is Opcode.LI or instr.op in BINOPS or instr.op in UNOPS:
            return True
        if instr.op is Opcode.LD:
            if instr.sym.name in self._readonly:
                return True
            return self._load_stable(instr, def_site, target)
        return False

    def _load_stable(self, load: Instr, def_site: Site,
                     target: CkptInfo) -> bool:
        """Whether re-executing this load at recovery reads the same value.

        True when no may-aliasing store (or call, which may write anything)
        lies (a) on any path from the load to the recovering boundary, or
        (b) inside the recovering region itself (reachable from the
        boundary without crossing another MARK) — so the loaded word cannot
        have changed between the original load and the crash.  This is what
        lets recovery blocks reload function arguments, call results and
        other once-written locations instead of checkpointing them.
        """
        aliasing = self._aliasing_sites(load)
        if not aliasing:
            return True
        if _path_through_exists(self._fn, def_site, target.mark_site,
                                aliasing):
            return False
        if _markfree_reaches(self._fn, target.mark_site, aliasing):
            return False
        return True

    def _aliasing_sites(self, load: Instr) -> Set[Site]:
        """Sites of stores (and calls) that may write this load's word."""
        from ..ir.alias import clobbers_all_memory, may_alias, mem_ref

        load_ref = mem_ref(load)
        key = (load_ref.symbol, load_ref.offset)
        cached = self._alias_site_cache.get(key)
        if cached is not None:
            return cached
        sites: Set[Site] = set()
        for name, i, instr in self._fn.instructions():
            if clobbers_all_memory(instr):
                sites.add((name, i))
                continue
            if instr.op is not Opcode.ST:
                continue
            store_ref = mem_ref(instr)
            if store_ref is not None and may_alias(load_ref, store_ref):
                sites.add((name, i))
        self._alias_site_cache[key] = sites
        return sites

    def _find_slot_source(self, reg: PReg, use_site: Site,
                          target: CkptInfo) -> Optional[int]:
        """A kept checkpoint slot provably holding ``reg``'s value at ``use_site``.

        Value equivalence: the checkpoint ``c2`` and the use are def-free
        connected (no definition of the register on any path between them)
        with one dominating the other, so the last execution of ``c2``
        observed exactly the value the use consumed.  Slot integrity: ``c2``
        dominates the recovering boundary (it executed) and no other kept
        checkpoint of the register lies between it and the boundary (so at
        most one later same-register checkpoint — of the other color — can
        run before the crash).
        """
        def_sites = self._def_sites(reg)
        for index in self._by_reg.get(reg.index, ()):
            info = self._ckpts[index]
            if info is target or not info.kept:
                continue
            if not self._site_dominates(info.site, target.mark_site):
                continue
            if self._site_dominates(info.site, use_site):
                if _path_through_exists(self._fn, info.site, use_site,
                                        def_sites):
                    continue
            elif self._site_dominates(use_site, info.site):
                if _path_through_exists(self._fn, use_site, info.site,
                                        def_sites):
                    continue
            else:
                continue
            if self._kept_ckpt_between(info, target.mark_site):
                continue
            return index
        return None

    def _def_sites(self, reg: PReg) -> "Set[Site]":
        cached = self._def_site_cache.get(reg.index)
        if cached is None:
            cached = {
                (name, i)
                for name, i, instr in self._fn.instructions()
                if any(isinstance(d, PReg) and d.index == reg.index
                       for d in instr.defs())
            }
            self._def_site_cache[reg.index] = cached
        return cached

    def _site_dominates(self, a: Site, b: Site) -> bool:
        if a[0] == b[0]:
            return a[1] < b[1]
        return a[0] in self._dom.get(b[0], set())

    def _kept_ckpt_between(self, source: CkptInfo, mark_site: Site) -> bool:
        """Any kept same-register checkpoint strictly between source and B?"""
        others = {
            self._ckpts[i].site
            for i in self._by_reg.get(source.reg_index, ())
            if self._ckpts[i].kept and self._ckpts[i] is not source
        }
        if not others:
            return False
        return _path_through_exists(self._fn, source.site, mark_site, others)


@dataclass
class _BuildState:
    elements: List[SliceElement] = field(default_factory=list)
    reg_binding: Dict[PReg, Site] = field(default_factory=dict)
    on_stack: Set[Site] = field(default_factory=set)
    slot_sources: List[int] = field(default_factory=list)


# ----------------------------------------------------------------------
# Path utilities (instruction-point granularity).
# ----------------------------------------------------------------------
def _next_sites(function: Function, site: Site) -> List[Site]:
    block, index = site
    instrs = function.blocks[block].instrs
    instr = instrs[index]
    if instr.op is Opcode.JMP:
        return [(instr.target.name, 0)]
    if instr.op is Opcode.BNZ:
        return [(instr.target.name, 0), (block, index + 1)]
    if instr.op in (Opcode.RET, Opcode.HALT):
        return []
    if index + 1 < len(instrs):
        return [(block, index + 1)]
    return []


def _markfree_reaches(function: Function, src: Site,
                      targets: Set[Site]) -> bool:
    """Whether any ``targets`` site is reachable from ``src`` without
    crossing a MARK (i.e. lies inside the region starting at ``src``)."""
    seen: Set[Site] = set()
    stack = _next_sites(function, src)
    while stack:
        site = stack.pop()
        if site in seen:
            continue
        seen.add(site)
        if site in targets:
            return True
        instr = function.blocks[site[0]].instrs[site[1]]
        if instr.op is Opcode.MARK:
            continue
        stack.extend(_next_sites(function, site))
    return False


def _path_through_exists(function: Function, src: Site, dst: Site,
                         through: Set[Site]) -> bool:
    """Is there a path src -> dst visiting a ``through`` site?

    Paths that revisit ``src`` are not followed: the analysis always asks
    about the segment after the *last* execution of ``src``, so anything
    before a revisit is irrelevant (e.g. a loop-carried definition that
    precedes the next execution of a loop-header checkpoint).
    """
    seen: Set[Tuple[Site, bool]] = set()
    stack = [(s, False) for s in _next_sites(function, src)]
    while stack:
        site, crossed = stack.pop()
        if site == src:
            continue  # a revisit resets the segment of interest
        if (site, crossed) in seen:
            continue
        seen.add((site, crossed))
        if site == dst and crossed:
            return True
        here = crossed or site in through
        for nxt in _next_sites(function, site):
            stack.append((nxt, here))
    return False


def find_dominating_slot(function: Function, infos: Sequence[CkptInfo],
                         reg_index: int, mark_site: Site,
                         dom=None, site_of=None) -> Optional[int]:
    """A kept checkpoint whose slot restores ``reg_index`` at ``mark_site``.

    Conditions (same soundness argument as slice slot termination): the
    checkpoint dominates the boundary, no other kept checkpoint of the
    register lies between them (clobber protection via 2-coloring), and no
    definition of the register lies between them (value equality).  Used
    both when planning restores for boundaries that lack an own checkpoint
    of a live register and when deciding the minimal checkpoint set of a
    coloring-repair boundary.
    """
    from ..ir.dominators import dominators as _dominators

    if dom is None:
        dom = _dominators(function)

    def current_site(info: CkptInfo) -> Optional[Site]:
        return site_of(info) if site_of is not None else info.site

    def_sites = {
        (name, i)
        for name, i, instr in function.instructions()
        if any(isinstance(d, PReg) and d.index == reg_index
               for d in instr.defs())
    }
    kept = [
        (index, current_site(info))
        for index, info in enumerate(infos)
        if info.kept and info.reg_index == reg_index
    ]
    kept_sites = {site for _, site in kept if site is not None}
    for index, c2 in kept:
        if c2 is None or c2 == mark_site:
            continue
        if c2[0] == mark_site[0]:
            if c2[1] >= mark_site[1]:
                continue
        elif c2[0] not in dom.get(mark_site[0], set()):
            continue
        others = kept_sites - {c2}
        if others and _path_through_exists(function, c2, mark_site, others):
            continue
        if def_sites and _path_through_exists(function, c2, mark_site,
                                              def_sites):
            continue
        return index
    return None


def find_restore_source(function: Function, infos: Sequence[CkptInfo],
                        reg_index: int, mark_site: Site,
                        dom=None, site_of=None) -> Optional[Tuple[str, int]]:
    """How a boundary lacking an own checkpoint of ``reg_index`` restores it.

    Returns ``("slot", i)`` when a dominating kept checkpoint works (see
    :func:`find_dominating_slot`), or ``("slice", i)`` when a pruned
    checkpoint's recovery block can be reused: its boundary dominates this
    one, the register is not redefined in between, and every slot the slice
    reads remains clobber-protected up to this boundary.  ``None`` means
    the boundary must carry its own checkpoint.
    """
    from ..ir.dominators import dominators as _dominators

    if dom is None:
        dom = _dominators(function)
    slot = find_dominating_slot(function, infos, reg_index, mark_site,
                                dom=dom, site_of=site_of)
    if slot is not None:
        return ("slot", slot)

    def current_site(info: CkptInfo) -> Optional[Site]:
        return site_of(info) if site_of is not None else info.site

    def dominates(a: Site, b: Site) -> bool:
        if a == b:
            return False
        if a[0] == b[0]:
            return a[1] < b[1]
        return a[0] in dom.get(b[0], set())

    def_sites = {
        (name, i)
        for name, i, instr in function.instructions()
        if any(isinstance(d, PReg) and d.index == reg_index
               for d in instr.defs())
    }
    mark_cache: Dict[int, Optional[Site]] = {}

    def mark_pos(info: CkptInfo) -> Optional[Site]:
        key = id(info.mark_instr)
        if key not in mark_cache:
            found = None
            for name, i, instr in function.instructions():
                if instr is info.mark_instr:
                    found = (name, i)
                    break
            mark_cache[key] = found
        return mark_cache[key]

    for index, info in enumerate(infos):
        if info.kept or info.reg_index != reg_index:
            continue
        if not info.slice_elements:
            continue
        prev_mark = mark_pos(info)
        if prev_mark is None or not dominates(prev_mark, mark_site):
            continue
        if def_sites and _path_through_exists(function, prev_mark, mark_site,
                                              def_sites):
            continue
        if all(
            _slot_source_valid(function, infos, element, mark_site,
                               current_site)
            for element in info.slice_elements
            if isinstance(element, SlotElement)
        ):
            return ("slice", index)
    return None


def _slot_source_valid(function: Function, infos: Sequence[CkptInfo],
                       element: "SlotElement", mark_site: Site,
                       current_site) -> bool:
    source = infos[element.source_index]
    if not source.kept:
        return False
    c2 = current_site(source)
    if c2 is None:
        return False
    others = {
        current_site(other)
        for other in infos
        if other.kept and other is not source
        and other.reg_index == source.reg_index
        and current_site(other) is not None
    }
    return not (others and _path_through_exists(function, c2, mark_site,
                                                others))


def materialize_slice(ckpts: Sequence[CkptInfo],
                      elements: List[SliceElement]) -> List[Instr]:
    """Turn abstract slice elements into executable instructions.

    Must run after coloring, when every referenced checkpoint has a concrete
    buffer color.  Slot elements become loads from ``__ckpt<color>``.
    """
    from .plans import slot_symbol

    out: List[Instr] = []
    for element in elements:
        if isinstance(element, SlotElement):
            info = ckpts[element.source_index]
            color = info.instr.color
            sym = slot_symbol(color if color is not None else 0)
            load = Instr(Opcode.LD, dst=element.reg, sym=Sym(sym),
                         off=Imm(info.reg_index))
            if color is None:
                if info.instr.meta.get("per_reg"):
                    load.meta["per_reg_slot"] = True
                else:
                    load.meta["dynamic_slot"] = True
            out.append(load)
        else:
            out.append(element.instr.copy())
    return out
