"""Restore plans: how each region input register is rebuilt after a crash.

Under rollback recovery, re-entering region ``Rg`` requires every *input*
register (live at the region entry) to be reconstructed.  Each input gets
one of two actions:

* :class:`SlotLoad` — read the register's own committed checkpoint slot
  (the unpruned case, one NVM load).
* :class:`SliceExec` — execute a recovery block (paper §VI-E): a closed
  straight-line slice whose sources are constants, read-only memory and
  checkpoint slots, interpreted by the runtime in an isolated environment.

The compiler attaches a :class:`RegionPlan` to every ``MARK`` instruction's
``meta['plan']``; the runtime builds its lookup table from them (the paper's
~130-instruction lookup table, §VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from ..isa.instructions import CYCLES, Instr, Opcode


def slot_symbol(color: int) -> str:
    """Checkpoint-storage symbol for a buffer color."""
    return f"__ckpt{color}"


@dataclass(frozen=True)
class SlotLoad:
    """Restore a register from checkpoint slot ``(reg_index, color)``.

    ``color=None`` with ``per_reg=False`` is Ratchet's global dynamic
    convention (read the buffer the last committed MARK selected);
    ``per_reg=True`` reads the register's own committed index word
    (``__rcolor``) first — the per-register dynamic fallback.
    """

    reg_index: int
    color: Union[int, None]
    per_reg: bool = False

    @property
    def cycles(self) -> int:
        return CYCLES[Opcode.LD]


@dataclass
class SliceExec:
    """Restore a register by executing a recovery block.

    ``instrs`` is a closed slice: every register an instruction reads is
    written by an earlier slice instruction (slot loads appear as ``LD``
    from ``__ckpt0``/``__ckpt1``).  ``target`` is the architectural register
    the final instruction's destination value is written to.
    """

    target: int
    instrs: List[Instr] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return sum(instr.cycles for instr in self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)


RestoreAction = Union[SlotLoad, SliceExec]


@dataclass
class RegionPlan:
    """Restore actions for one region, keyed by architectural register."""

    region: int
    restores: Dict[int, RestoreAction] = field(default_factory=dict)

    @property
    def recovery_cycles(self) -> int:
        """Worst-case cycles to execute every restore action."""
        return sum(action.cycles for action in self.restores.values())

    @property
    def slice_count(self) -> int:
        return sum(1 for a in self.restores.values() if isinstance(a, SliceExec))

    @property
    def slice_instr_count(self) -> int:
        return sum(len(a) for a in self.restores.values()
                   if isinstance(a, SliceExec))
