"""Live-variable analysis over virtual (or physical) registers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..isa.instructions import Instr, Opcode
from .cfg import Function


@dataclass
class LivenessResult:
    """Block-level live-in/live-out register sets."""

    live_in: Dict[str, Set[object]]
    live_out: Dict[str, Set[object]]
    ignore_ckpt_uses: bool = False

    def live_at(self, function: Function, block: str, index: int) -> Set[object]:
        """Registers live immediately *before* instruction ``index``."""
        live = set(self.live_out[block])
        instrs = function.blocks[block].instrs
        for i in range(len(instrs) - 1, index - 1, -1):
            live -= set(instrs[i].defs())
            if not (self.ignore_ckpt_uses and instrs[i].op is Opcode.CKPT):
                live |= set(instrs[i].uses())
        return live


def block_use_def(instrs: List[Instr],
                  ignore_ckpt_uses: bool = False) -> Tuple[Set[object], Set[object]]:
    """(upward-exposed uses, defined registers) of a straight-line sequence."""
    uses: Set[object] = set()
    defs: Set[object] = set()
    for instr in instrs:
        if ignore_ckpt_uses and instr.op is Opcode.CKPT:
            continue
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        defs.update(instr.defs())
    return uses, defs


def liveness(function: Function,
             ignore_ckpt_uses: bool = False) -> LivenessResult:
    """Compute block-level liveness with the standard backward fixpoint.

    ``ignore_ckpt_uses`` treats checkpoint stores as *not* reading their
    register: a region's input set is defined by the program's real uses —
    a register whose only future reader is another checkpoint carries no
    recoverable meaning, and counting it would create phantom inputs (e.g.
    spill-scratch registers kept "live" by their own checkpoints).
    """
    order = function.reverse_postorder()
    succs = function.successors()
    use: Dict[str, Set[object]] = {}
    defs: Dict[str, Set[object]] = {}
    for name in order:
        use[name], defs[name] = block_use_def(
            function.blocks[name].instrs, ignore_ckpt_uses=ignore_ckpt_uses
        )
    live_in: Dict[str, Set[object]] = {name: set() for name in order}
    live_out: Dict[str, Set[object]] = {name: set() for name in order}
    changed = True
    while changed:
        changed = False
        for name in reversed(order):
            out: Set[object] = set()
            for succ in succs[name]:
                out |= live_in.get(succ, set())
            new_in = use[name] | (out - defs[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return LivenessResult(live_in=live_in, live_out=live_out,
                          ignore_ckpt_uses=ignore_ckpt_uses)


@dataclass
class LinkedLiveness:
    """Per-pc liveness of the architectural registers of a linked program.

    ``live_in[pc]`` / ``live_out[pc]`` are bitmasks over register indices:
    bit ``r`` set means ``Rr`` is live immediately before / after the
    instruction at absolute index ``pc``.  Computed interprocedurally (see
    :func:`linked_liveness`), so a register is dead at ``pc`` only when *no*
    continuation of the whole program — including through calls and returns
    — reads it before redefining it.
    """

    live_in: List[int]
    live_out: List[int]

    def is_live_before(self, pc: int, reg: int) -> bool:
        """Is architectural register ``reg`` live just before ``pc``?"""
        return bool(self.live_in[pc] >> reg & 1)

    def live_before(self, pc: int) -> FrozenSet[int]:
        """Indices of the registers live immediately before ``pc``."""
        mask = self.live_in[pc]
        return frozenset(r for r in range(mask.bit_length()) if mask >> r & 1)


def linked_liveness(program, ignore_ckpt_uses: bool = False) -> LinkedLiveness:
    """Interprocedural per-instruction liveness of a ``LinkedProgram``.

    A backward dataflow fixpoint over the flat machine-level instruction
    stream, context-insensitively threaded through calls:

    * ``BNZ``  flows from its target and the fallthrough slot;
    * ``JMP``  flows from its target;
    * ``CALL`` flows from the callee's entry (liveness after the call
      reaches the call site through the callee's ``RET`` edges — the
      machine's calling convention saves no registers, so a register the
      callee clobbers on every path is genuinely dead across the call);
    * ``RET``  flows from the return point (``call_pc + 1``) of *every*
      call site of its owning function — context-insensitive, hence an
      over-approximation that can only report extra liveness, never less;
    * ``HALT`` is a sink (the machine reads no registers after halting).

    ``ignore_ckpt_uses`` mirrors :func:`liveness`; the default (``False``)
    conservatively counts a ``CKPT`` as reading its source register, which
    is what fault-space pruning wants: a flip that lands in checkpoint
    storage stays un-pruned even though stable-power classification could
    never observe it.

    The result over-approximates dynamic liveness on every real execution
    path, so "dead at ``pc``" is sound evidence that a register bit-flip
    delivered just before ``pc`` cannot change any observable behaviour.
    """
    instrs = program.instrs
    n = len(instrs)

    # Return points per function: every slot following a CALL to it.
    return_points: Dict[str, List[int]] = {name: [] for name in program.func_entry}
    for pc, instr in enumerate(instrs):
        if instr.op is Opcode.CALL and pc + 1 < n:
            return_points[instr.callee].append(pc + 1)

    def successors(pc: int) -> List[int]:
        instr = instrs[pc]
        if instr.op is Opcode.HALT:
            return []
        if instr.op is Opcode.JMP or instr.op is Opcode.CALL:
            return [program.targets[pc]]
        if instr.op is Opcode.BNZ:
            succ = [program.targets[pc]]
            if pc + 1 < n:
                succ.append(pc + 1)
            return succ
        if instr.op is Opcode.RET:
            return list(return_points[program.owner[pc]])
        return [pc + 1] if pc + 1 < n else []

    use_mask = [0] * n
    def_mask = [0] * n
    preds: List[List[int]] = [[] for _ in range(n)]
    for pc, instr in enumerate(instrs):
        if not (ignore_ckpt_uses and instr.op is Opcode.CKPT):
            for reg in instr.uses():
                use_mask[pc] |= 1 << reg.index
        for reg in instr.defs():
            def_mask[pc] |= 1 << reg.index
        for succ in successors(pc):
            preds[succ].append(pc)

    live_in = [0] * n
    live_out = [0] * n
    worklist = list(range(n - 1, -1, -1))
    queued = [True] * n
    while worklist:
        pc = worklist.pop()
        queued[pc] = False
        out = 0
        for succ in successors(pc):
            out |= live_in[succ]
        new_in = use_mask[pc] | (out & ~def_mask[pc])
        live_out[pc] = out
        if new_in != live_in[pc]:
            live_in[pc] = new_in
            for pred in preds[pc]:
                if not queued[pred]:
                    queued[pred] = True
                    worklist.append(pred)
    return LinkedLiveness(live_in=live_in, live_out=live_out)


def live_intervals(function: Function) -> Dict[object, Tuple[int, int]]:
    """Live intervals over a linearization of the function.

    Instructions are numbered in block order; each register maps to the
    ``(first, last)`` instruction numbers at which it is live.  This is the
    input to the linear-scan register allocator.  The intervals are
    conservative (they span from first mention to last liveness point,
    including loop-carried liveness via block live-out extension).
    """
    result = liveness(function)
    number: Dict[Tuple[str, int], int] = {}
    counter = 0
    block_span: Dict[str, Tuple[int, int]] = {}
    for name in function.block_order:
        start = counter
        for i in range(len(function.blocks[name].instrs)):
            number[(name, i)] = counter
            counter += 1
        block_span[name] = (start, max(start, counter - 1))

    intervals: Dict[object, Tuple[int, int]] = {}

    def extend(reg: object, point: int) -> None:
        lo, hi = intervals.get(reg, (point, point))
        intervals[reg] = (min(lo, point), max(hi, point))

    for name in function.block_order:
        instrs = function.blocks[name].instrs
        for i, instr in enumerate(instrs):
            for reg in instr.defs() + instr.uses():
                extend(reg, number[(name, i)])
        lo_point, hi_point = block_span[name]
        # A register live across this block must cover the whole block.
        for reg in result.live_out[name] & result.live_in.get(name, set()):
            extend(reg, lo_point)
            extend(reg, hi_point)
        for reg in result.live_out[name]:
            extend(reg, hi_point)
    return intervals
