"""Live-variable analysis over virtual (or physical) registers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..isa.instructions import Instr, Opcode
from .cfg import Function


@dataclass
class LivenessResult:
    """Block-level live-in/live-out register sets."""

    live_in: Dict[str, Set[object]]
    live_out: Dict[str, Set[object]]
    ignore_ckpt_uses: bool = False

    def live_at(self, function: Function, block: str, index: int) -> Set[object]:
        """Registers live immediately *before* instruction ``index``."""
        live = set(self.live_out[block])
        instrs = function.blocks[block].instrs
        for i in range(len(instrs) - 1, index - 1, -1):
            live -= set(instrs[i].defs())
            if not (self.ignore_ckpt_uses and instrs[i].op is Opcode.CKPT):
                live |= set(instrs[i].uses())
        return live


def block_use_def(instrs: List[Instr],
                  ignore_ckpt_uses: bool = False) -> Tuple[Set[object], Set[object]]:
    """(upward-exposed uses, defined registers) of a straight-line sequence."""
    uses: Set[object] = set()
    defs: Set[object] = set()
    for instr in instrs:
        if ignore_ckpt_uses and instr.op is Opcode.CKPT:
            continue
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        defs.update(instr.defs())
    return uses, defs


def liveness(function: Function,
             ignore_ckpt_uses: bool = False) -> LivenessResult:
    """Compute block-level liveness with the standard backward fixpoint.

    ``ignore_ckpt_uses`` treats checkpoint stores as *not* reading their
    register: a region's input set is defined by the program's real uses —
    a register whose only future reader is another checkpoint carries no
    recoverable meaning, and counting it would create phantom inputs (e.g.
    spill-scratch registers kept "live" by their own checkpoints).
    """
    order = function.reverse_postorder()
    succs = function.successors()
    use: Dict[str, Set[object]] = {}
    defs: Dict[str, Set[object]] = {}
    for name in order:
        use[name], defs[name] = block_use_def(
            function.blocks[name].instrs, ignore_ckpt_uses=ignore_ckpt_uses
        )
    live_in: Dict[str, Set[object]] = {name: set() for name in order}
    live_out: Dict[str, Set[object]] = {name: set() for name in order}
    changed = True
    while changed:
        changed = False
        for name in reversed(order):
            out: Set[object] = set()
            for succ in succs[name]:
                out |= live_in.get(succ, set())
            new_in = use[name] | (out - defs[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return LivenessResult(live_in=live_in, live_out=live_out,
                          ignore_ckpt_uses=ignore_ckpt_uses)


def live_intervals(function: Function) -> Dict[object, Tuple[int, int]]:
    """Live intervals over a linearization of the function.

    Instructions are numbered in block order; each register maps to the
    ``(first, last)`` instruction numbers at which it is live.  This is the
    input to the linear-scan register allocator.  The intervals are
    conservative (they span from first mention to last liveness point,
    including loop-carried liveness via block live-out extension).
    """
    result = liveness(function)
    number: Dict[Tuple[str, int], int] = {}
    counter = 0
    block_span: Dict[str, Tuple[int, int]] = {}
    for name in function.block_order:
        start = counter
        for i in range(len(function.blocks[name].instrs)):
            number[(name, i)] = counter
            counter += 1
        block_span[name] = (start, max(start, counter - 1))

    intervals: Dict[object, Tuple[int, int]] = {}

    def extend(reg: object, point: int) -> None:
        lo, hi = intervals.get(reg, (point, point))
        intervals[reg] = (min(lo, point), max(hi, point))

    for name in function.block_order:
        instrs = function.blocks[name].instrs
        for i, instr in enumerate(instrs):
            for reg in instr.defs() + instr.uses():
                extend(reg, number[(name, i)])
        lo_point, hi_point = block_span[name]
        # A register live across this block must cover the whole block.
        for reg in result.live_out[name] & result.live_in.get(name, set()):
            extend(reg, lo_point)
            extend(reg, hi_point)
        for reg in result.live_out[name]:
            extend(reg, hi_point)
    return intervals
