"""Alias analysis over symbol-based memory references.

MiniC has no address-of operator, so every memory access names its base
symbol directly and two accesses can only alias when their bases match.
Within one symbol, constant offsets refine the answer; any dynamic offset is
treated as covering the whole symbol (paper §VI-B: "GECKO employs alias
analysis to identify all possible memory anti-dependencies" — our analysis
is conservative in exactly the same may-alias direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.instructions import Instr, Opcode
from ..isa.operands import Imm


@dataclass(frozen=True)
class MemRef:
    """A memory reference: base symbol plus (possibly unknown) offset."""

    symbol: str
    #: Constant word offset, or ``None`` when the offset is a register.
    offset: Optional[int]
    is_store: bool

    @property
    def is_exact(self) -> bool:
        return self.offset is not None


def mem_ref(instr: Instr) -> Optional[MemRef]:
    """Extract the memory reference of a ``LD``/``ST``, else ``None``.

    ``CALL`` deliberately returns ``None`` here; callers must treat calls as
    touching all of memory (see :func:`clobbers_all_memory`).
    """
    if instr.op is Opcode.LD:
        off = instr.off.value if isinstance(instr.off, Imm) else None
        return MemRef(instr.sym.name, off, is_store=False)
    if instr.op is Opcode.ST:
        off = instr.off.value if isinstance(instr.off, Imm) else None
        return MemRef(instr.sym.name, off, is_store=True)
    if instr.op is Opcode.CKPT:
        # Checkpoint stores write the dedicated double-buffer area, which no
        # program access can name, so they never alias program memory.
        return None
    return None


def clobbers_all_memory(instr: Instr) -> bool:
    """Whether the instruction must be treated as reading+writing all memory."""
    return instr.op is Opcode.CALL


def may_alias(a: MemRef, b: MemRef) -> bool:
    """Whether two references may touch the same word."""
    if a.symbol != b.symbol:
        return False
    if a.offset is not None and b.offset is not None:
        return a.offset == b.offset
    return True


def must_alias(a: MemRef, b: MemRef) -> bool:
    """Whether two references certainly touch the same word."""
    return (
        a.symbol == b.symbol
        and a.offset is not None
        and a.offset == b.offset
    )
