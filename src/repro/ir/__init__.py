"""Mid-level IR and compiler analyses (CFG, dataflow, alias, PDG, WCET)."""

from .alias import MemRef, clobbers_all_memory, may_alias, mem_ref, must_alias
from .cfg import BasicBlock, Function, Module, remove_unreachable, split_block
from .dependence import AntiDep, ProgramDependenceGraph, memory_antideps
from .dominators import (
    control_dependence,
    dominators,
    immediate_dominators,
    postdominators,
)
from .liveness import (
    LinkedLiveness,
    LivenessResult,
    linked_liveness,
    live_intervals,
    liveness,
)
from .loops import Loop, find_loops, infer_loop_bounds, loop_of_block
from .reaching import ReachingResult, reaching_definitions
from .wcet import (
    DEFAULT_LOOP_BOUND,
    UNBOUNDED,
    block_cycles,
    function_wcet,
    max_region_gap,
    module_wcet,
)

__all__ = [
    "AntiDep", "BasicBlock", "DEFAULT_LOOP_BOUND", "Function",
    "LinkedLiveness", "LivenessResult", "Loop", "MemRef", "Module",
    "ProgramDependenceGraph",
    "ReachingResult", "UNBOUNDED", "block_cycles", "clobbers_all_memory",
    "control_dependence", "dominators", "find_loops", "function_wcet",
    "immediate_dominators", "infer_loop_bounds", "live_intervals",
    "linked_liveness", "liveness", "loop_of_block",
    "max_region_gap", "may_alias", "mem_ref", "memory_antideps",
    "module_wcet", "must_alias", "postdominators", "reaching_definitions",
    "remove_unreachable", "split_block",
]
