"""Mid-level IR: modules, functions, basic blocks, and the CFG.

The IR is a non-SSA, three-address register-transfer form over virtual
registers (:class:`~repro.isa.operands.VReg`).  Control flow is fully
explicit: every basic block ends with one of

* ``JMP label``                     — one successor,
* ``BNZ cond, label`` + ``JMP label`` — two successors (taken, fallthrough),
* ``RET`` / ``HALT``               — no successors.

There is deliberately no implicit fallthrough at the IR level; the
flattening step in :mod:`repro.compiler.codegen` reintroduces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import CompileError
from ..isa.instructions import Instr, Opcode
from ..isa.operands import Label, VReg


@dataclass
class BasicBlock:
    """A straight-line instruction sequence with a single entry and exit."""

    name: str
    instrs: List[Instr] = field(default_factory=list)
    #: Free-form annotations (e.g. ``loop_header``, ``loop_bound``).
    meta: Dict[str, object] = field(default_factory=dict)

    def successors(self) -> List[str]:
        """Successor block names, taken-branch first."""
        if not self.instrs:
            return []
        last = self.instrs[-1]
        if last.op is Opcode.JMP:
            succs = []
            if len(self.instrs) >= 2 and self.instrs[-2].op is Opcode.BNZ:
                succs.append(self.instrs[-2].target.name)
            succs.append(last.target.name)
            return succs
        if last.op in (Opcode.RET, Opcode.HALT):
            return []
        raise CompileError(f"block {self.name} lacks a terminator (ends {last})")

    @property
    def terminated(self) -> bool:
        """Whether the block already ends in a valid terminator."""
        if not self.instrs:
            return False
        return self.instrs[-1].op in (Opcode.JMP, Opcode.RET, Opcode.HALT)

    def body_range(self) -> range:
        """Indices of non-terminator instructions."""
        end = len(self.instrs)
        if end and self.instrs[-1].op in (Opcode.JMP, Opcode.RET, Opcode.HALT):
            end -= 1
        if end and self.instrs[end - 1].op is Opcode.BNZ:
            end -= 1
        return range(end)

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines += [f"    {instr}" for instr in self.instrs]
        return "\n".join(lines)


class Function:
    """An IR function: named basic blocks plus a virtual-register allocator."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: Dict[str, BasicBlock] = {}
        self.block_order: List[str] = []
        self.entry: Optional[str] = None
        self._next_vreg = 0
        self._next_label = 0
        #: Size of the static frame (local arrays + spill slots), in words.
        self.frame_size = 0
        #: Formal parameter vregs, in declaration order.
        self.params: List[VReg] = []
        #: Vreg receiving the return value (also used at RET sites).
        self.ret_vreg: Optional[VReg] = None

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def new_vreg(self) -> VReg:
        """Allocate a fresh virtual register."""
        self._next_vreg += 1
        return VReg(self._next_vreg - 1)

    def new_label(self, hint: str = "bb") -> str:
        """Allocate a fresh, unique block name."""
        while True:
            name = f"{hint}{self._next_label}"
            self._next_label += 1
            if name not in self.blocks:
                return name

    def add_block(self, name: Optional[str] = None, hint: str = "bb") -> BasicBlock:
        """Create and register a new (initially empty) block."""
        if name is None:
            name = self.new_label(hint)
        if name in self.blocks:
            raise CompileError(f"duplicate block {name} in {self.name}")
        block = BasicBlock(name)
        self.blocks[name] = block
        self.block_order.append(name)
        if self.entry is None:
            self.entry = name
        return block

    def alloc_frame(self, words: int) -> int:
        """Reserve ``words`` in the static frame; return the base offset."""
        offset = self.frame_size
        self.frame_size += words
        return offset

    @property
    def frame_symbol(self) -> str:
        return f"__frame_{self.name}"

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def block(self, name: str) -> BasicBlock:
        return self.blocks[name]

    def predecessors(self) -> Dict[str, List[str]]:
        """Map each block to its predecessor block names."""
        preds: Dict[str, List[str]] = {name: [] for name in self.block_order}
        for name in self.block_order:
            for succ in self.blocks[name].successors():
                preds[succ].append(name)
        return preds

    def successors(self) -> Dict[str, List[str]]:
        return {name: self.blocks[name].successors() for name in self.block_order}

    def reverse_postorder(self) -> List[str]:
        """Blocks in reverse postorder from the entry (unreachable excluded)."""
        seen: Set[str] = set()
        order: List[str] = []

        def visit(name: str) -> None:
            # Iterative DFS to survive deep CFGs.
            stack: List[Tuple[str, Iterator[str]]] = []
            seen.add(name)
            stack.append((name, iter(self.blocks[name].successors())))
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].successors())))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        if self.entry is not None:
            visit(self.entry)
        order.reverse()
        return order

    def instructions(self) -> Iterable[Tuple[str, int, Instr]]:
        """Yield ``(block name, index, instruction)`` over all blocks in order."""
        for name in self.block_order:
            for i, instr in enumerate(self.blocks[name].instrs):
                yield name, i, instr

    def vregs(self) -> Set[VReg]:
        """All virtual registers mentioned anywhere in the function."""
        regs: Set[VReg] = set()
        for _, _, instr in self.instructions():
            for reg in instr.defs() + instr.uses():
                if isinstance(reg, VReg):
                    regs.add(reg)
        return regs

    def verify(self) -> None:
        """Raise :class:`CompileError` on malformed control flow."""
        if self.entry is None:
            raise CompileError(f"function {self.name} has no entry block")
        for name in self.block_order:
            block = self.blocks[name]
            if not block.terminated:
                raise CompileError(f"block {name} in {self.name} is unterminated")
            for i, instr in enumerate(block.instrs):
                is_term = instr.op in (Opcode.JMP, Opcode.RET, Opcode.HALT)
                is_branch = instr.op is Opcode.BNZ
                last = i == len(block.instrs) - 1
                second_last = i == len(block.instrs) - 2
                if is_term and not last:
                    raise CompileError(
                        f"terminator {instr} mid-block in {self.name}:{name}"
                    )
                if is_branch and not (
                    second_last and block.instrs[-1].op is Opcode.JMP
                ):
                    raise CompileError(
                        f"BNZ must be followed by a block-final JMP "
                        f"({self.name}:{name})"
                    )
            for succ in block.successors():
                if succ not in self.blocks:
                    raise CompileError(
                        f"edge to undefined block {succ} from {self.name}:{name}"
                    )

    def __str__(self) -> str:
        header = f"func {self.name}({', '.join(map(repr, self.params))})"
        parts = [header]
        parts += [str(self.blocks[name]) for name in self.block_order]
        return "\n".join(parts)


@dataclass
class Module:
    """A whole IR program: functions plus global data symbols."""

    functions: Dict[str, Function] = field(default_factory=dict)
    #: Global symbols: name -> size in words.
    globals: Dict[str, int] = field(default_factory=dict)
    #: Optional initialisers: name -> word values.
    init: Dict[str, List[int]] = field(default_factory=dict)
    entry: str = "main"
    #: Interrupt handlers: vector number -> function name (``repro.periph``).
    isrs: Dict[int, str] = field(default_factory=dict)
    #: True when the program touches peripheral MMIO (even with no ISRs).
    uses_periph: bool = False

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise CompileError(f"duplicate function {function.name}")
        self.functions[function.name] = function

    def add_global(self, name: str, size: int,
                   init: Optional[List[int]] = None) -> None:
        if name in self.globals:
            raise CompileError(f"duplicate global {name}")
        self.globals[name] = size
        if init is not None:
            self.init[name] = list(init)

    def verify(self) -> None:
        for function in self.functions.values():
            function.verify()
        if self.entry not in self.functions:
            raise CompileError(f"entry function {self.entry!r} missing")
        for fname, _, instr in self.all_instructions():
            if instr.op is Opcode.CALL and instr.callee not in self.functions:
                raise CompileError(
                    f"{fname}: call to undefined function {instr.callee!r}"
                )

    def all_instructions(self) -> Iterable[Tuple[str, str, Instr]]:
        """Yield ``(function, block, instruction)`` across the module."""
        for fname, function in self.functions.items():
            for bname, _, instr in function.instructions():
                yield fname, bname, instr

    def call_order(self) -> List[str]:
        """Functions in callee-before-caller order.

        Raises:
            CompileError: if the call graph is cyclic (recursion is not
                supported by the static-frame convention).
        """
        callees: Dict[str, Set[str]] = {name: set() for name in self.functions}
        for fname, _, instr in self.all_instructions():
            if instr.op is Opcode.CALL:
                callees[fname].add(instr.callee)
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str, chain: List[str]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                cycle = " -> ".join(chain + [name])
                raise CompileError(f"recursive call chain unsupported: {cycle}")
            state[name] = 0
            for callee in sorted(callees[name]):
                visit(callee, chain + [name])
            state[name] = 1
            order.append(name)

        for name in sorted(self.functions):
            visit(name, [])
        return order

    def __str__(self) -> str:
        parts = []
        for name in sorted(self.globals):
            parts.append(f"global {name}[{self.globals[name]}]")
        parts += [str(self.functions[name]) for name in sorted(self.functions)]
        return "\n\n".join(parts)


def remove_unreachable(function: Function) -> List[str]:
    """Delete blocks unreachable from the entry; returns the removed names."""
    reachable = set(function.reverse_postorder())
    removed = [name for name in function.block_order if name not in reachable]
    for name in removed:
        del function.blocks[name]
    function.block_order = [n for n in function.block_order if n in reachable]
    return removed


def split_block(function: Function, block_name: str, index: int,
                hint: str = "split") -> str:
    """Split ``block_name`` before instruction ``index``; return the new block.

    The first part keeps the original name (so incoming edges stay valid) and
    jumps to the new block, which receives the instructions from ``index`` on.
    """
    block = function.blocks[block_name]
    if not 0 <= index <= len(block.instrs):
        raise CompileError(f"split index {index} out of range in {block_name}")
    new_name = function.new_label(hint)
    new_block = BasicBlock(new_name, instrs=block.instrs[index:])
    block.instrs = block.instrs[:index]
    block.instrs.append(Instr(Opcode.JMP, target=Label(new_name)))
    function.blocks[new_name] = new_block
    position = function.block_order.index(block_name)
    function.block_order.insert(position + 1, new_name)
    return new_name
