"""Memory anti-dependences and the program dependence graph (PDG).

The idempotent-region formation pass (:mod:`repro.compiler.region`) consumes
:func:`memory_antideps`: every load -> may-alias store pair that could make a
region non-idempotent must be separated by a region boundary, except for
WARAW-protected pairs (a dominating store to the same word re-creates the
read value on re-execution — paper §VI-B, "Region formation").

GECKO's recovery-block construction (:mod:`repro.core.recovery`) consumes the
:class:`ProgramDependenceGraph` — register use-def chains for data-dependence
backtracking and block-level control dependences for the control-integrity
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.instructions import Instr, Opcode
from .alias import MemRef, clobbers_all_memory, may_alias, mem_ref, must_alias
from .cfg import Function
from .dominators import control_dependence, dominators
from .reaching import ReachingResult, reaching_definitions

Site = Tuple[str, int]


@dataclass(frozen=True)
class AntiDep:
    """A memory anti-dependence: ``load`` then (on some path) ``store``.

    ``protectors`` are stores that must-alias the hazard word and dominate
    the load; if any protector shares the load's region, the pair is
    WARAW-protected and needs no boundary.
    """

    load: Site
    store: Site
    symbol: str
    protectors: FrozenSet[Site] = frozenset()


def block_reachability(function: Function) -> Dict[str, Set[str]]:
    """``block -> blocks reachable from it`` (not counting the empty path)."""
    succs = function.successors()
    reach: Dict[str, Set[str]] = {}
    for name in function.block_order:
        seen: Set[str] = set()
        stack = list(succs[name])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succs[node])
        reach[name] = seen
    return reach


def _instr_dominates(dom: Dict[str, Set[str]], a: Site, b: Site) -> bool:
    """Whether instruction ``a`` dominates instruction ``b``."""
    if a[0] == b[0]:
        return a[1] < b[1]
    return a[0] in dom.get(b[0], set())


def memory_antideps(function: Function) -> List[AntiDep]:
    """All load->store anti-dependences of ``function``.

    ``CALL`` is treated as both a read and a write of all memory, so calls
    participate on both sides; the boundaries the compiler places around
    calls satisfy those pairs.
    """
    reads: List[Tuple[Site, Optional[MemRef]]] = []
    writes: List[Tuple[Site, Optional[MemRef]]] = []
    for name, i, instr in function.instructions():
        ref = mem_ref(instr)
        site = (name, i)
        if instr.op is Opcode.LD:
            reads.append((site, ref))
        elif instr.op is Opcode.ST:
            writes.append((site, ref))
        elif clobbers_all_memory(instr):
            reads.append((site, None))
            writes.append((site, None))

    reach = block_reachability(function)
    dom = dominators(function)
    deps: List[AntiDep] = []
    for load_site, load_ref in reads:
        for store_site, store_ref in writes:
            if load_site == store_site:
                continue
            if not _refs_may_conflict(load_ref, store_ref):
                continue
            if not _site_reaches(reach, load_site, store_site):
                continue
            protectors = _waraw_protectors(
                dom, writes, load_site, load_ref, store_ref
            )
            symbol = (store_ref or load_ref).symbol if (store_ref or load_ref) else "*"
            deps.append(
                AntiDep(load=load_site, store=store_site, symbol=symbol,
                        protectors=frozenset(protectors))
            )
    return deps


def _refs_may_conflict(load_ref: Optional[MemRef],
                       store_ref: Optional[MemRef]) -> bool:
    if load_ref is None or store_ref is None:
        return True  # a CALL conflicts with everything
    return may_alias(load_ref, store_ref)


def _site_reaches(reach: Dict[str, Set[str]], src: Site, dst: Site) -> bool:
    """Whether execution can flow from ``src`` to ``dst`` (possibly cyclic)."""
    if src[0] == dst[0]:
        if dst[1] > src[1]:
            return True
        return src[0] in reach[src[0]]  # same block again via a cycle
    return dst[0] in reach[src[0]]


def _waraw_protectors(dom, writes, load_site: Site,
                      load_ref: Optional[MemRef],
                      store_ref: Optional[MemRef]) -> Set[Site]:
    """Stores making the pair WARAW-protected (see :class:`AntiDep`)."""
    if load_ref is None or store_ref is None:
        return set()
    if not (load_ref.is_exact and store_ref.is_exact
            and load_ref.offset == store_ref.offset
            and load_ref.symbol == store_ref.symbol):
        return set()
    protectors: Set[Site] = set()
    for write_site, write_ref in writes:
        if write_ref is None or not must_alias(write_ref, store_ref):
            continue
        if _instr_dominates(dom, write_site, load_site):
            protectors.add(write_site)
    return protectors


@dataclass
class ProgramDependenceGraph:
    """Register data dependences + block control dependences of a function."""

    function: Function
    reaching: ReachingResult
    #: block -> set of (branch block, taken successor) edges it depends on.
    control: Dict[str, Set[Tuple[str, str]]] = field(default_factory=dict)

    @classmethod
    def build(cls, function: Function) -> "ProgramDependenceGraph":
        return cls(
            function=function,
            reaching=reaching_definitions(function),
            control=control_dependence(function),
        )

    def instr_at(self, site: Site) -> Instr:
        return self.function.blocks[site[0]].instrs[site[1]]

    def data_deps(self, site: Site) -> List[Tuple[object, FrozenSet[Site]]]:
        """For each register the instruction reads: its reaching def sites."""
        instr = self.instr_at(site)
        return [
            (reg, self.reaching.defs_reaching_use(site, reg))
            for reg in instr.uses()
        ]

    def control_deps(self, site: Site) -> Set[Tuple[str, str]]:
        """Control-dependence edges of the instruction's block."""
        return self.control.get(site[0], set())
