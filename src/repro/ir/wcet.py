"""Worst-case execution time (WCET) analysis.

Two flavours are provided:

* :func:`function_wcet` — whole-function WCET in cycles, computed by
  collapsing natural loops innermost-first (loop cost = trip bound x longest
  single-iteration path) and then taking the longest path through the
  resulting DAG.  Calls cost the callee's WCET; the module-level driver
  processes the call graph callee-first.

* :func:`max_region_gap` — the longest ``MARK``-free instruction path, i.e.
  the worst-case cycles any idempotent region can consume.  This is the
  quantity GECKO compares against the guaranteed power-on budget (§VI-B,
  step 3): if a region can outlive one capacitor charge the program cannot
  make forward progress under rollback recovery.  A cycle that never crosses
  a ``MARK`` yields :data:`UNBOUNDED`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..errors import WCETError
from ..isa.instructions import Instr, Opcode
from .cfg import Function
from .loops import Loop, find_loops

#: Returned by :func:`max_region_gap` when some cycle avoids every MARK.
UNBOUNDED = math.inf

#: Trip bound assumed for loops without an annotation (non-strict mode).
DEFAULT_LOOP_BOUND = 1024


def instr_cycles(instr: Instr, callee_wcet: Optional[Dict[str, int]] = None) -> int:
    """Cycle cost of one instruction, charging calls their callee's WCET."""
    cost = instr.cycles
    if instr.op is Opcode.CALL and callee_wcet is not None:
        cost += callee_wcet.get(instr.callee, 0)
    return cost


def block_cycles(function: Function, name: str,
                 callee_wcet: Optional[Dict[str, int]] = None) -> int:
    """Summed cycle cost of one basic block."""
    return sum(instr_cycles(i, callee_wcet) for i in function.blocks[name].instrs)


def function_wcet(function: Function,
                  callee_wcet: Optional[Dict[str, int]] = None,
                  default_bound: Optional[int] = DEFAULT_LOOP_BOUND,
                  strict: bool = False) -> int:
    """Whole-function WCET in cycles.

    Args:
        function: the function to analyse (must have reducible control flow).
        callee_wcet: WCET of every function this one may call.
        default_bound: trip bound assumed for unannotated loops.
        strict: raise :class:`WCETError` instead of assuming a default bound.
    """
    loops = find_loops(function)
    reachable = function.reverse_postorder()
    weight: Dict[str, float] = {
        name: block_cycles(function, name, callee_wcet) for name in reachable
    }
    rep: Dict[str, str] = {name: name for name in reachable}

    def find(name: str) -> str:
        while rep[name] != name:
            rep[name] = rep[rep[name]]
            name = rep[name]
        return name

    succs = {name: set(function.blocks[name].successors()) for name in reachable}
    backedges: Set[Tuple[str, str]] = set()
    for loop in loops:
        backedges.update(loop.backedges)

    # Innermost loops first.
    for loop in sorted(loops, key=lambda lp: -lp.depth):
        bound = loop.bound
        if bound is None:
            if strict or default_bound is None:
                raise WCETError(
                    f"loop at {function.name}:{loop.header} has no trip bound"
                )
            bound = default_bound
        body_reps = {find(b) for b in loop.body if b in rep}
        header = find(loop.header)
        iter_cost = _longest_path(
            header, body_reps,
            lambda n: {find(s) for src in _members(rep, n)
                       for s in succs.get(src, ())
                       if (src, s) not in backedges
                       and find(s) in body_reps and find(s) != n},
            weight,
        )
        weight[header] = bound * iter_cost
        for block in body_reps - {header}:
            rep[block] = header
            weight[block] = 0.0

    entry = find(function.entry)
    nodes = {find(name) for name in reachable}

    def dag_succs(node: str) -> Set[str]:
        result = set()
        for src in _members(rep, node):
            for s in succs.get(src, ()):  # skip backedges: now self-loops
                tgt = find(s)
                if tgt != node and (src, s) not in backedges:
                    result.add(tgt)
        return result

    total = _longest_path(entry, nodes, dag_succs, weight)
    return int(total)


def _members(rep: Dict[str, str], node: str) -> List[str]:
    """All original blocks currently collapsed into ``node``."""
    out = []
    for name in rep:
        cursor = name
        while rep[cursor] != cursor:
            cursor = rep[cursor]
        if cursor == node:
            out.append(name)
    return out


def _longest_path(entry: str, nodes: Set[str], succs_of, weight) -> float:
    """Longest weighted path from ``entry`` over an acyclic node set."""
    memo: Dict[str, float] = {}
    on_stack: Set[str] = set()

    def visit(node: str) -> float:
        if node in memo:
            return memo[node]
        if node in on_stack:
            raise WCETError(f"unexpected cycle through {node} in WCET DAG")
        on_stack.add(node)
        best = 0.0
        for succ in succs_of(node):
            if succ in nodes:
                best = max(best, visit(succ))
        on_stack.discard(node)
        memo[node] = weight.get(node, 0.0) + best
        return memo[node]

    return visit(entry)


def module_wcet(module, default_bound: Optional[int] = DEFAULT_LOOP_BOUND,
                strict: bool = False) -> Dict[str, int]:
    """WCET of every function, resolving calls callee-first."""
    result: Dict[str, int] = {}
    for name in module.call_order():
        result[name] = function_wcet(
            module.functions[name], callee_wcet=result,
            default_bound=default_bound, strict=strict,
        )
    return result


# ----------------------------------------------------------------------
# Loop-aware region-gap analysis (MARK-to-MARK worst case).
# ----------------------------------------------------------------------
class GapAnalysis:
    """Result of :func:`region_gap`.

    Attributes:
        worst: worst-case MARK-free cycles (the longest any region runs).
        witness: ``(block, index)`` where the worst gap peaks — where a
            splitting pass should insert a boundary.  For a gap peaking
            inside a collapsed (boundary-free, bounded) loop the witness is
            the loop header at index 0, i.e. "make this loop per-iteration".
        divergent_loop: header of a cycle that neither contains a MARK on
            every path nor could be collapsed (no static bound usable) —
            the caller must place a boundary in this header first.
    """

    def __init__(self) -> None:
        self.worst: float = 0.0
        self.witness: Optional[Tuple[str, int]] = None
        self.divergent_loop: Optional[str] = None
        #: gap at each (collapsed-graph) node entry, for split placement.
        self.gap_in: Dict[str, float] = {}
        #: collapsed boundary-free loops: header -> whole-loop cost.
        self.collapsed: Dict[str, float] = {}
        #: block -> collapsed-loop header it was folded into.
        self.member_of: Dict[str, str] = {}


def _block_mark_profile(function: Function, name: str,
                        callee_wcet: Optional[Dict[str, int]] = None):
    """(pre, internal, post, has_mark, first_exceed_walker) for one block.

    ``pre``  — cycles from block entry through the first MARK (inclusive);
    ``internal`` — the longest MARK-free run strictly between two MARKs;
    ``post`` — cycles after the last MARK to block exit.
    For a MARK-free block, ``pre = post = total`` and ``internal = 0``.
    """
    pre = 0.0
    post = 0.0
    internal = 0.0
    has_mark = False
    for instr in function.blocks[name].instrs:
        cost = instr_cycles(instr, callee_wcet)
        if instr.op is Opcode.MARK:
            segment = post + cost
            if not has_mark:
                pre = segment
            else:
                internal = max(internal, segment)
            has_mark = True
            post = 0.0
        else:
            post += cost
    if not has_mark:
        pre = post
    return pre, internal, post, has_mark


def region_gap(function: Function, default_bound: int = DEFAULT_LOOP_BOUND,
               callee_wcet: Optional[Dict[str, int]] = None) -> GapAnalysis:
    """Worst-case cycles any idempotent region consumes, loop-aware.

    Boundary-free loops with a static (or default) trip bound are collapsed
    into a single node costing ``bound x single-iteration longest path``,
    so a small counted loop legitimately lives inside one region.  Loops
    containing boundaries participate in the block-level propagation, where
    every MARK resets the running gap.  A cycle that avoids every MARK and
    resists collapsing is reported as divergent.
    """
    from .loops import find_loops

    analysis = GapAnalysis()
    order = function.reverse_postorder()
    profile = {
        name: _block_mark_profile(function, name, callee_wcet)
        for name in order
    }

    # Collapse boundary-free loops, innermost first.
    loops = sorted(find_loops(function), key=lambda lp: -lp.depth)
    collapsed: Dict[str, float] = {}   # header -> whole-loop cost
    member_of: Dict[str, str] = {}     # block -> collapsed header
    backedges: Set[Tuple[str, str]] = set()
    for loop in loops:
        backedges.update(loop.backedges)

    def rep(name: str) -> str:
        seen = set()
        while name in member_of and name not in seen:
            seen.add(name)
            name = member_of[name]
        return name

    for loop in loops:
        members = {b for b in loop.body if b in profile}
        if any(profile[b][3] for b in members):
            continue  # contains a boundary: handled by propagation
        if any(rep(b) != b and rep(b) not in members for b in members):
            continue
        bound = loop.bound if loop.bound is not None else default_bound
        reps = {rep(b) for b in members}

        def iter_succs(node: str) -> Set[str]:
            out = set()
            for src in [b for b in members if rep(b) == node]:
                for s in function.blocks[src].successors():
                    if (src, s) in backedges:
                        continue
                    target = rep(s)
                    if target in reps and target != node:
                        out.add(target)
            return out

        weights = {}
        for node in reps:
            if node in collapsed:
                weights[node] = collapsed[node]
            else:
                weights[node] = float(sum(
                    instr_cycles(i, callee_wcet)
                    for i in function.blocks[node].instrs
                ))
        try:
            iteration = _longest_path(rep(loop.header), reps, iter_succs,
                                      weights)
        except WCETError:
            analysis.divergent_loop = loop.header
            return analysis
        total = bound * iteration
        header_rep = rep(loop.header)
        collapsed[header_rep] = total
        for member in reps - {header_rep}:
            member_of[member] = header_rep

    # Block-level gap propagation over the collapsed graph.
    nodes = {rep(name) for name in order}
    node_cost: Dict[str, float] = {}
    node_profile = {}
    for node in nodes:
        if node in collapsed:
            node_profile[node] = (collapsed[node], 0.0, collapsed[node], False)
        else:
            node_profile[node] = profile[node]

    succs: Dict[str, Set[str]] = {node: set() for node in nodes}
    for name in order:
        for s in function.blocks[name].successors():
            a, b = rep(name), rep(s)
            if a != b:
                succs[a].add(b)

    # A cycle that avoids every boundary makes region length unbounded;
    # after collapsing, any remaining cycle through only MARK-free nodes is
    # exactly that.  Report a node on the cycle so the splitter can cut it.
    cycle_node = _markless_cycle_node(nodes, succs, node_profile,
                                      avoid=set(collapsed))
    if cycle_node is not None:
        analysis.divergent_loop = cycle_node
        return analysis

    gap_in: Dict[str, float] = {node: 0.0 for node in nodes}
    entry = rep(function.entry)
    worst = 0.0
    witness: Optional[Tuple[str, int]] = None

    for sweep in range(len(nodes) + 3):
        changed = False
        for node in nodes:
            incoming = 0.0
            for pred in nodes:
                if node in succs[pred]:
                    pre_p, _, post_p, has_mark_p = node_profile[pred]
                    out = post_p if has_mark_p else gap_in[pred] + post_p
                    incoming = max(incoming, out)
            if node == entry:
                incoming = max(incoming, 0.0)
            if incoming > gap_in[node] + 1e-9:
                gap_in[node] = incoming
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - ruled out by the cycle check above
        raise WCETError("region-gap fixpoint failed to converge")

    for node in nodes:
        pre, internal, post, has_mark = node_profile[node]
        peak = gap_in[node] + pre
        if peak > worst:
            worst = peak
            witness = (node, 0) if node in collapsed \
                else _witness_in_block(function, node, gap_in[node],
                                       callee_wcet)
        if internal > worst:
            worst = internal
            witness = _witness_in_block(function, node, 0.0, callee_wcet,
                                        after_first_mark=True)
    analysis.worst = worst
    analysis.witness = witness
    analysis.gap_in = gap_in
    analysis.collapsed = dict(collapsed)
    analysis.member_of = {b: rep(b) for b in member_of}
    return analysis


def _markless_cycle_node(nodes: Set[str], succs: Dict[str, Set[str]],
                         node_profile,
                         avoid: Optional[Set[str]] = None) -> Optional[str]:
    """A node on a cycle that visits no boundary-carrying node, if any.

    ``avoid`` nodes (collapsed inner loops) are chosen only as a last
    resort: placing the repair boundary inside an inner loop would pay a
    per-iteration cost for an outer-cycle problem.
    """
    markless = {n for n in nodes if not node_profile[n][3]}
    avoid = avoid or set()
    color: Dict[str, int] = {}

    def dfs(start: str) -> Optional[str]:
        stack = [(start, iter(sorted(succs[start] & markless)))]
        color[start] = 0
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt) == 0:
                    # Back edge: the cycle is the stack suffix from nxt.
                    names = [entry[0] for entry in stack]
                    cycle = names[names.index(nxt):] if nxt in names else [nxt]
                    preferred = [n for n in cycle if n not in avoid]
                    return preferred[0] if preferred else cycle[0]
                if nxt not in color:
                    color[nxt] = 0
                    stack.append((nxt, iter(sorted(succs[nxt] & markless))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 1
                stack.pop()
        return None

    for start in sorted(markless):
        if start not in color:
            found = dfs(start)
            if found is not None:
                return found
    return None


def _witness_in_block(function: Function, name: str, gap_in: float,
                      callee_wcet=None, after_first_mark: bool = False):
    """The instruction index where the running gap peaks within a block."""
    gap = gap_in
    best = (name, 0)
    best_gap = gap
    seen_mark = False
    for index, instr in enumerate(function.blocks[name].instrs):
        if instr.op is Opcode.MARK:
            gap = 0.0
            seen_mark = True
            continue
        if after_first_mark and not seen_mark:
            continue
        gap += instr_cycles(instr, callee_wcet)
        if gap > best_gap:
            best_gap = gap
            best = (name, index)
    return best


Point = Tuple[str, int]


def _next_points(function: Function, block: str, index: int) -> List[Point]:
    instrs = function.blocks[block].instrs
    instr = instrs[index]
    if instr.op is Opcode.JMP:
        return [(instr.target.name, 0)]
    if instr.op is Opcode.BNZ:
        return [(instr.target.name, 0), (block, index + 1)]
    if instr.op in (Opcode.RET, Opcode.HALT):
        return []
    return [(block, index + 1)]


def max_region_gap(function: Function,
                   callee_wcet: Optional[Dict[str, int]] = None) -> float:
    """Longest MARK-free path cost in cycles (:data:`UNBOUNDED` if cyclic).

    The gap *includes* the terminating MARK's own cost, since the boundary
    store must also complete within the region's energy budget.
    """
    memo: Dict[Point, float] = {}
    on_stack: Set[Point] = set()
    unbounded = False

    def walk(point: Point) -> float:
        nonlocal unbounded
        if point in memo:
            return memo[point]
        if point in on_stack:
            unbounded = True
            return 0.0
        block, index = point
        instrs = function.blocks[block].instrs
        if index >= len(instrs):
            return 0.0
        instr = instrs[index]
        cost = float(instr_cycles(instr, callee_wcet))
        if instr.op is Opcode.MARK:
            memo[point] = cost
            return cost
        on_stack.add(point)
        best = 0.0
        for nxt in _next_points(function, block, index):
            best = max(best, walk(nxt))
        on_stack.discard(point)
        memo[point] = cost + best
        return memo[point]

    starts: List[Point] = [(function.entry, 0)]
    for name in function.reverse_postorder():
        for i, instr in enumerate(function.blocks[name].instrs):
            if instr.op is Opcode.MARK:
                starts.extend(_next_points(function, name, i))
    worst = 0.0
    for start in starts:
        worst = max(worst, walk(start))
    return UNBOUNDED if unbounded else worst
