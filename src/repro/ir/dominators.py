"""Dominator and postdominator analysis on IR functions.

Straightforward iterative dataflow over block sets — functions in this
domain have tens of blocks, so the simple formulation is both clear and
fast enough.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .cfg import Function

#: Name of the virtual exit node used by the postdominator analysis.
VIRTUAL_EXIT = "__exit__"


def dominators(function: Function) -> Dict[str, Set[str]]:
    """Map each reachable block to the set of blocks dominating it."""
    order = function.reverse_postorder()
    preds = function.predecessors()
    universe = set(order)
    dom: Dict[str, Set[str]] = {name: set(universe) for name in order}
    dom[function.entry] = {function.entry}
    changed = True
    while changed:
        changed = False
        for name in order:
            if name == function.entry:
                continue
            incoming = [dom[p] for p in preds[name] if p in universe]
            new = set.intersection(*incoming) if incoming else set()
            new = new | {name}
            if new != dom[name]:
                dom[name] = new
                changed = True
    return dom


def immediate_dominators(function: Function) -> Dict[str, Optional[str]]:
    """Map each reachable block to its immediate dominator (entry -> None)."""
    dom = dominators(function)
    idom: Dict[str, Optional[str]] = {}
    for name, doms in dom.items():
        if name == function.entry:
            idom[name] = None
            continue
        strict = doms - {name}
        # The idom is the strict dominator dominated by all other strict doms.
        idom[name] = next(
            (c for c in strict if all(c in dom[o] or o == c for o in strict)),
            None,
        )
    return idom


def _exit_blocks(function: Function) -> List[str]:
    return [
        name
        for name in function.block_order
        if not function.blocks[name].successors()
    ]


def postdominators(function: Function) -> Dict[str, Set[str]]:
    """Map each block to the set of blocks postdominating it.

    A virtual exit (:data:`VIRTUAL_EXIT`) joins all real exits so the
    analysis tolerates multiple ``RET``/``HALT`` blocks.  Blocks that cannot
    reach any exit (infinite loops) end up postdominated by everything; the
    callers in :mod:`repro.ir.dependence` handle that conservatively.
    """
    succs = {name: list(function.blocks[name].successors())
             for name in function.block_order}
    exits = _exit_blocks(function)
    succs[VIRTUAL_EXIT] = []
    for name in exits:
        succs[name] = succs[name] + [VIRTUAL_EXIT]
    universe = set(succs)
    pdom: Dict[str, Set[str]] = {name: set(universe) for name in universe}
    pdom[VIRTUAL_EXIT] = {VIRTUAL_EXIT}
    changed = True
    while changed:
        changed = False
        for name in universe:
            if name == VIRTUAL_EXIT:
                continue
            outgoing = [pdom[s] for s in succs[name]]
            new = set.intersection(*outgoing) if outgoing else set()
            new = new | {name}
            if new != pdom[name]:
                pdom[name] = new
                changed = True
    return pdom


def control_dependence(function: Function) -> Dict[str, Set[Tuple[str, str]]]:
    """Ferrante-style control dependence.

    Returns a map ``block -> {(branch block, taken successor), ...}``: the CFG
    edges the block's execution is control dependent on.  Block ``B`` is
    control dependent on edge ``A -> S`` when ``B`` postdominates ``S`` but
    does not postdominate ``A``.
    """
    pdom = postdominators(function)
    deps: Dict[str, Set[Tuple[str, str]]] = {
        name: set() for name in function.block_order
    }
    for a in function.block_order:
        succs = function.blocks[a].successors()
        if len(succs) < 2:
            continue
        for s in succs:
            for b in function.block_order:
                # B depends on A -> S iff B postdominates S but does not
                # strictly postdominate A.
                if b in pdom[s] and (b == a or b not in pdom[a]):
                    deps[b].add((a, s))
    return deps
