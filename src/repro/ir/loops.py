"""Natural-loop discovery (backedges via dominators)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import CompileError
from .cfg import Function
from .dominators import dominators


@dataclass
class Loop:
    """A natural loop: header plus the blocks of its body (header included)."""

    header: str
    body: Set[str] = field(default_factory=set)
    backedges: List[Tuple[str, str]] = field(default_factory=list)
    #: Static trip-count bound (from lowering annotations), if known.
    bound: Optional[int] = None
    #: Loops strictly nested inside this one.
    children: List["Loop"] = field(default_factory=list)
    parent: Optional["Loop"] = None

    @property
    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:
        return f"Loop(header={self.header}, blocks={len(self.body)}, bound={self.bound})"


def find_loops(function: Function) -> List[Loop]:
    """All natural loops of ``function``, outermost first.

    Loops sharing a header are merged (as LLVM does).  Irreducible control
    flow — a backedge whose target does not dominate its source — is rejected
    because the WCET analysis (and the paper's region formation, which places
    boundaries in loop headers) require reducibility.
    """
    dom = dominators(function)
    succs = function.successors()
    by_header: Dict[str, Loop] = {}
    rpo = function.reverse_postorder()
    rpo_index = {name: i for i, name in enumerate(rpo)}

    for src in rpo:
        for dst in succs[src]:
            if dst in dom.get(src, set()):
                loop = by_header.setdefault(dst, Loop(header=dst))
                loop.backedges.append((src, dst))
                loop.body |= _natural_loop_body(function, src, dst)
            elif rpo_index.get(dst, 0) <= rpo_index[src]:
                # A retreating edge that is not a backedge: irreducible CFG.
                raise CompileError(
                    f"irreducible control flow at edge {src} -> {dst} "
                    f"in {function.name}"
                )

    loops = list(by_header.values())
    for loop in loops:
        loop.bound = function.blocks[loop.header].meta.get("loop_bound")

    # Build the nesting forest: parent = smallest strictly-enclosing loop.
    loops.sort(key=lambda lp: len(lp.body))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1:]:
            if inner.header in outer.body and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break
    loops.sort(key=lambda lp: (lp.depth, lp.header))
    return loops


def _natural_loop_body(function: Function, src: str, header: str) -> Set[str]:
    """Blocks of the natural loop of backedge ``src -> header``."""
    preds = function.predecessors()
    body = {header, src}
    stack = [src]
    while stack:
        node = stack.pop()
        if node == header:
            continue
        for pred in preds[node]:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def infer_loop_bounds(function: Function) -> int:
    """Derive trip bounds for canonical counted loops at the IR level.

    Runs after constant propagation, so limits that were variables in the
    source (``int n = 9; ... i < n``) have become immediates.  A loop gets
    a bound when its header compares an induction register against an
    immediate, the register has exactly one in-loop definition that adds a
    constant step, and exactly one loop-entry definition loading a constant.
    Bounds are written to the header block's ``loop_bound`` meta (existing
    annotations win).  Returns how many loops were newly bounded.
    """
    from ..isa.instructions import Opcode
    from ..isa.operands import Imm, VReg
    from .reaching import reaching_definitions

    loops = find_loops(function)
    if not loops:
        return 0
    reaching = reaching_definitions(function)
    inferred = 0

    for loop in loops:
        header = function.blocks[loop.header]
        if header.meta.get("loop_bound") is not None:
            continue
        bound = _header_bound(function, loop, header, reaching)
        if bound is not None:
            header.meta["loop_bound"] = bound
            inferred += 1
    return inferred


_RELATIONAL = None  # populated lazily to avoid import cycles


def _header_bound(function: Function, loop: Loop, header, reaching):
    from ..isa.instructions import Opcode
    from ..isa.operands import Imm, VReg

    # Header must end with BNZ cond -> loop body; find the compare that
    # defines cond inside the header.
    if len(header.instrs) < 2 or header.instrs[-2].op is not Opcode.BNZ:
        return None
    branch = header.instrs[-2]
    if branch.target.name not in loop.body:
        return None
    compare = None
    for instr in header.instrs:
        if instr.dst == branch.a and instr.op in (
            Opcode.SLT, Opcode.SLE, Opcode.SGT, Opcode.SGE
        ):
            compare = instr
    if compare is None or not isinstance(compare.b, Imm):
        return None
    induction = compare.a
    if not isinstance(induction, (VReg, type(induction))):
        return None
    limit = compare.b.value

    # Classify the induction register's definitions: in-loop chains must all
    # add the same constant, and the loop enters with one constant value.
    step = None
    start = None
    step_sites = []
    for name, i, instr in function.instructions():
        if induction not in instr.defs():
            continue
        inside = name in loop.body
        if inside:
            delta = _step_of(function, instr, induction, (name, i), loop)
            if delta is None or (step is not None and step != delta):
                return None
            step = delta
            step_sites.append(name)
        else:
            if instr.op is not Opcode.LI or start is not None:
                return None
            start = instr.a.value
    if step in (None, 0) or start is None:
        return None

    # Soundness: the increment must run on *every* iteration, else the loop
    # can spin without progressing and any bound would understate the WCET.
    # Require some increment block to dominate every backedge source.
    from .dominators import dominators as _dominators
    dom = _dominators(function)
    if not any(
        all(site == src or site in dom.get(src, set())
            for src, _ in loop.backedges)
        for site in step_sites
    ):
        return None

    if compare.op is Opcode.SLT and step > 0:
        span = limit - start
    elif compare.op is Opcode.SLE and step > 0:
        span = limit - start + 1
    elif compare.op is Opcode.SGT and step < 0:
        span = start - limit
    elif compare.op is Opcode.SGE and step < 0:
        span = start - limit + 1
    else:
        return None
    if span <= 0:
        return 0
    return -(-span // abs(step))


def _step_of(function: Function, instr, induction, site, loop):
    """The constant increment this in-loop definition applies, or None."""
    from ..isa.instructions import Opcode
    from ..isa.operands import Imm

    if instr.op is Opcode.ADD and instr.a == induction \
            and isinstance(instr.b, Imm) and instr.dst == induction:
        return instr.b.value
    if instr.op is Opcode.SUB and instr.a == induction \
            and isinstance(instr.b, Imm) and instr.dst == induction:
        return -instr.b.value
    if instr.op is Opcode.MOV:
        # i = t where t = i +/- C defined in the loop (the lowering shape).
        source = instr.a
        producer = None
        for name, i, candidate in function.instructions():
            if source in candidate.defs():
                if producer is not None:
                    return None  # ambiguous temp
                producer = (name, candidate)
        if producer is None or producer[0] not in loop.body:
            return None
        temp = producer[1]
        if temp.op is Opcode.ADD and temp.a == induction \
                and isinstance(temp.b, Imm):
            return temp.b.value
        if temp.op is Opcode.SUB and temp.a == induction \
                and isinstance(temp.b, Imm):
            return -temp.b.value
    return None


def loop_of_block(loops: List[Loop], block: str) -> Optional[Loop]:
    """The innermost loop containing ``block`` (or ``None``)."""
    best: Optional[Loop] = None
    for loop in loops:
        if block in loop.body and (best is None or len(loop.body) < len(best.body)):
            best = loop
    return best
