"""Reaching definitions and use-def/def-use chains.

A *definition site* is ``(block name, instruction index)`` of an instruction
that writes a register.  GECKO's recovery-block construction
(:mod:`repro.core.recovery`) backtracks these chains to decide whether a
pruned checkpoint can be reconstructed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from .cfg import Function

DefSite = Tuple[str, int]
UseSite = Tuple[str, int]


@dataclass
class ReachingResult:
    """Reaching-definition sets plus derived chains."""

    #: Definitions reaching the *entry* of each block, per register.
    reach_in: Dict[str, Dict[object, Set[DefSite]]]
    #: ``(use site, register) -> definition sites that may reach it``.
    use_def: Dict[Tuple[UseSite, object], FrozenSet[DefSite]] = field(
        default_factory=dict
    )
    #: ``definition site -> use sites it may reach``.
    def_use: Dict[DefSite, Set[UseSite]] = field(default_factory=dict)

    def defs_reaching_use(self, site: UseSite, reg: object) -> FrozenSet[DefSite]:
        """Definition sites of ``reg`` that may reach the use at ``site``."""
        return self.use_def.get((site, reg), frozenset())

    def defs_reaching_block_entry(self, block: str, reg: object) -> Set[DefSite]:
        """Definition sites of ``reg`` that may reach the entry of ``block``."""
        return set(self.reach_in.get(block, {}).get(reg, set()))


def reaching_definitions(function: Function) -> ReachingResult:
    """Standard forward may-analysis at definition-site granularity."""
    order = function.reverse_postorder()
    preds = function.predecessors()

    # Per-block gen (last def per register) and killed registers.
    gen: Dict[str, Dict[object, DefSite]] = {}
    kill: Dict[str, Set[object]] = {}
    for name in order:
        gen[name] = {}
        kill[name] = set()
        for i, instr in enumerate(function.blocks[name].instrs):
            for reg in instr.defs():
                gen[name][reg] = (name, i)
                kill[name].add(reg)

    reach_in: Dict[str, Dict[object, Set[DefSite]]] = {
        name: {} for name in order
    }
    reach_out: Dict[str, Dict[object, Set[DefSite]]] = {
        name: {} for name in order
    }

    def out_of(name: str) -> Dict[object, Set[DefSite]]:
        result: Dict[object, Set[DefSite]] = {}
        for reg, sites in reach_in[name].items():
            if reg not in kill[name]:
                result[reg] = set(sites)
        for reg, site in gen[name].items():
            result.setdefault(reg, set()).add(site)
        return result

    changed = True
    while changed:
        changed = False
        for name in order:
            merged: Dict[object, Set[DefSite]] = {}
            for pred in preds[name]:
                for reg, sites in reach_out.get(pred, {}).items():
                    merged.setdefault(reg, set()).update(sites)
            if merged != reach_in[name]:
                reach_in[name] = merged
                changed = True
            new_out = out_of(name)
            if new_out != reach_out[name]:
                reach_out[name] = new_out
                changed = True

    result = ReachingResult(reach_in=reach_in)

    # Derive use-def and def-use chains with an in-block forward walk.
    for name in order:
        current: Dict[object, Set[DefSite]] = {
            reg: set(sites) for reg, sites in reach_in[name].items()
        }
        for i, instr in enumerate(function.blocks[name].instrs):
            site = (name, i)
            for reg in instr.uses():
                defs = frozenset(current.get(reg, set()))
                result.use_def[(site, reg)] = defs
                for def_site in defs:
                    result.def_use.setdefault(def_site, set()).add(site)
            for reg in instr.defs():
                current[reg] = {site}
    return result
