"""Delta-debugging shrinker: minimal schedules that still violate.

A fuzzer-found violation usually rides on a schedule full of freight —
events that landed after the bug fired, repeats that never mattered,
cycle offsets with needless precision.  The shrinker reduces a failing
schedule while a *predicate* (the original oracle still fires) holds:

1. **ddmin** over the event list (Zeller's classic algorithm): drop
   complements at increasing granularity until the list is 1-minimal —
   removing any single remaining event makes the violation vanish.
2. **Per-event simplification** to a fixpoint: each surviving event is
   offered the moves from :func:`repro.torture.schedule.simplify_event`
   (zero the repeat, halve it, drop the gap, de-announce the budget,
   zero fault words/bits, round the cycle offset to coarser multiples)
   and keeps any move under which the oracle still fails.

Every probe is one deterministic engine run, so shrinking is replayable;
a run budget bounds the whole reduction and the best schedule found so
far is returned when it runs out.  The ``backend_equivalence`` oracle is
special-cased: its predicate runs *both* backends and compares
fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .engine import TortureTarget, run_schedule
from .oracles import BACKEND_EQUIV
from .schedule import TortureEvent, TortureSchedule, simplify_event

__all__ = ["ShrinkResult", "shrink_schedule"]

#: Default probe budget (engine runs) for one shrink.
DEFAULT_SHRINK_RUNS = 300


class _OutOfRuns(Exception):
    pass


@dataclass
class ShrinkResult:
    """What the shrinker achieved, and what it cost."""

    schedule: TortureSchedule
    oracle: str
    runs: int
    original_events: int
    minimal: bool  # True when reduction reached a fixpoint in budget

    @property
    def events(self) -> int:
        return len(self.schedule)


class _Shrinker:
    def __init__(self, target: TortureTarget, oracle: str, backend: str,
                 max_steps: Optional[int], run_budget: int) -> None:
        self.target = target
        self.oracle = oracle
        self.backend = backend
        self.max_steps = max_steps
        self.run_budget = run_budget
        self.runs = 0
        self.best: Optional[List[TortureEvent]] = None

    def fails(self, events: Sequence[TortureEvent]) -> bool:
        """Does the oracle still fire on this candidate schedule?

        Every failing candidate becomes the new best-so-far, so partial
        progress survives budget exhaustion mid-pass.
        """
        if self.runs >= self.run_budget:
            raise _OutOfRuns
        schedule = TortureSchedule(events=tuple(events))
        if self.oracle == BACKEND_EQUIV:
            self.runs += 2
            first = run_schedule(self.target, schedule, "interpreter",
                                 max_steps=self.max_steps)
            second = run_schedule(self.target, schedule, "threaded",
                                  max_steps=self.max_steps)
            failing = first.fingerprint != second.fingerprint
        else:
            self.runs += 1
            outcome = run_schedule(self.target, schedule, self.backend,
                                   max_steps=self.max_steps)
            failing = self.oracle in outcome.oracles()
        if failing:
            self.best = list(events)
        return failing

    # -- ddmin ---------------------------------------------------------
    def ddmin(self, events: List[TortureEvent]) -> List[TortureEvent]:
        granularity = 2
        while len(events) >= 2:
            size = len(events)
            chunk = max(1, size // granularity)
            reduced = False
            for start in range(0, size, chunk):
                candidate = events[:start] + events[start + chunk:]
                if candidate and self.fails(candidate):
                    events = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if granularity >= size:
                    break
                granularity = min(size, granularity * 2)
        if len(events) > 1:
            # final 1-minimality sweep (cheap at small sizes)
            index = 0
            while index < len(events) and len(events) > 1:
                candidate = events[:index] + events[index + 1:]
                if self.fails(candidate):
                    events = candidate
                else:
                    index += 1
        return events

    # -- per-event simplification --------------------------------------
    def simplify(self, events: List[TortureEvent]) -> List[TortureEvent]:
        changed = True
        while changed:
            changed = False
            for index in range(len(events)):
                for replacement in simplify_event(events[index],
                                                  self.target.scheme):
                    candidate = list(events)
                    candidate[index] = replacement
                    if self.fails(candidate):
                        events = candidate
                        changed = True
                        break
        return events


def shrink_schedule(target: TortureTarget, schedule: TortureSchedule,
                    oracle: str, backend: str = "interpreter",
                    max_steps: Optional[int] = None,
                    run_budget: int = DEFAULT_SHRINK_RUNS) -> ShrinkResult:
    """Reduce ``schedule`` while ``oracle`` still fails on ``target``.

    Returns the best (smallest, simplest) schedule found within
    ``run_budget`` engine runs.  The input schedule must already violate
    the oracle; if it does not, it is returned unchanged with
    ``minimal=False`` (nothing to shrink against).
    """
    shrinker = _Shrinker(target, oracle, backend, max_steps, run_budget)
    events = list(schedule.events)
    minimal = False
    try:
        if not shrinker.fails(events):
            return ShrinkResult(schedule=schedule, oracle=oracle,
                                runs=shrinker.runs,
                                original_events=len(events), minimal=False)
        shrinker.simplify(shrinker.ddmin(events))
        minimal = True
    except _OutOfRuns:
        pass
    best = shrinker.best if shrinker.best is not None else events
    return ShrinkResult(schedule=TortureSchedule(events=tuple(best)),
                        oracle=oracle, runs=shrinker.runs,
                        original_events=len(schedule), minimal=minimal)
