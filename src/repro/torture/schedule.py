"""Torture schedules: typed adversarial event sequences over one run.

A :class:`TortureSchedule` is a sorted sequence of :class:`TortureEvent`
deliveries, each pinned to a simulated *cycle* boundary — the one clock
both execution backends advance identically — so a schedule replays
bit-for-bit on the interpreter and on threaded code.  Four event kinds
cover the attack surface the paper and the related work care about:

``power_fail``
    A power failure at the event cycle, optionally *announced* (the
    voltage monitor fires first with ``ckpt_budget`` cycles of buffered
    energy — the paper's ``V_backup`` path, or its ``V_fail`` torn-budget
    attack), optionally repeated ``repeat`` times during recovery with
    ``gap_steps`` instructions between repeats (failure-during-recovery).
``ckpt_fault``
    Arms an EMI fault against the *next* JIT checkpoint image (reusing
    the :mod:`repro.faultsim` corrupt/truncate models): one word is
    flipped / the write stops early, and the commit markers never land —
    the glitch that corrupts is the glitch that keeps it from committing.
``isr_burst``
    Pends an interrupt vector out of band (an EMI-induced spurious edge),
    the :mod:`repro.periph.attack` phase-locking surface.
``data_fault``
    A one-shot architectural fault at the next instruction boundary:
    ``reg_flip`` (XOR one register bit) or ``instr_skip``.

Per-scheme *contracts* (:data:`SCHEME_CONTRACTS`) restrict generation to
schedules each scheme actually promises to survive — NVP's contract is
"announced failures with sufficient energy" (an unannounced failure or a
torn budget is the paper's known NVP vulnerability, not a reproduction
bug), while GECKO must also survive unannounced failures and checkpoint
faults because detection plus rollback is its whole claim.

The seeded generator biases event placement three ways — uniform over
the run, *boundary-biased* (just after a golden MARK commit, the
highest-value crash points), and *ISR-phase-locked* (around golden
handler-entry cycles, where frame state is in flight) — with child
streams spawned per case through :mod:`repro.seeds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..isa.operands import NUM_REGS

__all__ = [
    "AMPLE_BUDGET",
    "CKPT_FAULT",
    "DATA_FAULT",
    "EVENT_KINDS",
    "ISR_BURST",
    "POWER_FAIL",
    "SCHEME_CONTRACTS",
    "SchemeContract",
    "TortureError",
    "TortureEvent",
    "TortureProfile",
    "TortureSchedule",
    "generate_schedule",
    "validate_schedule",
]


class TortureError(ReproError):
    """A malformed torture schedule, contract breach, or engine misuse."""


#: Event kinds.
POWER_FAIL = "power_fail"
CKPT_FAULT = "ckpt_fault"
ISR_BURST = "isr_burst"
DATA_FAULT = "data_fault"
EVENT_KINDS = (POWER_FAIL, CKPT_FAULT, ISR_BURST, DATA_FAULT)

#: An announced checkpoint budget that always suffices (cycles).
AMPLE_BUDGET = 10 ** 9

#: Checkpoint-fault modes (mirroring :mod:`repro.faultsim.models`).
CKPT_MODES = ("corrupt", "truncate")

#: Data-fault models (the step-triggered :mod:`repro.faultsim` models).
DATA_MODELS = ("reg_flip", "instr_skip")

_REPEAT_CAP = 16
_GAP_STEPS_CAP = 4096


@dataclass(frozen=True)
class TortureEvent:
    """One scheduled delivery.  Unused fields stay at their defaults so
    events of every kind share a single canonical dict encoding."""

    kind: str
    at_cycle: int
    # power_fail --------------------------------------------------------
    ckpt_budget: Optional[int] = None   # None = unannounced failure
    repeat: int = 0                     # extra failures during recovery
    gap_steps: int = 0                  # instructions between repeats
    # ckpt_fault --------------------------------------------------------
    mode: Optional[str] = None          # "corrupt" | "truncate"
    word: int = 0                       # image word index (corrupt)
    cut: int = 0                        # words written before the stop
    # isr_burst ---------------------------------------------------------
    vector: int = 0
    # data_fault --------------------------------------------------------
    model: Optional[str] = None         # "reg_flip" | "instr_skip"
    reg: int = 0
    bit: int = 0                        # shared by ckpt corrupt / reg_flip

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise TortureError(f"unknown event kind {self.kind!r} "
                               f"(want one of {', '.join(EVENT_KINDS)})")
        if self.at_cycle < 0:
            raise TortureError(f"at_cycle must be >= 0, got {self.at_cycle}")
        if not 0 <= self.repeat <= _REPEAT_CAP:
            raise TortureError(f"repeat must be in [0, {_REPEAT_CAP}]")
        if not 0 <= self.gap_steps <= _GAP_STEPS_CAP:
            raise TortureError(f"gap_steps must be in [0, {_GAP_STEPS_CAP}]")
        if self.kind == CKPT_FAULT and self.mode not in CKPT_MODES:
            raise TortureError(f"ckpt_fault mode must be one of "
                               f"{', '.join(CKPT_MODES)}, got {self.mode!r}")
        if self.kind == DATA_FAULT and self.model not in DATA_MODELS:
            raise TortureError(f"data_fault model must be one of "
                               f"{', '.join(DATA_MODELS)}, got {self.model!r}")
        if not 0 <= self.reg < NUM_REGS:
            raise TortureError(f"reg must be in [0, {NUM_REGS})")
        if not 0 <= self.bit < 32:
            raise TortureError("bit must be in [0, 32)")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical dict form (only non-default fields, sorted keys)."""
        out: Dict[str, object] = {"kind": self.kind, "at": self.at_cycle}
        for key, attr in (("budget", "ckpt_budget"), ("repeat", "repeat"),
                          ("gap", "gap_steps"), ("mode", "mode"),
                          ("word", "word"), ("cut", "cut"),
                          ("vector", "vector"), ("model", "model"),
                          ("reg", "reg"), ("bit", "bit")):
            value = getattr(self, attr)
            if value not in (None, 0):
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TortureEvent":
        return cls(kind=data["kind"], at_cycle=data["at"],
                   ckpt_budget=data.get("budget"),
                   repeat=data.get("repeat", 0),
                   gap_steps=data.get("gap", 0),
                   mode=data.get("mode"), word=data.get("word", 0),
                   cut=data.get("cut", 0), vector=data.get("vector", 0),
                   model=data.get("model"), reg=data.get("reg", 0),
                   bit=data.get("bit", 0))


@dataclass(frozen=True)
class SchemeContract:
    """What a scheme promises to survive — the generator's legal moves.

    ``budgets`` lists the announced-budget classes power failures may
    draw from: ``"ample"`` (monitor fires with enough energy),
    ``"torn"`` (monitor fires inside the ``V_fail`` window), ``"none"``
    (unannounced — the failure beats the monitor entirely).
    """

    kinds: Tuple[str, ...]
    budgets: Tuple[str, ...]

    def allows_budget(self, budget: Optional[int]) -> bool:
        if budget is None:
            return "none" in self.budgets
        if budget >= AMPLE_BUDGET:
            return "ample" in self.budgets
        return "torn" in self.budgets


#: Scheme id -> contract.  ``gecko-rollback`` pins ``__mode`` to rollback
#: (the pure-Ratchet convention of the crash-consistency tests), where
#: checkpoints never run, so ckpt faults would be inert there.
SCHEME_CONTRACTS: Dict[str, SchemeContract] = {
    "nvp": SchemeContract(
        kinds=(POWER_FAIL, ISR_BURST, DATA_FAULT),
        budgets=("ample",)),
    "ratchet": SchemeContract(
        kinds=(POWER_FAIL, ISR_BURST, DATA_FAULT),
        budgets=("none",)),
    "gecko-jit": SchemeContract(
        kinds=(POWER_FAIL, CKPT_FAULT, ISR_BURST, DATA_FAULT),
        budgets=("ample", "torn", "none")),
    "gecko-rollback": SchemeContract(
        kinds=(POWER_FAIL, ISR_BURST, DATA_FAULT),
        budgets=("ample", "torn", "none")),
}

SCHEME_NAMES = tuple(sorted(SCHEME_CONTRACTS))


@dataclass(frozen=True)
class TortureProfile:
    """Golden-run facts the generator biases its placements with."""

    total_cycles: int
    mark_cycles: Tuple[int, ...] = ()
    isr_entry_cycles: Tuple[int, ...] = ()
    image_cycles: int = 96          # full JIT checkpoint write cost
    has_periph: bool = False
    vectors: Tuple[int, ...] = ()


@dataclass(frozen=True)
class TortureSchedule:
    """An ordered, validated event sequence (sorted by cycle, then by
    original position — simultaneous events deliver in schedule order)."""

    events: Tuple[TortureEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.events, key=lambda e: e.at_cycle))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def to_dicts(self) -> List[dict]:
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_dicts(cls, dicts: Sequence[dict]) -> "TortureSchedule":
        return cls(events=tuple(TortureEvent.from_dict(d) for d in dicts))

    @property
    def kinds(self) -> frozenset:
        return frozenset(event.kind for event in self.events)


def validate_schedule(schedule: TortureSchedule, scheme: str,
                      profile: Optional[TortureProfile] = None) -> None:
    """Raise :class:`TortureError` when ``schedule`` steps outside the
    scheme contract (or targets peripherals the program lacks)."""
    contract = SCHEME_CONTRACTS.get(scheme)
    if contract is None:
        raise TortureError(f"unknown scheme {scheme!r} "
                           f"(want one of {', '.join(SCHEME_NAMES)})")
    for index, event in enumerate(schedule):
        if event.kind not in contract.kinds:
            raise TortureError(
                f"event {index}: kind {event.kind!r} is outside the "
                f"{scheme} contract ({', '.join(contract.kinds)})")
        if event.kind == POWER_FAIL \
                and not contract.allows_budget(event.ckpt_budget):
            raise TortureError(
                f"event {index}: ckpt_budget {event.ckpt_budget!r} is "
                f"outside the {scheme} contract "
                f"(budget classes: {', '.join(contract.budgets)})")
        if event.kind == ISR_BURST and profile is not None:
            if not profile.has_periph:
                raise TortureError(
                    f"event {index}: isr_burst on a program with no "
                    f"peripherals")
            if profile.vectors and event.vector not in profile.vectors:
                raise TortureError(
                    f"event {index}: isr_burst vector {event.vector} has "
                    f"no registered handler "
                    f"(registered: {list(profile.vectors)})")


# ----------------------------------------------------------------------
# Generation.
# ----------------------------------------------------------------------
def _draw_cycle(rng, profile: TortureProfile, horizon: int) -> int:
    """One biased placement: uniform / boundary-biased / phase-locked."""
    roll = rng.random()
    if roll < 0.4 or (not profile.mark_cycles
                      and not profile.isr_entry_cycles):
        return rng.randrange(1, horizon)
    if roll < 0.75 and profile.mark_cycles:
        # Boundary-biased: land just around a golden MARK commit.
        return max(1, rng.choice(profile.mark_cycles)
                   + rng.randrange(-4, 12))
    if profile.isr_entry_cycles:
        # Phase-locked: around a golden handler entry, where frame state
        # is in flight (the repro.periph.attack surface).
        return max(1, rng.choice(profile.isr_entry_cycles)
                   + rng.randrange(-24, 48))
    return rng.randrange(1, horizon)


def _draw_budget(rng, contract: SchemeContract,
                 profile: TortureProfile) -> Optional[int]:
    """Energy-biased announced budget (or None for unannounced)."""
    choices = []
    if "none" in contract.budgets:
        choices += ["none"] * 4
    if "ample" in contract.budgets:
        choices += ["ample"] * 3
    if "torn" in contract.budgets:
        choices += ["torn"] * 3
    kind = rng.choice(choices)
    if kind == "none":
        return None
    if kind == "ample":
        return AMPLE_BUDGET
    # Torn: enough for a prefix of the image, never the commit markers.
    return rng.randrange(0, max(2, profile.image_cycles))


def generate_schedule(profile: TortureProfile, scheme: str, rng,
                      events_min: int = 2,
                      events_max: int = 10) -> TortureSchedule:
    """One seeded adversarial schedule inside the scheme contract.

    ``rng`` is a :class:`random.Random` (spawn one per case with
    :func:`repro.seeds.spawn_rng` — never share streams across cases).
    """
    contract = SCHEME_CONTRACTS.get(scheme)
    if contract is None:
        raise TortureError(f"unknown scheme {scheme!r} "
                           f"(want one of {', '.join(SCHEME_NAMES)})")
    if not 1 <= events_min <= events_max:
        raise TortureError("need 1 <= events_min <= events_max")
    horizon = max(16, int(profile.total_cycles * 1.5)) + 256
    kinds = [POWER_FAIL] * 6
    if CKPT_FAULT in contract.kinds:
        kinds += [CKPT_FAULT] * 2
    if profile.has_periph and profile.vectors \
            and ISR_BURST in contract.kinds:
        kinds += [ISR_BURST] * 2
    if DATA_FAULT in contract.kinds:
        kinds += [DATA_FAULT] * 2
    count = rng.randint(events_min, events_max)
    events: List[TortureEvent] = []
    for _ in range(count):
        kind = rng.choice(kinds)
        at = _draw_cycle(rng, profile, horizon)
        if kind == POWER_FAIL:
            repeat = rng.randint(1, 4) if rng.random() < 0.3 else 0
            events.append(TortureEvent(
                kind=kind, at_cycle=at,
                ckpt_budget=_draw_budget(rng, contract, profile),
                repeat=repeat,
                gap_steps=rng.randrange(0, 12) if repeat else 0))
        elif kind == CKPT_FAULT:
            mode = rng.choice(CKPT_MODES)
            events.append(TortureEvent(
                kind=kind, at_cycle=at, mode=mode,
                word=rng.randrange(0, NUM_REGS + 3),
                bit=rng.randrange(32),
                cut=rng.randrange(0, NUM_REGS + 3)))
        elif kind == ISR_BURST:
            events.append(TortureEvent(
                kind=kind, at_cycle=at,
                vector=rng.choice(profile.vectors)))
        else:
            events.append(TortureEvent(
                kind=kind, at_cycle=at,
                model=rng.choice(DATA_MODELS),
                reg=rng.randrange(NUM_REGS),
                bit=rng.randrange(32)))
    schedule = TortureSchedule(events=tuple(events))
    validate_schedule(schedule, scheme, profile)
    return schedule


def simplify_event(event: TortureEvent, scheme: str
                   ) -> List[TortureEvent]:
    """Simpler variants of one event, most aggressive first (the
    shrinker's per-event move set; every variant stays in contract)."""
    contract = SCHEME_CONTRACTS[scheme]
    out: List[TortureEvent] = []

    def push(**changes) -> None:
        candidate = replace(event, **changes)
        if candidate != event:
            out.append(candidate)

    if event.repeat:
        push(repeat=0, gap_steps=0)
        if event.repeat > 1:
            push(repeat=event.repeat // 2)
    if event.gap_steps:
        push(gap_steps=0)
    if event.kind == POWER_FAIL and event.ckpt_budget is not None \
            and "none" in contract.budgets:
        push(ckpt_budget=None)
    if event.kind == DATA_FAULT:
        if event.bit:
            push(bit=0)
        if event.reg:
            push(reg=0)
    if event.kind == CKPT_FAULT:
        if event.bit:
            push(bit=0)
        if event.word:
            push(word=0)
        if event.cut:
            push(cut=0)
    for div in (10_000, 1_000, 100, 10):
        rounded = event.at_cycle - event.at_cycle % div
        if rounded != event.at_cycle and rounded > 0:
            push(at_cycle=rounded)
    return out
