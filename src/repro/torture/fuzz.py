"""Seeded fuzzing campaigns: generate, run, check, shrink, persist.

One campaign = one :class:`TortureSpec`: a (workload, scheme) target, a
root seed, and a case count.  Schedules are drawn per case from a
seed-sequence-spawned child stream (:func:`repro.seeds.spawn_rng` —
never ``seed + i``), so the campaign is deterministic, order-free, and
uncorrelated across cases.

Cases fan out through :class:`~repro.eval.resilient.ResilientExecutor`
(per-case watchdogs, crash recovery, retries for infrastructure
failures — oracle violations are ``invariant_violation`` and never
retried).  Each case optionally cross-checks the two execution backends
on the identical schedule (the ``backend_equivalence`` oracle).  The
campaign fingerprint digests every case outcome in index order, so a
serial run and a 8-worker run of the same spec must produce the same
fingerprint — the executor cannot silently change results.

Violations are shrunk serially in the parent (shrinking is a sequential
search) and deduped into :class:`~repro.torture.corpus.ReproCase`
records ready for the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..eval.resilient import ResilientExecutor, RetryPolicy, TaskResult
from ..seeds import spawn_rng
from ..store.digest import content_digest
from .corpus import ReproCase
from .engine import TortureOutcome, build_target, run_schedule
from .oracles import BACKEND_EQUIV, Violation
from .schedule import TortureSchedule, generate_schedule
from .shrink import DEFAULT_SHRINK_RUNS, shrink_schedule

__all__ = ["CaseResult", "TortureReport", "TortureSpec", "run_campaign"]


@dataclass(frozen=True)
class TortureSpec:
    """One reproducible fuzzing campaign."""

    workload: str
    scheme: str
    seed: int = 0
    cases: int = 50
    events_min: int = 2
    events_max: int = 10
    backend: str = "interpreter"
    #: also run the threaded backend on every schedule and add a
    #: ``backend_equivalence`` violation when fingerprints differ.
    check_backends: bool = True
    region_budget: Optional[int] = None
    max_steps: Optional[int] = None
    shrink: bool = True
    shrink_budget: int = DEFAULT_SHRINK_RUNS

    def to_dict(self) -> dict:
        return {
            "workload": self.workload, "scheme": self.scheme,
            "seed": self.seed, "cases": self.cases,
            "events_min": self.events_min, "events_max": self.events_max,
            "backend": self.backend,
            "check_backends": self.check_backends,
            "region_budget": self.region_budget,
            "max_steps": self.max_steps,
        }


@dataclass
class CaseResult:
    """One fuzz case: its schedule and what the oracles said."""

    index: int
    schedule: TortureSchedule
    outcome: TortureOutcome
    shrunk: Optional[TortureSchedule] = None
    shrink_runs: int = 0
    error: Optional[str] = None  # infrastructure failure, not a finding

    @property
    def violating(self) -> bool:
        return bool(self.outcome.violations)


@dataclass
class TortureReport:
    """Campaign summary: every case, every finding, one fingerprint."""

    spec: TortureSpec
    cases: List[CaseResult] = field(default_factory=list)
    repro_cases: List[ReproCase] = field(default_factory=list)
    fingerprint: str = ""
    errors: int = 0

    @property
    def violations(self) -> int:
        return sum(1 for case in self.cases if case.violating)

    def summary(self) -> dict:
        oracle_counts: Dict[str, int] = {}
        for case in self.cases:
            for oracle in case.outcome.oracles():
                oracle_counts[oracle] = oracle_counts.get(oracle, 0) + 1
        return {
            "spec": self.spec.to_dict(),
            "cases": len(self.cases),
            "violations": self.violations,
            "errors": self.errors,
            "oracles": dict(sorted(oracle_counts.items())),
            "repro_cases": len(self.repro_cases),
            "fingerprint": self.fingerprint,
        }


# ----------------------------------------------------------------------
# Worker plumbing (module-level: must pickle under ``spawn``).
# ----------------------------------------------------------------------
_WORKER_SPEC: Optional[TortureSpec] = None


def _init_worker(spec: TortureSpec) -> None:
    """Pool initializer: compile the target once per worker process."""
    global _WORKER_SPEC
    _WORKER_SPEC = spec
    build_target(spec.workload, spec.scheme,
                 region_budget=spec.region_budget)


def _run_case(payload: dict) -> dict:
    """Execute one case in a worker; returns plain data only."""
    spec = _WORKER_SPEC
    if spec is None:  # serial path without initializer, or bare call
        spec = TortureSpec(**payload["spec"])
    target = build_target(spec.workload, spec.scheme,
                          region_budget=spec.region_budget)
    schedule = TortureSchedule.from_dicts(payload["events"])
    outcome = run_schedule(target, schedule, spec.backend,
                           max_steps=spec.max_steps)
    if spec.check_backends:
        other = "threaded" if spec.backend == "interpreter" \
            else "interpreter"
        mirror = run_schedule(target, schedule, other,
                              max_steps=spec.max_steps)
        if mirror.fingerprint != outcome.fingerprint:
            outcome.violations.append(Violation(
                BACKEND_EQUIV,
                f"{spec.backend} and {other} fingerprints diverge on "
                f"the identical schedule "
                f"({outcome.fingerprint[:12]} != "
                f"{mirror.fingerprint[:12]})"))
    return outcome.to_dict()


# ----------------------------------------------------------------------
# The campaign.
# ----------------------------------------------------------------------
def generate_case(spec: TortureSpec, index: int,
                  profile) -> TortureSchedule:
    """The deterministic schedule for case ``index`` of ``spec``."""
    rng = spawn_rng(spec.seed, "torture", spec.workload, spec.scheme,
                    "case", index)
    return generate_schedule(profile, spec.scheme, rng,
                             events_min=spec.events_min,
                             events_max=spec.events_max)


def run_campaign(spec: TortureSpec, workers: int = 1,
                 policy: Optional[RetryPolicy] = None,
                 progress=None) -> TortureReport:
    """Run the whole campaign; deterministic for a given spec.

    ``workers > 1`` fans cases out through the resilient pool; the
    report fingerprint is computed over index-ordered outcomes either
    way, so serial and parallel runs of one spec are interchangeable.
    """
    target = build_target(spec.workload, spec.scheme,
                          region_budget=spec.region_budget)
    schedules = [generate_case(spec, index, target.profile)
                 for index in range(spec.cases)]
    tasks = [(index, {"spec": spec.to_dict(),
                      "events": schedule.to_dicts()})
             for index, schedule in enumerate(schedules)]
    executor = ResilientExecutor(
        _run_case, workers=workers, policy=policy,
        initializer=_init_worker, initargs=(spec,))
    results: List[TaskResult] = executor.run(tasks)

    report = TortureReport(spec=spec)
    outcome_digest: List[Tuple[int, str]] = []
    for result in results:
        schedule = schedules[result.index]
        if result.ok:
            outcome = TortureOutcome.from_dict(result.result)
            case = CaseResult(index=result.index, schedule=schedule,
                              outcome=outcome)
        else:
            report.errors += 1
            case = CaseResult(index=result.index, schedule=schedule,
                              outcome=TortureOutcome(),
                              error=f"{result.error_kind}: "
                                    f"{result.error}")
        report.cases.append(case)
        outcome_digest.append((result.index,
                               content_digest(case.outcome.to_dict())
                               if result.ok else "error"))
        if progress is not None:
            progress(case)

    report.fingerprint = content_digest(outcome_digest)

    # Shrinking is a sequential search: do it in the parent, serially,
    # only for the violating cases (usually few).
    if spec.shrink:
        seen: set = set()
        for case in report.cases:
            if not case.violating:
                continue
            first = case.outcome.violations[0]
            shrunk = shrink_schedule(
                target, case.schedule, first.oracle,
                backend=spec.backend, max_steps=spec.max_steps,
                run_budget=spec.shrink_budget)
            case.shrunk = shrunk.schedule
            case.shrink_runs = shrunk.runs
            repro = make_repro_case(spec, case, target)
            if repro.digest not in seen:
                seen.add(repro.digest)
                report.repro_cases.append(repro)
    return report


def make_repro_case(spec: TortureSpec, case: CaseResult,
                    target=None) -> ReproCase:
    """Package a violating case (shrunk if available) as a ReproCase."""
    if target is None:
        target = build_target(spec.workload, spec.scheme,
                              region_budget=spec.region_budget)
    schedule = case.shrunk if case.shrunk is not None else case.schedule
    first = case.outcome.violations[0]
    fingerprints = {
        backend: run_schedule(target, schedule, backend,
                              max_steps=spec.max_steps).fingerprint
        for backend in ("interpreter", "threaded")}
    return ReproCase(
        workload=spec.workload, scheme=spec.scheme,
        events=tuple(schedule.to_dicts()),
        oracle=first.oracle, detail=first.detail,
        region_budget=spec.region_budget, backend=spec.backend,
        fingerprints=fingerprints, seed=spec.seed,
        case_index=case.index)
