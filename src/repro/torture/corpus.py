"""The failure corpus: shrunk violations as durable regression cases.

A :class:`ReproCase` is the end product of the torture pipeline — a
minimal schedule, the oracle it violates, and the per-backend outcome
fingerprints recorded when it was found.  Cases are digest-keyed by
their *identity* (target + schedule + oracle, not the mutable outcome
facts), stored in the PR 7 :class:`~repro.store.ResultStore` with
``fsync=True`` puts (a shrunk failure is far more expensive to
rediscover than an fsync costs), and replayed bit-identically later:
:func:`TortureCorpus.replay` re-runs the schedule on each recorded
backend and demands both that the oracle still fires and that the
fingerprint matches the recorded one word-for-word.

The corpus is how a fuzzing campaign becomes a standing regression
suite: CI replays every stored case on every change, so a consistency
bug fixed once can never quietly come back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..store.digest import content_digest
from ..store.store import ResultStore
from .engine import TortureTarget, build_target, run_schedule
from .oracles import BACKEND_EQUIV
from .schedule import TortureSchedule

__all__ = ["CORPUS_KIND", "ReproCase", "ReplayResult", "TortureCorpus",
           "record_fingerprints"]

#: ``meta["kind"]`` tag distinguishing corpus entries from other store
#: tenants sharing the same root.
CORPUS_KIND = "torture-repro"


@dataclass(frozen=True)
class ReproCase:
    """One minimal, replayable oracle violation."""

    workload: str
    scheme: str
    events: Tuple[dict, ...]  # canonical event dicts (TortureEvent.to_dict)
    oracle: str
    detail: str = ""
    region_budget: Optional[int] = None
    backend: str = "interpreter"
    #: backend name -> outcome fingerprint recorded when the case was
    #: found; replay must reproduce these bit-identically.
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: provenance: the campaign seed and case index that found it.
    seed: Optional[int] = None
    case_index: Optional[int] = None

    @property
    def digest(self) -> str:
        """Identity digest: target + schedule + oracle.

        Outcome facts (fingerprints, detail, provenance) stay out so a
        re-found case dedupes against the stored one.
        """
        return content_digest({
            "kind": CORPUS_KIND,
            "workload": self.workload,
            "scheme": self.scheme,
            "region_budget": self.region_budget,
            "events": list(self.events),
            "oracle": self.oracle,
        })

    def schedule(self) -> TortureSchedule:
        return TortureSchedule.from_dicts(self.events)

    def target(self) -> TortureTarget:
        return build_target(self.workload, self.scheme,
                            region_budget=self.region_budget)

    def to_dict(self) -> dict:
        out = {
            "workload": self.workload,
            "scheme": self.scheme,
            "events": list(self.events),
            "oracle": self.oracle,
            "detail": self.detail,
            "backend": self.backend,
            "fingerprints": dict(self.fingerprints),
        }
        if self.region_budget is not None:
            out["region_budget"] = self.region_budget
        if self.seed is not None:
            out["seed"] = self.seed
        if self.case_index is not None:
            out["case_index"] = self.case_index
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ReproCase":
        return cls(
            workload=data["workload"],
            scheme=data["scheme"],
            events=tuple(dict(e) for e in data["events"]),
            oracle=data["oracle"],
            detail=data.get("detail", ""),
            region_budget=data.get("region_budget"),
            backend=data.get("backend", "interpreter"),
            fingerprints=dict(data.get("fingerprints", {})),
            seed=data.get("seed"),
            case_index=data.get("case_index"),
        )


@dataclass
class ReplayResult:
    """Replay verdict for one case on one backend."""

    digest: str
    backend: str
    reproduced: bool  # oracle fired again
    bit_identical: bool  # fingerprint matched the recorded one
    fingerprint: str
    recorded: str

    @property
    def ok(self) -> bool:
        return self.reproduced and self.bit_identical


def record_fingerprints(case: ReproCase,
                        backends: Tuple[str, ...] = ("interpreter",
                                                     "threaded"),
                        max_steps: Optional[int] = None) -> ReproCase:
    """A copy of ``case`` with fresh fingerprints on ``backends``."""
    target = case.target()
    schedule = case.schedule()
    prints = {backend: run_schedule(target, schedule, backend,
                                    max_steps=max_steps).fingerprint
              for backend in backends}
    data = case.to_dict()
    data["fingerprints"] = prints
    return ReproCase.from_dict(data)


class TortureCorpus:
    """Digest-keyed repro cases over a :class:`ResultStore` root."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store

    @classmethod
    def open(cls, root: str) -> "TortureCorpus":
        return cls(ResultStore(root))

    def add(self, case: ReproCase,
            extra_meta: Optional[dict] = None) -> Tuple[str, bool]:
        """Persist ``case`` durably; returns ``(digest, was_new)``."""
        meta = {"kind": CORPUS_KIND, "oracle": case.oracle,
                "workload": case.workload, "scheme": case.scheme,
                "events": len(case.events)}
        if extra_meta:
            meta.update(extra_meta)
        digest = case.digest
        return digest, self.store.put(digest, case.to_dict(), meta=meta,
                                      fsync=True)

    def get(self, digest: str) -> Optional[ReproCase]:
        entry = self.store.get(digest)
        if entry is None or (entry.get("meta") or {}).get("kind") \
                != CORPUS_KIND:
            return None
        return ReproCase.from_dict(entry["value"])

    def cases(self) -> Iterator[Tuple[str, ReproCase]]:
        """All corpus cases (skipping other tenants), digest order."""
        for digest, entry in self.store.entries():
            if (entry.get("meta") or {}).get("kind") != CORPUS_KIND:
                continue
            yield digest, ReproCase.from_dict(entry["value"])

    def __len__(self) -> int:
        return sum(1 for _ in self.cases())

    # ------------------------------------------------------------------
    def replay(self, case: ReproCase,
               backends: Optional[Tuple[str, ...]] = None,
               max_steps: Optional[int] = None) -> List[ReplayResult]:
        """Re-run ``case`` and verify oracle + fingerprint per backend.

        Backends default to every backend the case recorded a
        fingerprint for (falling back to the case's finding backend).
        ``backend_equivalence`` cases reproduce when the two recorded
        fingerprints differ the same way: each backend must still match
        its own recording.
        """
        target = case.target()
        schedule = case.schedule()
        if backends is None:
            backends = tuple(sorted(case.fingerprints)) \
                or (case.backend,)
        results: List[ReplayResult] = []
        outcomes = {}
        for backend in backends:
            outcome = run_schedule(target, schedule, backend,
                                   max_steps=max_steps)
            outcomes[backend] = outcome
            recorded = case.fingerprints.get(backend, "")
            if case.oracle == BACKEND_EQUIV:
                reproduced = True  # judged across backends below
            else:
                reproduced = case.oracle in outcome.oracles()
            results.append(ReplayResult(
                digest=case.digest, backend=backend,
                reproduced=reproduced,
                bit_identical=(not recorded
                               or outcome.fingerprint == recorded),
                fingerprint=outcome.fingerprint, recorded=recorded))
        if case.oracle == BACKEND_EQUIV and len(outcomes) >= 2:
            prints = {o.fingerprint for o in outcomes.values()}
            diverged = len(prints) > 1
            for result in results:
                result.reproduced = diverged
        return results

    def replay_all(self, backends: Optional[Tuple[str, ...]] = None,
                   max_steps: Optional[int] = None
                   ) -> Dict[str, List[ReplayResult]]:
        return {digest: self.replay(case, backends=backends,
                                    max_steps=max_steps)
                for digest, case in self.cases()}
