"""repro.torture: the adversarial crash-consistency fuzzer.

The standing proof engine behind the repo's central claim — that JIT
checkpoints stay consistent under adversarial EMI.  The hand-written
crash-consistency test crashes on fixed periods; the torture fuzzer
generates randomized interleavings of power failures (boundary- and
ISR-phase-biased, including repeated failure-during-recovery),
checkpoint-image EMI faults, architectural data faults, and forged ISR
bursts, then holds every run to a library of invariant oracles.  Every
violation is delta-debugged down to a minimal replayable
:class:`~repro.torture.corpus.ReproCase` and persisted in the
content-addressed result store as a regression corpus.

Module map:

``schedule``  event model, scheme contracts, seeded generator, shrink moves
``oracles``   the invariant library and its applicability rules
``engine``    deterministic schedule replay on either backend
``shrink``    ddmin + per-event simplification under a run budget
``corpus``    digest-keyed ReproCase store with bit-identical replay
``fuzz``      seeded campaigns through the resilient executor
"""

from .corpus import (
    CORPUS_KIND,
    ReplayResult,
    ReproCase,
    TortureCorpus,
    record_fingerprints,
)
from .engine import TortureOutcome, TortureTarget, build_target, run_schedule
from .fuzz import CaseResult, TortureReport, TortureSpec, run_campaign
from .oracles import (
    BACKEND_EQUIV,
    FORWARD_PROGRESS,
    GOLDEN_OUTPUT,
    ISR_AT_LEAST_ONCE,
    MACHINE_FAULT,
    ORACLE_NAMES,
    TORN_STATE,
    Violation,
)
from .schedule import (
    AMPLE_BUDGET,
    CKPT_FAULT,
    DATA_FAULT,
    EVENT_KINDS,
    ISR_BURST,
    POWER_FAIL,
    SCHEME_CONTRACTS,
    SCHEME_NAMES,
    TortureError,
    TortureEvent,
    TortureProfile,
    TortureSchedule,
    generate_schedule,
    validate_schedule,
)
from .shrink import ShrinkResult, shrink_schedule

__all__ = [
    "AMPLE_BUDGET",
    "BACKEND_EQUIV",
    "CKPT_FAULT",
    "CORPUS_KIND",
    "CaseResult",
    "DATA_FAULT",
    "EVENT_KINDS",
    "FORWARD_PROGRESS",
    "GOLDEN_OUTPUT",
    "ISR_AT_LEAST_ONCE",
    "ISR_BURST",
    "MACHINE_FAULT",
    "ORACLE_NAMES",
    "POWER_FAIL",
    "ReplayResult",
    "ReproCase",
    "SCHEME_CONTRACTS",
    "SCHEME_NAMES",
    "ShrinkResult",
    "TORN_STATE",
    "TortureCorpus",
    "TortureError",
    "TortureEvent",
    "TortureOutcome",
    "TortureProfile",
    "TortureReport",
    "TortureSchedule",
    "TortureSpec",
    "TortureTarget",
    "Violation",
    "build_target",
    "generate_schedule",
    "record_fingerprints",
    "run_campaign",
    "run_schedule",
    "shrink_schedule",
    "validate_schedule",
]
