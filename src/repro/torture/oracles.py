"""Invariant oracles: what every torture run must uphold, and when.

Each oracle is a named predicate over an in-flight or finished torture
run.  Oracles carry *applicability* rules, because a violated oracle is
only a bug when the schedule stayed inside the scheme's contract and the
oracle's own preconditions:

``golden_output``
    Committed output equals the failure-free golden run.  Applies only
    when the schedule contains *consistency* events (power failures and
    checkpoint faults): a ``data_fault`` legitimately corrupts data (an
    SDC is a classification, not a reproduction bug) and an ``isr_burst``
    forges device activity the firmware never promised to mask.
``torn_state``
    Checkpoint / recovery atomicity: after every recovery — and at halt —
    no torn ``__jit_*`` bookkeeping, no out-of-range pc, no corrupt or
    leftover ISR frame stack is observable.  A halted machine still
    "inside a handler" is the signature of a lost activation.
``isr_at_least_once``
    Every handler activation the hub dropped at a stale-frame heal must
    be delivered again later or still be pending at halt (the at-least-
    once re-delivery contract real MCUs give firmware).
``forward_progress``
    No livelock: consecutive *compliant* failures (enough cycles between
    recovery and the next failure for a region to commit) must advance
    durable progress; and the whole run must halt within the step
    watchdog once the schedule is exhausted.
``backend_equivalence``
    The interpreter and threaded backends produce bit-identical
    fingerprints on the identical schedule.
``machine_fault``
    The machine must never trap (bad pc, wild address) under an
    in-contract schedule — a trap after recovery is torn state made
    architectural.

The engine records violations as plain data (:class:`Violation`); strict
consumers (replay, the executor fan-out) can escalate them to
:class:`~repro.errors.InvariantViolation`, which
:mod:`repro.eval.resilient` classifies as non-retryable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .schedule import CKPT_FAULT, DATA_FAULT, POWER_FAIL, TortureSchedule

__all__ = [
    "BACKEND_EQUIV",
    "FORWARD_PROGRESS",
    "GOLDEN_OUTPUT",
    "ISR_AT_LEAST_ONCE",
    "MACHINE_FAULT",
    "ORACLE_NAMES",
    "TORN_STATE",
    "Violation",
    "crash_applies",
    "golden_applies",
]

GOLDEN_OUTPUT = "golden_output"
TORN_STATE = "torn_state"
ISR_AT_LEAST_ONCE = "isr_at_least_once"
FORWARD_PROGRESS = "forward_progress"
BACKEND_EQUIV = "backend_equivalence"
MACHINE_FAULT = "machine_fault"

ORACLE_NAMES = (GOLDEN_OUTPUT, TORN_STATE, ISR_AT_LEAST_ONCE,
                FORWARD_PROGRESS, BACKEND_EQUIV, MACHINE_FAULT)

#: Event kinds under which committed output must still equal golden.
_CONSISTENCY_KINDS = frozenset({POWER_FAIL, CKPT_FAULT})


def golden_applies(schedule: TortureSchedule) -> bool:
    """Does the golden-output oracle bind for this schedule?"""
    return schedule.kinds <= _CONSISTENCY_KINDS


def crash_applies(schedule: TortureSchedule) -> bool:
    """Do the crash-class oracles (``machine_fault``,
    ``forward_progress``) bind for this schedule?

    A ``data_fault`` can legitimately corrupt an index register (an
    out-of-bounds trap) or a loop counter (a 2^32-iteration stall) —
    those are SDC/crash *classifications* of an architectural fault, not
    consistency bugs.  Checkpoint faults stay in scope: a runtime that
    restores a corrupt image into a trap or a livelock is exactly the
    failure the paper's detection exists to prevent.
    """
    return DATA_FAULT not in schedule.kinds


@dataclass(frozen=True)
class Violation:
    """One oracle violation, as replayable plain data."""

    oracle: str
    detail: str
    event_index: Optional[int] = None

    def to_dict(self) -> dict:
        out = {"oracle": self.oracle, "detail": self.detail}
        if self.event_index is not None:
            out["event"] = self.event_index
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(oracle=data["oracle"], detail=data["detail"],
                   event_index=data.get("event"))


def oracles_of(violations: List[Violation]) -> frozenset:
    return frozenset(violation.oracle for violation in violations)
