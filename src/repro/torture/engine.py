"""The torture engine: replay one adversarial schedule, check oracles.

The engine drives a :class:`~repro.runtime.machine.Machine` plus a
crash-consistency runtime the same way ``tests/test_crash_consistency.py``
does, but events land at *exact cycle boundaries* under either execution
backend: execution advances in bulk slices of
``(target_cycle - cycles) // max_instr_cycles`` instructions — which can
never overshoot the target cycle — then single-steps the residue, so the
first instruction boundary at or past the event cycle is found
identically by the interpreter and the threaded backend.  Everything the
engine itself does (announce, power-cycle, arm faults, pend vectors)
happens between slices on architectural state both backends share, which
is what makes torture fingerprints backend-portable and schedules
replayable bit-for-bit.

A run produces a :class:`TortureOutcome`: the oracle violations (see
:mod:`repro.torture.oracles`), a content-digest fingerprint over the
final architectural state, and enough diagnostics to label a corpus
entry.  ``strict=True`` escalates the first violation to
:class:`~repro.errors.InvariantViolation` for executor fan-outs that
must never retry oracle failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import compile_scheme
from ..errors import InvariantViolation, MachineFault, SimulationError
from ..isa.instructions import CYCLES, Opcode
from ..isa.program import ISR_MAX_DEPTH
from ..runtime.backend import backend_for
from ..runtime.gecko_runtime import GeckoRuntime
from ..runtime.machine import Machine
from ..runtime.nvp import NVPRuntime
from ..runtime.rollback import RollbackRuntime
from ..store.digest import content_digest
from ..workloads import REGISTRY, source
from .oracles import (
    FORWARD_PROGRESS,
    GOLDEN_OUTPUT,
    ISR_AT_LEAST_ONCE,
    MACHINE_FAULT,
    TORN_STATE,
    Violation,
    crash_applies,
    golden_applies,
)
from .schedule import (
    CKPT_FAULT,
    DATA_FAULT,
    ISR_BURST,
    POWER_FAIL,
    SCHEME_CONTRACTS,
    TortureError,
    TortureProfile,
    TortureSchedule,
    validate_schedule,
)

__all__ = [
    "TortureOutcome",
    "TortureTarget",
    "build_target",
    "run_schedule",
]

_ST = CYCLES[Opcode.ST]

#: Region budget used for gecko compiles of kernel workloads (matches the
#: crash-consistency tests); reactive workloads keep the compiler default
#: so handler WCETs fit.
KERNEL_GECKO_BUDGET = 1500

#: Golden profiling step cap (reactive iterations halt far below this).
_GOLDEN_STEP_CAP = 3_000_000

#: Consecutive compliant zero-progress failures that count as livelock.
_STALL_LIMIT = 3


# ----------------------------------------------------------------------
# Targets.
# ----------------------------------------------------------------------
@dataclass
class TortureTarget:
    """One compiled victim plus its golden-run facts, reusable across
    many schedules (compile once, torture thousands of times)."""

    workload: str
    scheme: str
    region_budget: Optional[int]
    compiled: object
    golden_out: Tuple[int, ...]
    golden_steps: int
    profile: TortureProfile
    max_instr_cycles: int

    @property
    def linked(self):
        return self.compiled.linked

    @property
    def base_scheme(self) -> str:
        return self.scheme.split("-")[0]

    @property
    def rollback_mode(self) -> bool:
        return self.scheme == "gecko-rollback"


_TARGET_CACHE: Dict[Tuple[str, str, Optional[int]], TortureTarget] = {}


def build_target(workload: str, scheme: str,
                 region_budget: Optional[int] = None) -> TortureTarget:
    """Compile ``workload`` for ``scheme`` and profile its golden run."""
    if scheme not in SCHEME_CONTRACTS:
        raise TortureError(
            f"unknown scheme {scheme!r} "
            f"(want one of {', '.join(sorted(SCHEME_CONTRACTS))})")
    entry = REGISTRY.get(workload)
    if entry is None:
        raise TortureError(f"unknown workload {workload!r}")
    base = scheme.split("-")[0]
    if base == "gecko" and region_budget is None \
            and entry.kind == "kernel":
        region_budget = KERNEL_GECKO_BUDGET
    key = (workload, scheme, region_budget)
    cached = _TARGET_CACHE.get(key)
    if cached is not None:
        return cached
    if base == "gecko":
        kwargs = {} if region_budget is None \
            else {"region_budget": region_budget}
        compiled = compile_scheme(source(workload), "gecko", **kwargs)
    else:
        compiled = compile_scheme(source(workload), base)

    machine = Machine(compiled.linked)
    mark_cycles: List[int] = []
    marks_seen = 0
    steps = 0
    while not machine.halted and steps < _GOLDEN_STEP_CAP:
        machine.step()
        steps += 1
        if machine.marks_executed != marks_seen:
            marks_seen = machine.marks_executed
            mark_cycles.append(machine.cycles)
    if not machine.halted:
        raise TortureError(
            f"golden run of {workload}/{scheme} did not halt within "
            f"{_GOLDEN_STEP_CAP} steps")
    hub = machine._periph
    isr_entries = tuple(span.entry_cycles for span in hub.trace) \
        if hub is not None else ()
    vectors = tuple(sorted(hub._vectors)) if hub is not None else ()
    profile = TortureProfile(
        total_cycles=machine.cycles,
        mark_cycles=tuple(mark_cycles),
        isr_entry_cycles=isr_entries,
        image_cycles=NVPRuntime.checkpoint_size_words(8) * _ST,
        has_periph=hub is not None,
        vectors=vectors,
    )
    target = TortureTarget(
        workload=workload, scheme=scheme, region_budget=region_budget,
        compiled=compiled, golden_out=tuple(machine.committed_out),
        golden_steps=machine.instr_count, profile=profile,
        max_instr_cycles=max(i.cycles for i in compiled.linked.instrs),
    )
    _TARGET_CACHE[key] = target
    return target


# ----------------------------------------------------------------------
# Engine-side fault hooks.
# ----------------------------------------------------------------------
class _StepFaultHook:
    """Queue of one-shot architectural faults, applied at the next
    instruction boundary.  ``fired`` lets the threaded backend resume
    whole-block execution once nothing is armed."""

    def __init__(self) -> None:
        self._armed: List[Tuple[str, int, int]] = []

    @property
    def fired(self) -> bool:
        return not self._armed

    def arm(self, model: str, reg: int, bit: int) -> None:
        self._armed.append((model, reg, bit))

    def before_step(self, machine) -> bool:
        if not self._armed:
            return False
        model, reg, bit = self._armed.pop(0)
        if model == "reg_flip":
            machine.regs[reg] ^= 1 << bit
            return False
        return True  # instr_skip


class _CkptFaultHook:
    """Queue of checkpoint-image faults, consumed by the next JIT
    checkpoint (the :meth:`NVPRuntime.jit_checkpoint` hook point).
    Both modes also cut the write budget short of the commit markers:
    the glitch that corrupts the image is the same glitch that keeps
    the checkpoint from committing (paper §IV-B2)."""

    def __init__(self) -> None:
        self._armed: List[object] = []

    def arm(self, event) -> None:
        self._armed.append(event)

    def on_checkpoint(self, writes, budget):
        if not self._armed:
            return writes, budget
        event = self._armed.pop(0)
        writes = list(writes)
        image_words = max(1, len(writes) - 2)  # markers excluded
        if event.mode == "corrupt":
            index = event.word % image_words
            sym, off, value = writes[index]
            writes[index] = (sym, off, value ^ (1 << event.bit))
            budget = min(budget, image_words)
        else:  # truncate
            budget = min(budget, min(event.cut, image_words))
        return writes, budget


# ----------------------------------------------------------------------
# Outcomes.
# ----------------------------------------------------------------------
@dataclass
class TortureOutcome:
    """Everything one torture run produced, as replayable plain data."""

    violations: List[Violation] = field(default_factory=list)
    fingerprint: str = ""
    committed_out: Tuple[int, ...] = ()
    halted: bool = False
    cycles: int = 0
    instr_count: int = 0
    crashes: int = 0
    deliveries: int = 0
    heals: int = 0
    triggered: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def oracles(self) -> frozenset:
        return frozenset(v.oracle for v in self.violations)

    def to_dict(self) -> dict:
        return {
            "violations": [v.to_dict() for v in self.violations],
            "fingerprint": self.fingerprint,
            "out": list(self.committed_out),
            "halted": self.halted,
            "cycles": self.cycles,
            "steps": self.instr_count,
            "crashes": self.crashes,
            "deliveries": self.deliveries,
            "heals": self.heals,
            "triggered": self.triggered,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TortureOutcome":
        return cls(
            violations=[Violation.from_dict(v)
                        for v in data.get("violations", ())],
            fingerprint=data.get("fingerprint", ""),
            committed_out=tuple(data.get("out", ())),
            halted=data.get("halted", False),
            cycles=data.get("cycles", 0),
            instr_count=data.get("steps", 0),
            crashes=data.get("crashes", 0),
            deliveries=data.get("deliveries", 0),
            heals=data.get("heals", 0),
            triggered=data.get("triggered", 0),
        )


# ----------------------------------------------------------------------
# The run.
# ----------------------------------------------------------------------
class _TortureRun:
    def __init__(self, target: TortureTarget, schedule: TortureSchedule,
                 backend: str, max_steps: Optional[int]) -> None:
        self.target = target
        self.schedule = schedule
        self.backend = backend_for(backend) \
            if isinstance(backend, str) else backend
        self.machine = Machine(target.linked)
        self.symtab = target.linked.symtab
        self.code_size = len(target.linked.instrs)
        base = target.base_scheme
        if base == "nvp":
            self.runtime = NVPRuntime()
        elif base == "ratchet":
            self.runtime = RollbackRuntime(target.linked)
        else:
            self.runtime = GeckoRuntime(target.linked)
        self.step_hook = _StepFaultHook()
        self.ckpt_hook = _CkptFaultHook()
        self.machine.attach(fault_hook=self.step_hook)
        if base in ("nvp", "gecko"):
            self.runtime.attach(fault_hook=self.ckpt_hook)
        # gecko-rollback pins pure-rollback mode (the Ratchet convention
        # of the crash tests): never tick, re-pin __mode after reboots.
        self.ticks = base == "gecko" and not target.rollback_mode
        # Watchdog: generous against legitimate re-execution overhead
        # (each of the <= ~64 possible failures redoes at most one
        # region, and regions are far smaller than the golden run), but
        # tight enough that livelock probes — which always burn the
        # whole budget — stay cheap for the shrinker.
        self.remaining = max_steps if max_steps is not None \
            else target.golden_steps * 50 + 60_000
        budget = target.region_budget
        if budget is None:
            from ..core import DEFAULT_REGION_BUDGET
            budget = DEFAULT_REGION_BUDGET
        self.progress_window = 3 * budget + 2000
        self.track_progress = base in ("ratchet", "gecko")
        self.crash_oracles = crash_applies(schedule)
        self.violations: List[Violation] = []
        self.crashes = 0
        self.triggered = 0
        self.fault: Optional[Exception] = None
        self._stall = 0
        self._last_progress: Optional[Tuple[int, int]] = None
        self._last_recovery_cycles = 0

    # -- plumbing ------------------------------------------------------
    @property
    def hub(self):
        return self.machine._periph

    def _read(self, name: str, default: int = 0) -> int:
        if name not in self.symtab:
            return default
        return self.machine.read_word(name)

    def _progress(self) -> Tuple[int, int]:
        return (self._read("__region_done"),
                getattr(self.runtime.stats, "jit_checkpoints", 0))

    def _slice(self, budget: int) -> bool:
        """One backend slice; False ends the run (halt/fault/watchdog)."""
        if self.machine.halted:
            return False
        if self.remaining <= 0:
            return False
        budget = min(budget, self.remaining)
        before = self.machine.instr_count
        _, fault = self.backend.run_slice(self.machine, budget)
        self.remaining -= self.machine.instr_count - before
        if self.ticks:
            self.runtime.tick(self.machine)
        if fault is not None:
            self.fault = fault
            if self.crash_oracles:
                self.violations.append(Violation(
                    MACHINE_FAULT, f"machine trapped: {fault}"))
            return False
        return not self.machine.halted

    def _advance_to(self, target_cycle: int) -> bool:
        """Run to the first instruction boundary at or past
        ``target_cycle``; identical under either backend."""
        maxc = self.target.max_instr_cycles
        while self.machine.cycles < target_cycle:
            gap = target_cycle - self.machine.cycles
            if not self._slice(max(1, gap // maxc)):
                return False
        return True

    # -- event delivery ------------------------------------------------
    def _stacked_vectors(self) -> Tuple[int, ...]:
        hub = self.hub
        if hub is None:
            return ()
        sp = self._read("__isr_sp")
        if not 0 < sp <= ISR_MAX_DEPTH:
            return ()
        base = self.symtab["__isr_stack"][0]
        return tuple(self.machine.mem[base + i] for i in range(sp))

    def _power_failure(self, index: int,
                       budget: Optional[int]) -> None:
        machine = self.machine
        if self.track_progress:
            progress = self._progress()
            gap = machine.cycles - self._last_recovery_cycles
            if self._last_progress is not None:
                if progress != self._last_progress:
                    self._stall = 0
                elif gap >= self.progress_window:
                    self._stall += 1
                    if self._stall >= _STALL_LIMIT and self.crash_oracles:
                        self.violations.append(Violation(
                            FORWARD_PROGRESS,
                            f"{self._stall} consecutive failures with "
                            f"zero durable progress despite compliant "
                            f"gaps (>= {self.progress_window} cycles)",
                            event_index=index))
                        self._stall = 0
        if budget is not None:
            self.runtime.on_checkpoint_signal(machine, float(budget))
        machine.power_off()
        self.runtime.on_reboot(machine)
        if self.target.rollback_mode:
            machine.write_word("__mode", 0, 1)
        self.crashes += 1
        if self.track_progress:
            self._last_progress = self._progress()
            self._last_recovery_cycles = machine.cycles
        self._check_recovery(index)

    def _deliver(self, index: int, event) -> None:
        self.triggered += 1
        if event.kind == POWER_FAIL:
            self._power_failure(index, event.ckpt_budget)
            repeat_budget = event.ckpt_budget \
                if self.target.base_scheme == "nvp" else None
            for _ in range(event.repeat):
                if event.gap_steps and not self.machine.halted:
                    self._slice(event.gap_steps)
                if self.machine.halted or self.fault is not None:
                    break
                self._power_failure(index, repeat_budget)
        elif event.kind == CKPT_FAULT:
            self.ckpt_hook.arm(event)
        elif event.kind == ISR_BURST:
            hub = self.hub
            if hub is None:
                raise TortureError(
                    f"event {index}: isr_burst on a program with no "
                    f"peripherals")
            hub.inject_pend(self.machine, event.vector)
        elif event.kind == DATA_FAULT:
            self.step_hook.arm(event.model, event.reg, event.bit)

    # -- oracles -------------------------------------------------------
    def _check_recovery(self, index: Optional[int]) -> None:
        machine = self.machine
        if not 0 <= machine.pc < self.code_size:
            self.violations.append(Violation(
                TORN_STATE,
                f"post-recovery pc {machine.pc} outside code "
                f"[0, {self.code_size})", event_index=index))
        for name in ("__jit_valid", "__mode"):
            if name in self.symtab:
                value = self._read(name)
                if value not in (0, 1):
                    self.violations.append(Violation(
                        TORN_STATE,
                        f"{name} = {value} after recovery "
                        f"(must be 0 or 1)", event_index=index))
        if self.hub is not None:
            sp = self._read("__isr_sp")
            if not 0 <= sp <= ISR_MAX_DEPTH:
                self.violations.append(Violation(
                    TORN_STATE,
                    f"__isr_sp = {sp} after recovery "
                    f"(max depth {ISR_MAX_DEPTH})", event_index=index))
            else:
                for vector in self._stacked_vectors():
                    if vector not in self.hub._vectors:
                        self.violations.append(Violation(
                            TORN_STATE,
                            f"unregistered vector {vector} on the ISR "
                            f"frame stack after recovery",
                            event_index=index))

    def _check_final(self) -> None:
        machine = self.machine
        if not machine.halted and self.fault is None \
                and self.crash_oracles:
            self.violations.append(Violation(
                FORWARD_PROGRESS,
                f"run did not halt within the step watchdog "
                f"(cycles={machine.cycles}, steps={machine.instr_count})"))
        hub = self.hub
        if hub is not None and machine.halted:
            sp = self._read("__isr_sp")
            if sp != 0:
                self.violations.append(Violation(
                    TORN_STATE,
                    f"halted with __isr_sp = {sp}: a handler activation "
                    f"was lost (stale frames never healed)"))
        if hub is not None:
            pend = self._read("__irq_pend")
            for heal_step, vector in hub.heals:
                redelivered = any(
                    span.vector == vector and span.entry_step >= heal_step
                    for span in hub.trace)
                if not redelivered and not pend >> vector & 1:
                    self.violations.append(Violation(
                        ISR_AT_LEAST_ONCE,
                        f"vector {vector} dropped at a heal "
                        f"(step {heal_step}) was never re-delivered and "
                        f"is not pending"))
                    break
        if machine.halted and golden_applies(self.schedule):
            if tuple(machine.committed_out) != self.target.golden_out:
                self.violations.append(Violation(
                    GOLDEN_OUTPUT,
                    f"committed output diverged from golden after "
                    f"{self.crashes} crashes "
                    f"(got {len(machine.committed_out)} words, golden "
                    f"{len(self.target.golden_out)})"))

    # -- fingerprint ---------------------------------------------------
    def _fingerprint(self) -> str:
        machine = self.machine
        hub = self.hub
        trace = [(span.vector, span.entry_step)
                 for span in (hub.trace if hub is not None else [])][:4096]
        return content_digest({
            "out": list(machine.committed_out),
            "cycles": machine.cycles,
            "steps": machine.instr_count,
            "pc": machine.pc,
            "halted": machine.halted,
            "regs": list(machine.regs),
            "mem": list(machine.mem),
            "marks": machine.marks_executed,
            "crashes": self.crashes,
            "trace": trace,
        })

    # -- main ----------------------------------------------------------
    def run(self) -> TortureOutcome:
        self.runtime.on_reboot(self.machine)
        if self.target.rollback_mode:
            self.machine.write_word("__mode", 0, 1)
        self._last_recovery_cycles = self.machine.cycles
        if self.track_progress:
            self._last_progress = self._progress()
        for index, event in enumerate(self.schedule.events):
            if not self._advance_to(event.at_cycle):
                break
            if self.fault is not None or self.machine.halted:
                break
            self._deliver(index, event)
        # Drain to halt (or the watchdog) once the schedule is spent.
        while self.fault is None and not self.machine.halted \
                and self.remaining > 0:
            if not self._slice(self.remaining):
                break
        self._check_final()
        hub = self.hub
        return TortureOutcome(
            violations=self.violations,
            fingerprint=self._fingerprint(),
            committed_out=tuple(self.machine.committed_out),
            halted=self.machine.halted,
            cycles=self.machine.cycles,
            instr_count=self.machine.instr_count,
            crashes=self.crashes,
            deliveries=hub.deliveries() if hub is not None else 0,
            heals=len(hub.heals) if hub is not None else 0,
            triggered=self.triggered,
        )


def run_schedule(target: TortureTarget, schedule: TortureSchedule,
                 backend: str = "interpreter",
                 max_steps: Optional[int] = None,
                 strict: bool = False) -> TortureOutcome:
    """Replay ``schedule`` against ``target`` under ``backend``.

    Deterministic: the same (target, schedule, backend) triple always
    produces the same :class:`TortureOutcome`, fingerprint included.
    ``strict=True`` raises :class:`~repro.errors.InvariantViolation` on
    the first oracle violation instead of returning it.
    """
    validate_schedule(schedule, target.scheme, target.profile)
    outcome = _TortureRun(target, schedule, backend, max_steps).run()
    if strict and outcome.violations:
        first = outcome.violations[0]
        raise InvariantViolation(
            f"{target.workload}/{target.scheme}[{backend}] violated "
            f"{first.oracle}: {first.detail}")
    return outcome
