"""Voltage monitors: the component EMI attacks subvert (§II-C).

Both monitor types digitise the capacitor voltage *plus* whatever the
attack tone induces on their input trace, then compare against the
``V_backup`` / ``V_on`` thresholds:

* :class:`ADCMonitor` — a 10/12-bit successive-approximation ADC sampling
  the supply and comparing in firmware.  Quantisation and (optional)
  multi-sample averaging give it slight noise immunity.
* :class:`ComparatorMonitor` — an analog comparator with hysteresis acting
  as a 1-bit ADC.  It reacts to the instantaneous superimposed waveform,
  which is why the paper measures comparator boards as orders of magnitude
  more attackable (Table I, Comp-R_min ~ 1e-2 %).

A monitor produces :class:`MonitorEvent` signals; the simulator routes them
to the active crash-consistency runtime — unless that runtime has closed
the attack surface by disabling the monitor (GECKO's countermeasure).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..emi.signal import induced_waveform_sample


class MonitorEvent(enum.Enum):
    """Digital outputs of a voltage monitor."""

    NONE = "none"
    CHECKPOINT = "checkpoint"   # supply looks like it is failing
    WAKE = "wake"               # supply looks restored


@dataclass
class ADCMonitor:
    """ADC-based monitor (Fig. 2a)."""

    v_backup: float = 2.6
    v_on: float = 3.0
    bits: int = 10
    v_ref: float = 3.6
    #: Successive samples averaged per reading (firmware smoothing).
    oversample: int = 1
    #: ADC conversions are periodic, not continuous: between conversions
    #: the core makes progress even under attack.
    continuous: bool = False
    _sample_index: int = field(default=0, repr=False)

    def quantise(self, volts: float) -> float:
        levels = (1 << self.bits) - 1
        clamped = min(max(volts, 0.0), self.v_ref)
        return round(clamped / self.v_ref * levels) / levels * self.v_ref

    def read(self, v_true: float, emi_amplitude: float,
             emi_frequency: float, t: float) -> float:
        """One (possibly EMI-corrupted) voltage reading."""
        total = 0.0
        for _ in range(max(1, self.oversample)):
            induced = induced_waveform_sample(
                emi_amplitude, emi_frequency, t, self._sample_index
            )
            self._sample_index += 1
            total += self.quantise(v_true + induced)
        return total / max(1, self.oversample)

    def sample(self, v_true: float, emi_amplitude: float,
               emi_frequency: float, t: float, powered: bool) -> MonitorEvent:
        reading = self.read(v_true, emi_amplitude, emi_frequency, t)
        if powered and reading < self.v_backup:
            return MonitorEvent.CHECKPOINT
        if not powered and reading >= self.v_on:
            return MonitorEvent.WAKE
        return MonitorEvent.NONE


@dataclass
class ComparatorMonitor:
    """Comparator-based monitor (Fig. 2b): a 1-bit ADC with hysteresis."""

    v_backup: float = 2.6
    v_on: float = 3.0
    hysteresis: float = 0.05
    #: Comparators respond to the waveform peak within the reaction window,
    #: not an averaged sample — a single excursion trips the interrupt.
    peak_factor: float = 1.0
    #: The comparator output is a continuous interrupt line: it latches the
    #: first excursion after wake-up, before the core runs a single quantum
    #: (Table I: comparator boards show R_min orders below ADC boards).
    continuous: bool = True
    _sample_index: int = field(default=0, repr=False)

    def sample(self, v_true: float, emi_amplitude: float,
               emi_frequency: float, t: float, powered: bool) -> MonitorEvent:
        # The worst instantaneous excursion in the reaction window: the
        # comparator latches on any crossing, so superimpose the full swing.
        swing = emi_amplitude * self.peak_factor
        self._sample_index += 1
        if powered and v_true - swing < self.v_backup - self.hysteresis:
            return MonitorEvent.CHECKPOINT
        if not powered and v_true + swing >= self.v_on + self.hysteresis:
            return MonitorEvent.WAKE
        return MonitorEvent.NONE


Monitor = object  # duck-typed: anything with .sample(...)


def make_monitor(kind: str, v_backup: float, v_on: float):
    """Factory for a monitor by kind name ('adc' or 'comp')."""
    if kind == "adc":
        return ADCMonitor(v_backup=v_backup, v_on=v_on)
    if kind == "comp":
        return ComparatorMonitor(v_backup=v_backup, v_on=v_on)
    raise ValueError(f"unknown monitor kind {kind!r}")
