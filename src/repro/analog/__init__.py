"""Analog front-end: ADC- and comparator-based voltage monitors."""

from .monitor import ADCMonitor, ComparatorMonitor, MonitorEvent, make_monitor

__all__ = ["ADCMonitor", "ComparatorMonitor", "MonitorEvent", "make_monitor"]
