"""Operand kinds for the reproduction's register-transfer instruction set.

The compiler works on *virtual* registers (:class:`VReg`) with an unbounded
namespace; register allocation rewrites them to *physical* registers
(:class:`PReg`).  Immediates (:class:`Imm`) may appear as the second source
operand of ALU instructions and as address offsets.  Memory operands name a
data symbol (:class:`Sym`) plus an offset, which keeps alias analysis at
symbol granularity (see :mod:`repro.ir.alias`).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of architectural registers.
NUM_REGS = 16

#: Physical registers available to the register allocator.  R0 is hardwired
#: to zero and R1-R3 are assembler temporaries used for spill reloads, so the
#: allocator hands out R4..R15 (12 registers) — the same count of allocatable
#: general-purpose registers as the MSP430 targets in the paper.
ALLOCATABLE = tuple(range(4, NUM_REGS))

#: Assembler/compiler scratch registers (never allocated, dead across
#: instructions the compiler emits as a unit).
SCRATCH = (1, 2, 3)

#: The hardwired-zero register.
ZERO_REG = 0

MASK32 = 0xFFFFFFFF


def wrap32(value: int) -> int:
    """Wrap ``value`` to signed 32-bit two's-complement semantics."""
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def trunc_div(a: int, b: int) -> int:
    """C-style (truncating) signed division, wrapped to 32 bits."""
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return wrap32(quotient)


def trunc_rem(a: int, b: int) -> int:
    """C-style remainder (sign follows the dividend), wrapped to 32 bits."""
    return wrap32(a - trunc_div(a, b) * b)


@dataclass(frozen=True)
class VReg:
    """A virtual register, identified by a small integer."""

    index: int

    def __repr__(self) -> str:
        return f"v{self.index}"


@dataclass(frozen=True)
class PReg:
    """A physical (architectural) register R0..R15."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGS:
            raise ValueError(f"physical register index out of range: {self.index}")

    def __repr__(self) -> str:
        return f"R{self.index}"


@dataclass(frozen=True)
class Imm:
    """A 32-bit immediate operand."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Sym:
    """A data symbol: the base of a global, array, frame slot or runtime area.

    ``name`` is unique program-wide.  The linker/layout step
    (:meth:`repro.isa.program.MachineProgram.layout`) assigns each symbol a
    base word address.
    """

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class Label:
    """A branch target: the name of a basic block within a function."""

    name: str

    def __repr__(self) -> str:
        return f".{self.name}"


Reg = (VReg, PReg)
