"""Instruction set of the reproduction's target machine.

The machine is a 16-register, word-addressed load/store core with non-volatile
main memory (FRAM-like), modelled on the MSP430FR59xx family used throughout
the paper's evaluation.  The same :class:`Instr` record is used at two levels:

* **IR level** — operands are :class:`~repro.isa.operands.VReg` virtual
  registers; instructions live inside basic blocks of an
  :class:`~repro.ir.cfg.Function`.
* **machine level** — after register allocation operands are
  :class:`~repro.isa.operands.PReg`; instructions live in a flat
  :class:`~repro.isa.program.MachineFunction` body.

Two opcodes exist purely for the paper's crash-consistency runtimes:

* ``CKPT`` — a compiler-assisted checkpoint store: persist one register into
  the double-buffered checkpoint storage (GECKO §VI-D).  Costed as one NVM
  store.
* ``MARK`` — an idempotent-region boundary: persist the region id and re-entry
  PC, and bump the region-completion counter used by GECKO's timer-based
  attack detection (§VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .operands import Imm, Label, PReg, Sym, VReg

Operand = Union[VReg, PReg, Imm]
RegOperand = Union[VReg, PReg]


class Opcode(enum.Enum):
    """All machine opcodes."""

    # Data movement.
    LI = "li"          # dst <- imm
    MOV = "mov"        # dst <- a
    # Integer ALU (dst <- a op b; b may be an immediate).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"        # signed, trapping on divide-by-zero
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"        # logical
    SAR = "sar"        # arithmetic
    NEG = "neg"        # dst <- -a
    NOT = "not"        # dst <- ~a
    # Comparisons producing 0/1.
    SLT = "slt"
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    SGT = "sgt"
    SGE = "sge"
    # Memory (word addressed; effective address = base(sym) + off).
    LD = "ld"          # dst <- mem[sym + off]
    ST = "st"          # mem[sym + off] <- a
    # Control flow.
    BNZ = "bnz"        # if a != 0 goto target
    JMP = "jmp"
    CALL = "call"      # callee named by ``callee``
    RET = "ret"
    HALT = "halt"
    # Peripherals / observable effects.
    OUT = "out"        # emit a to the output channel (I/O task)
    SENSE = "sense"    # dst <- next sensor reading
    # Crash-consistency runtime support.
    CKPT = "ckpt"      # checkpoint register a into slot (reg_index, color)
    MARK = "mark"      # idempotent region boundary (region id in ``region``)
    NOP = "nop"


#: Opcodes computing ``dst <- a op b``.
BINOPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SAR,
        Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE, Opcode.SGT, Opcode.SGE,
    }
)

#: Opcodes computing ``dst <- op a``.
UNOPS = frozenset({Opcode.MOV, Opcode.NEG, Opcode.NOT})

#: Opcodes that end a basic block.
TERMINATORS = frozenset({Opcode.BNZ, Opcode.JMP, Opcode.RET, Opcode.HALT})

#: Opcodes after which linear execution cannot simply continue to the next
#: instruction slot of the same block: control transfers away (and, for
#: ``CALL``, comes back to the *following* slot via ``RET``).  Block
#: compilers (:mod:`repro.runtime.threaded`) must end a block here even
#: though ``CALL`` is not an IR-level terminator.
BLOCK_ENDERS = TERMINATORS | {Opcode.CALL}

#: Opcodes with side effects that must not be re-executed speculatively and
#: around which GECKO places region boundaries (§VI-B: I/O, calls, async).
IO_OPS = frozenset({Opcode.OUT, Opcode.SENSE})

#: Opcodes that write non-volatile memory (the FRAM wear/commit surface).
NVM_WRITE_OPS = frozenset({Opcode.ST, Opcode.CKPT, Opcode.MARK})

#: Interruptible points: instructions whose side effects interact with the
#: crash-consistency protocol or the outside world — checkpoint stores,
#: region commits, sensor reads, peripheral output, and NVM stores.
#: Execution backends must keep architectural state exact *at* these
#: instructions (a threaded block may batch pure ALU work between them,
#: but every interruptible effect happens in program order with the same
#: observable values as the reference interpreter).
INTERRUPTIBLE_OPS = NVM_WRITE_OPS | IO_OPS

#: Opcodes that can trap at runtime (division by zero, out-of-bounds
#: memory access).  Block compilers emit inline guards for these so the
#: trap carries the same message and partial-state semantics as
#: :meth:`repro.runtime.machine.Machine.step`.
TRAPPING_OPS = frozenset({Opcode.DIV, Opcode.REM, Opcode.LD, Opcode.ST})

#: Per-opcode cycle costs, calibrated to MSP430FR-class hardware: ordinary
#: two-operand instructions take ~2 cycles with operand fetch; FRAM loads
#: and stores are ~3 cycles; multiplication goes through the MPY32
#: peripheral (operand writes + result reads); division is a software
#: routine; OUT/SENSE talk to peripherals (radio/ADC conversion time); a
#: CKPT is one FRAM store and MARK is the two-store commit record.
CYCLES: Dict[Opcode, int] = {
    Opcode.LI: 2, Opcode.MOV: 2,
    Opcode.ADD: 2, Opcode.SUB: 2, Opcode.AND: 2, Opcode.OR: 2, Opcode.XOR: 2,
    Opcode.SHL: 2, Opcode.SHR: 2, Opcode.SAR: 2, Opcode.NEG: 2, Opcode.NOT: 2,
    Opcode.SLT: 2, Opcode.SLE: 2, Opcode.SEQ: 2, Opcode.SNE: 2,
    Opcode.SGT: 2, Opcode.SGE: 2,
    Opcode.MUL: 12, Opcode.DIV: 80, Opcode.REM: 80,
    Opcode.LD: 3, Opcode.ST: 3,
    Opcode.BNZ: 2, Opcode.JMP: 2, Opcode.CALL: 5, Opcode.RET: 5,
    Opcode.HALT: 2,
    Opcode.OUT: 24, Opcode.SENSE: 24,
    Opcode.CKPT: 3, Opcode.MARK: 6,
    Opcode.NOP: 1,
}


@dataclass
class Instr:
    """One instruction.

    Only the fields relevant to ``op`` are populated; the rest stay ``None``.

    Attributes:
        op: the opcode.
        dst: destination register for value-producing opcodes.
        a: first source operand (register, or immediate for ``LI``).
        b: second source operand of binary ALU ops (register or immediate).
        sym: base symbol of a memory access (``LD``/``ST``).
        off: address offset operand of a memory access (register or immediate).
        target: branch target label (``BNZ``/``JMP``).
        callee: function name (``CALL``).
        reg_index: architectural register number checkpointed by ``CKPT``.
        color: double-buffer storage index (0/1) of a ``CKPT``.
        region: region id of a ``MARK``.
        meta: free-form annotations used by compiler passes (never affects
            execution semantics).
    """

    op: Opcode
    dst: Optional[RegOperand] = None
    a: Optional[Operand] = None
    b: Optional[Operand] = None
    sym: Optional[Sym] = None
    off: Optional[Operand] = None
    target: Optional[Label] = None
    callee: Optional[str] = None
    reg_index: Optional[int] = None
    color: Optional[int] = None
    region: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Use/def accessors.
    # ------------------------------------------------------------------
    def defs(self) -> List[RegOperand]:
        """Registers written by this instruction."""
        return [self.dst] if self.dst is not None else []

    def uses(self) -> List[RegOperand]:
        """Registers read by this instruction, in operand order."""
        used: List[RegOperand] = []
        for operand in (self.a, self.b, self.off):
            if isinstance(operand, (VReg, PReg)):
                used.append(operand)
        return used

    def operands(self) -> List[Operand]:
        """All source operands including immediates (for rewriting passes)."""
        return [op for op in (self.a, self.b, self.off) if op is not None]

    # ------------------------------------------------------------------
    # Classification helpers.
    # ------------------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def is_memory(self) -> bool:
        return self.op in (Opcode.LD, Opcode.ST)

    @property
    def is_io(self) -> bool:
        return self.op in IO_OPS

    @property
    def cycles(self) -> int:
        """Cycle cost of this instruction.

        A checkpoint on the per-register dynamic-index fallback pays for its
        index load and the commit-time index store (§VI-D's naive scheme).
        """
        cost = CYCLES[self.op]
        if self.op is Opcode.CKPT and self.meta.get("per_reg"):
            cost += CYCLES[Opcode.LD] + CYCLES[Opcode.ST]
        return cost

    def replace_regs(self, mapping: Dict[RegOperand, Operand]) -> "Instr":
        """Return a copy with registers substituted per ``mapping``.

        Destination registers are only ever replaced by registers; attempting
        to map a destination to an immediate raises ``ValueError``.
        """

        def sub(operand: Optional[Operand]) -> Optional[Operand]:
            if isinstance(operand, (VReg, PReg)) and operand in mapping:
                return mapping[operand]
            return operand

        new_dst = self.dst
        if isinstance(new_dst, (VReg, PReg)) and new_dst in mapping:
            replacement = mapping[new_dst]
            if not isinstance(replacement, (VReg, PReg)):
                raise ValueError("cannot map a destination register to an immediate")
            new_dst = replacement
        return Instr(
            op=self.op, dst=new_dst, a=sub(self.a), b=sub(self.b),
            sym=self.sym, off=sub(self.off), target=self.target,
            callee=self.callee, reg_index=self.reg_index, color=self.color,
            region=self.region, meta=dict(self.meta),
        )

    def copy(self) -> "Instr":
        """A shallow copy (meta dict is duplicated)."""
        return self.replace_regs({})

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def __str__(self) -> str:  # noqa: C901 - straightforward dispatch
        op = self.op
        if op is Opcode.LI:
            return f"li {self.dst}, {self.a}"
        if op in UNOPS:
            return f"{op.value} {self.dst}, {self.a}"
        if op in BINOPS:
            return f"{op.value} {self.dst}, {self.a}, {self.b}"
        if op is Opcode.LD:
            return f"ld {self.dst}, [{self.sym} + {self.off}]"
        if op is Opcode.ST:
            return f"st {self.a}, [{self.sym} + {self.off}]"
        if op is Opcode.BNZ:
            return f"bnz {self.a}, {self.target}"
        if op is Opcode.JMP:
            return f"jmp {self.target}"
        if op is Opcode.CALL:
            return f"call {self.callee}"
        if op is Opcode.OUT:
            return f"out {self.a}"
        if op is Opcode.SENSE:
            return f"sense {self.dst}"
        if op is Opcode.CKPT:
            return f"ckpt {self.a}, slot={self.reg_index}, color={self.color}"
        if op is Opcode.MARK:
            return f"mark region={self.region}"
        return op.value


# ----------------------------------------------------------------------
# Construction helpers (keep call sites terse and validated).
# ----------------------------------------------------------------------
def li(dst: RegOperand, value: int) -> Instr:
    """``dst <- value``."""
    return Instr(Opcode.LI, dst=dst, a=Imm(value))


def mov(dst: RegOperand, src: RegOperand) -> Instr:
    """``dst <- src``."""
    return Instr(Opcode.MOV, dst=dst, a=src)


def binop(op: Opcode, dst: RegOperand, a: RegOperand, b: Operand) -> Instr:
    """``dst <- a op b`` for any opcode in :data:`BINOPS`."""
    if op not in BINOPS:
        raise ValueError(f"{op} is not a binary ALU opcode")
    return Instr(op, dst=dst, a=a, b=b)


def load(dst: RegOperand, sym: Sym, off: Operand) -> Instr:
    """``dst <- mem[sym + off]``."""
    return Instr(Opcode.LD, dst=dst, sym=sym, off=off)


def store(value: RegOperand, sym: Sym, off: Operand) -> Instr:
    """``mem[sym + off] <- value``."""
    return Instr(Opcode.ST, a=value, sym=sym, off=off)


def bnz(cond: RegOperand, target: Label) -> Instr:
    """Branch to ``target`` when ``cond`` is non-zero."""
    return Instr(Opcode.BNZ, a=cond, target=target)


def jmp(target: Label) -> Instr:
    """Unconditional jump."""
    return Instr(Opcode.JMP, target=target)


def call(callee: str) -> Instr:
    """Call a named function (static-frame convention, no recursion)."""
    return Instr(Opcode.CALL, callee=callee)


def ret() -> Instr:
    """Return to the caller."""
    return Instr(Opcode.RET)


def halt() -> Instr:
    """Stop the machine (end of ``main``)."""
    return Instr(Opcode.HALT)


def out(value: RegOperand) -> Instr:
    """Emit ``value`` on the observable output channel."""
    return Instr(Opcode.OUT, a=value)


def sense(dst: RegOperand) -> Instr:
    """Read the next value from the (deterministic) sensor stream."""
    return Instr(Opcode.SENSE, dst=dst)


def ckpt(src: RegOperand, reg_index: int, color: Optional[int] = None) -> Instr:
    """Checkpoint ``src`` into double-buffer slot ``(reg_index, color)``.

    ``color=None`` means the *dynamic* double-buffer convention (Ratchet,
    §VI-D): the store goes to the buffer the runtime is currently filling,
    i.e. the complement of the last committed index.  GECKO's coloring pass
    replaces ``None`` with a static 0/1 assignment.
    """
    if color not in (0, 1, None):
        raise ValueError("checkpoint color must be 0, 1 or None (dynamic)")
    return Instr(Opcode.CKPT, a=src, reg_index=reg_index, color=color)


def mark(region: int) -> Instr:
    """Cross an idempotent region boundary into region ``region``."""
    return Instr(Opcode.MARK, region=region)
