"""Instruction set, operands, program containers, linker and assembler."""

from .instructions import (
    BINOPS,
    CYCLES,
    IO_OPS,
    Instr,
    Opcode,
    TERMINATORS,
    UNOPS,
    binop,
    bnz,
    call,
    ckpt,
    halt,
    jmp,
    li,
    load,
    mark,
    mov,
    out,
    ret,
    sense,
    store,
)
from .operands import (
    ALLOCATABLE,
    Imm,
    Label,
    NUM_REGS,
    PReg,
    SCRATCH,
    Sym,
    VReg,
    ZERO_REG,
    wrap32,
)
from .program import LinkedProgram, MachineFunction, MachineProgram, link
from .assembler import parse_instr, parse_operand, parse_program

__all__ = [
    "ALLOCATABLE", "BINOPS", "CYCLES", "IO_OPS", "Imm", "Instr", "Label",
    "LinkedProgram", "MachineFunction", "MachineProgram", "NUM_REGS",
    "Opcode", "PReg", "SCRATCH", "Sym", "TERMINATORS", "UNOPS", "VReg",
    "ZERO_REG", "binop", "bnz", "call", "ckpt", "halt", "jmp", "li", "link",
    "load", "mark", "mov", "out", "parse_instr", "parse_operand",
    "parse_program", "ret", "sense", "store", "wrap32",
]
