"""Machine-level program containers and the linker.

A :class:`MachineProgram` is the output of code generation: a set of
:class:`MachineFunction` bodies (flat instruction lists with local labels)
plus a data-symbol table.  :func:`link` flattens it into a
:class:`LinkedProgram` — absolute instruction indices, absolute data
addresses, and the runtime control block the crash-consistency runtimes
(:mod:`repro.runtime`) rely on.

Memory layout (word addressed, all of it non-volatile FRAM):

========================  =====================================================
symbol                    purpose
========================  =====================================================
``__jit_regs``            JIT checkpoint area: 16 register words (NVP/CTPL)
``__jit_pc``              JIT checkpoint: saved program counter
``__jit_valid``           JIT checkpoint: validity flag
``__jit_ack``             GECKO's persisted ACK toggle (§VI-A)
``__ckpt0``, ``__ckpt1``  compiler-assisted double-buffered checkpoint storage
``__region_cur``          id of the region currently executing
``__region_pc``           absolute re-entry PC of the current region
``__region_done``         count of region boundaries crossed (completion proof)
``__mode``                persisted runtime mode (0 = JIT on, 1 = rollback)
``__ra_<f>``              static return-address slot of function ``<f>``
``__frame_<f>``           static frame (locals + spills) of function ``<f>``
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AsmError
from .instructions import Instr, Opcode
from .operands import NUM_REGS, PReg, Sym

#: Runtime control-block symbols added by the linker, with sizes in words.
RUNTIME_SYMBOLS: Tuple[Tuple[str, int], ...] = (
    ("__jit_regs", NUM_REGS),
    ("__jit_pc", 1),
    ("__jit_valid", 1),
    ("__jit_ack", 1),
    ("__jit_sensor", 1),
    ("__jit_outlen", 1),
    ("__jit_out", 32),
    ("__ckpt0", NUM_REGS),
    ("__ckpt1", NUM_REGS),
    ("__region_cur", 1),
    ("__region_pc", 1),
    ("__region_done", 1),
    ("__color", 1),
    ("__sensor_idx", 1),
    ("__mode", 1),
    ("__ack_seen", 1),
    ("__done_seen", 1),
    ("__boots", 1),
    ("__rcolor", NUM_REGS),
)

#: Interrupt sources and their fixed vector numbers (``repro.periph``).
ISR_SOURCES: Dict[str, int] = {"timer": 0, "adc": 1, "gpio": 2, "dma": 3}

#: Maximum ISR nesting depth (frame-stack slots).
ISR_MAX_DEPTH = 4

#: Words per saved interrupt frame: the interrupted pc plus all registers.
ISR_FRAME_WORDS = 1 + NUM_REGS

#: Peripheral/interrupt-controller control block, appended to the runtime
#: symbols only when a program declares ISRs or touches a peripheral — the
#: memory layout of straight-line programs is unchanged.  Everything the
#: controller and device models need lives in these NVM words, so
#: ``Machine.snapshot()``/``restore()`` and power cycles round-trip pending
#: interrupts and peripheral state with no extra machinery.
PERIPH_SYMBOLS: Tuple[Tuple[str, int], ...] = (
    # interrupt controller
    ("__irq_en", 1),         # per-source enable mask (bit v = vector v)
    ("__irq_pend", 1),       # per-source pending mask
    ("__irq_prio", len(ISR_SOURCES)),   # per-source priority (higher wins)
    ("__irq_nest", 1),       # nesting policy: 0 = no preemption
    ("__isr_sp", 1),         # frame-stack depth (0 = in main context)
    ("__isr_stack", ISR_MAX_DEPTH),     # vector numbers, innermost last
    ("__isr_frames", ISR_MAX_DEPTH * ISR_FRAME_WORDS),
    # timer: fires vector 0 every `period` cycles while ctrl != 0
    ("__t0_ctrl", 1),
    ("__t0_period", 1),
    ("__t0_base", 1),        # arming cycle + 1 (0 = unarmed)
    ("__t0_count", 1),
    # sensor ADC: samples the sensor stream, fires vector 1 per sample
    ("__adc_ctrl", 1),
    ("__adc_period", 1),
    ("__adc_base", 1),
    ("__adc_count", 1),
    ("__adc_data", 1),
    # GPIO: watches a scripted input line, fires vector 2 on edges
    ("__gpio_ctrl", 1),
    ("__gpio_period", 1),
    ("__gpio_base", 1),
    ("__gpio_count", 1),
    ("__gpio_in", 1),
    ("__gpio_out", 1),
    # DMA: streams a block into __dma_buf, fires vector 3 on completion
    ("__dma_ctrl", 1),
    ("__dma_rate", 1),
    ("__dma_base", 1),
    ("__dma_xfrd", 1),
    ("__dma_len", 1),
    ("__dma_done", 1),
    ("__dma_buf", 16),
)

#: Every peripheral/controller word is memory-mapped control state: a store
#: to any of them can re-arm a device or unmask an interrupt, so the
#: threaded block compiler ends the basic block after such a store to keep
#: boundary semantics identical to the interpreter.
PERIPH_CONTROL_SYMBOLS = frozenset(name for name, _ in PERIPH_SYMBOLS)


@dataclass
class MachineFunction:
    """A code-generated function: a flat body with label → index mapping."""

    name: str
    body: List[Instr] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def validate(self) -> None:
        """Check structural well-formedness (physical regs, resolvable labels)."""
        for i, instr in enumerate(self.body):
            for reg in instr.defs() + instr.uses():
                if not isinstance(reg, PReg):
                    raise AsmError(
                        f"{self.name}[{i}]: unallocated virtual register in {instr}"
                    )
            if instr.target is not None and instr.target.name not in self.labels:
                raise AsmError(
                    f"{self.name}[{i}]: undefined label {instr.target}"
                )
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.body):
                raise AsmError(f"{self.name}: label {label} out of range")

    def __str__(self) -> str:
        index_to_labels: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        lines = [f".func {self.name}"]
        for i, instr in enumerate(self.body):
            for label in sorted(index_to_labels.get(i, [])):
                lines.append(f"{label}:")
            lines.append(f"    {instr}")
        for label in sorted(index_to_labels.get(len(self.body), [])):
            lines.append(f"{label}:")
        return "\n".join(lines)


@dataclass
class MachineProgram:
    """A complete code-generated program prior to linking."""

    functions: Dict[str, MachineFunction] = field(default_factory=dict)
    #: Data symbols: name -> size in words.
    data: Dict[str, int] = field(default_factory=dict)
    #: Initialised data: name -> initial word values (defaults to zeros).
    init: Dict[str, List[int]] = field(default_factory=dict)
    entry: str = "main"
    #: Interrupt handlers: vector number -> function name.
    isrs: Dict[int, str] = field(default_factory=dict)
    #: True when the program touches peripheral MMIO (even with no ISRs).
    uses_periph: bool = False

    def add_function(self, function: MachineFunction) -> None:
        if function.name in self.functions:
            raise AsmError(f"duplicate function {function.name}")
        self.functions[function.name] = function

    def add_data(self, name: str, size: int, init: Optional[List[int]] = None) -> None:
        if name in self.data:
            raise AsmError(f"duplicate data symbol {name}")
        if size <= 0:
            raise AsmError(f"data symbol {name} must have positive size")
        self.data[name] = size
        if init is not None:
            if len(init) > size:
                raise AsmError(f"initialiser for {name} longer than its size")
            self.init[name] = list(init)

    def __str__(self) -> str:
        lines = [".data"]
        for name in sorted(self.data):
            init = self.init.get(name)
            if init:
                words = ", ".join(str(w) for w in init)
                lines.append(f"    {name} {self.data[name]} = {words}")
            else:
                lines.append(f"    {name} {self.data[name]}")
        for name in sorted(self.functions):
            lines.append(str(self.functions[name]))
        return "\n".join(lines)


@dataclass
class LinkedProgram:
    """A fully resolved program ready for execution on the machine.

    Attributes:
        instrs: the flat instruction stream (all functions concatenated).
        targets: per-instruction resolved absolute branch target (or ``None``).
        func_entry: function name -> entry index.
        owner: per-instruction owning function name.
        ret_slot: function name -> absolute address of its return-address slot.
        symtab: symbol name -> (base address, size in words).
        data_words: total data segment size.
        init_words: initial memory image (length ``data_words``).
        entry: entry function name.
    """

    instrs: List[Instr]
    targets: List[Optional[int]]
    func_entry: Dict[str, int]
    owner: List[str]
    ret_slot: Dict[str, int]
    symtab: Dict[str, Tuple[int, int]]
    data_words: int
    init_words: List[int]
    entry: str = "main"
    #: Interrupt vector table: vector number -> handler function name.
    #: Non-empty only for programs linked with peripherals enabled.
    isr_vectors: Dict[int, str] = field(default_factory=dict)

    def addr_of(self, name: str, offset: int = 0) -> int:
        """Absolute address of ``name[offset]``."""
        base, size = self.symtab[name]
        if not 0 <= offset < size:
            raise AsmError(f"offset {offset} out of range for {name} (size {size})")
        return base + offset

    @property
    def entry_pc(self) -> int:
        return self.func_entry[self.entry]

    def code_size(self) -> int:
        """Number of instructions (the paper's binary-size proxy, §VII-C)."""
        return len(self.instrs)

    def count_opcode(self, op: Opcode) -> int:
        """Static count of instructions with opcode ``op``."""
        return sum(1 for instr in self.instrs if instr.op is op)

    def block_leaders(self) -> frozenset:
        """Machine-level basic-block leaders (absolute instruction indices).

        A leader is any point where control can enter: a function entry,
        the target of a resolved branch/call, or the slot after a
        :data:`~repro.isa.instructions.BLOCK_ENDERS` opcode (fallthrough of
        a conditional branch, the return point after a ``CALL``).  Block
        compilers (:mod:`repro.runtime.threaded`) end a straight-line
        block before every leader so every entry pc starts a block.
        """
        from .instructions import BLOCK_ENDERS

        leaders = set(self.func_entry.values())
        for index, instr in enumerate(self.instrs):
            if self.targets[index] is not None:
                leaders.add(self.targets[index])
            if instr.op in BLOCK_ENDERS and index + 1 < len(self.instrs):
                leaders.add(index + 1)
        return frozenset(leaders)


def link(program: MachineProgram) -> LinkedProgram:
    """Resolve labels, lay out data, and add the runtime control block.

    Raises:
        AsmError: on undefined callees, a missing entry function, or any
            structural problem reported by function validation.
    """
    if program.entry not in program.functions:
        raise AsmError(f"entry function {program.entry!r} is not defined")

    # --- data layout -------------------------------------------------
    symtab: Dict[str, Tuple[int, int]] = {}
    cursor = 0
    for name, size in RUNTIME_SYMBOLS:
        symtab[name] = (cursor, size)
        cursor += size
    if program.uses_periph or program.isrs:
        for vector, fname in sorted(program.isrs.items()):
            if not 0 <= vector < len(ISR_SOURCES):
                raise AsmError(f"isr vector {vector} out of range")
            if fname not in program.functions:
                raise AsmError(f"isr vector {vector} names undefined "
                               f"function {fname!r}")
            if fname == program.entry:
                raise AsmError("the entry function cannot be an isr")
        for name, size in PERIPH_SYMBOLS:
            symtab[name] = (cursor, size)
            cursor += size
    ret_slot: Dict[str, int] = {}
    for fname in sorted(program.functions):
        if fname != program.entry:
            symtab[f"__ra_{fname}"] = (cursor, 1)
            ret_slot[fname] = cursor
            cursor += 1
    for name in sorted(program.data):
        if name in symtab:
            raise AsmError(f"data symbol {name} collides with a runtime symbol")
        symtab[name] = (cursor, program.data[name])
        cursor += program.data[name]
    data_words = cursor
    init_words = [0] * data_words
    for name, values in program.init.items():
        base, _ = symtab[name]
        init_words[base : base + len(values)] = values

    # --- code layout ---------------------------------------------------
    instrs: List[Instr] = []
    targets: List[Optional[int]] = []
    owner: List[str] = []
    func_entry: Dict[str, int] = {}
    ordered = [program.entry] + sorted(
        name for name in program.functions if name != program.entry
    )
    for fname in ordered:
        function = program.functions[fname]
        function.validate()
        func_entry[fname] = len(instrs)
        base = len(instrs)
        for instr in function.body:
            instrs.append(instr)
            owner.append(fname)
            if instr.target is not None:
                targets.append(base + function.labels[instr.target.name])
            else:
                targets.append(None)

    for i, instr in enumerate(instrs):
        if instr.op is Opcode.CALL:
            if instr.callee not in func_entry:
                raise AsmError(f"call to undefined function {instr.callee!r}")
            if instr.callee == program.entry:
                raise AsmError("the entry function must not be called")
            targets[i] = func_entry[instr.callee]
        for sym in _symbols_of(instr):
            if sym.name not in symtab:
                raise AsmError(f"undefined data symbol {sym}")

    return LinkedProgram(
        instrs=instrs,
        targets=targets,
        func_entry=func_entry,
        owner=owner,
        ret_slot=ret_slot,
        symtab=symtab,
        data_words=data_words,
        init_words=init_words,
        entry=program.entry,
        isr_vectors=dict(program.isrs),
    )


def _symbols_of(instr: Instr) -> List[Sym]:
    return [instr.sym] if instr.sym is not None else []
