"""Two-way textual assembly for machine programs.

The format is exactly what ``str(MachineProgram)`` prints, so
``parse_program(str(prog))`` round-trips.  The assembler exists for tests,
debugging dumps, and for writing small machine-level fixtures by hand.

Example::

    .data
        counter 1
        table 8 = 1, 2, 3
    .func main
    loop:
        ld R4, [@counter + #0]
        add R4, R4, #1
        st R4, [@counter + #0]
        slt R5, R4, #10
        bnz R5, .loop
        out R4
        halt
"""

from __future__ import annotations

import re
from typing import List, Optional, Union

from ..errors import AsmError
from .instructions import BINOPS, Instr, Opcode, UNOPS
from .operands import Imm, Label, PReg, Sym, VReg
from .program import MachineFunction, MachineProgram

_OPCODES = {op.value: op for op in Opcode}
_MEM_RE = re.compile(r"^\[\s*@(\w+)\s*\+\s*(.+?)\s*\]$")
_DATA_RE = re.compile(r"^(\w+)\s+(\d+)(?:\s*=\s*(.+))?$")
_KV_RE = re.compile(r"^(\w+)=(-?\d+)$")

Operand = Union[VReg, PReg, Imm]


def parse_operand(text: str) -> Operand:
    """Parse a register or immediate operand token."""
    text = text.strip()
    if re.fullmatch(r"R\d+", text):
        return PReg(int(text[1:]))
    if re.fullmatch(r"v\d+", text):
        return VReg(int(text[1:]))
    if text.startswith("#"):
        try:
            return Imm(int(text[1:], 0))
        except ValueError as exc:
            raise AsmError(f"bad immediate {text!r}") from exc
    raise AsmError(f"bad operand {text!r}")


def _parse_reg(text: str) -> Union[VReg, PReg]:
    operand = parse_operand(text)
    if isinstance(operand, Imm):
        raise AsmError(f"expected a register, got {text!r}")
    return operand


def _split_args(rest: str) -> List[str]:
    """Split an argument list on top-level commas (brackets protect commas)."""
    args: List[str] = []
    depth = 0
    current = ""
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            args.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        args.append(current.strip())
    return args


def _parse_mem(text: str) -> tuple:
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AsmError(f"bad memory operand {text!r}")
    return Sym(match.group(1)), parse_operand(match.group(2))


def parse_instr(line: str) -> Instr:
    """Parse one instruction line (no label, no leading whitespace)."""
    line = line.strip()
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    if mnemonic not in _OPCODES:
        raise AsmError(f"unknown opcode {mnemonic!r}")
    op = _OPCODES[mnemonic]
    args = _split_args(rest)

    def need(count: int) -> None:
        if len(args) != count:
            raise AsmError(f"{mnemonic} expects {count} operands, got {len(args)}")

    if op is Opcode.LI:
        need(2)
        imm = parse_operand(args[1])
        if not isinstance(imm, Imm):
            raise AsmError("li expects an immediate source")
        return Instr(op, dst=_parse_reg(args[0]), a=imm)
    if op in UNOPS:
        need(2)
        return Instr(op, dst=_parse_reg(args[0]), a=_parse_reg(args[1]))
    if op in BINOPS:
        need(3)
        return Instr(op, dst=_parse_reg(args[0]), a=_parse_reg(args[1]),
                     b=parse_operand(args[2]))
    if op is Opcode.LD:
        need(2)
        sym, off = _parse_mem(args[1])
        return Instr(op, dst=_parse_reg(args[0]), sym=sym, off=off)
    if op is Opcode.ST:
        need(2)
        sym, off = _parse_mem(args[1])
        return Instr(op, a=_parse_reg(args[0]), sym=sym, off=off)
    if op is Opcode.BNZ:
        need(2)
        if not args[1].startswith("."):
            raise AsmError(f"bad label {args[1]!r}")
        return Instr(op, a=_parse_reg(args[0]), target=Label(args[1][1:]))
    if op is Opcode.JMP:
        need(1)
        if not args[0].startswith("."):
            raise AsmError(f"bad label {args[0]!r}")
        return Instr(op, target=Label(args[0][1:]))
    if op is Opcode.CALL:
        need(1)
        return Instr(op, callee=args[0])
    if op is Opcode.OUT:
        need(1)
        return Instr(op, a=_parse_reg(args[0]))
    if op is Opcode.SENSE:
        need(1)
        return Instr(op, dst=_parse_reg(args[0]))
    if op is Opcode.CKPT:
        need(3)
        fields = {}
        for arg in args[1:]:
            match = _KV_RE.match(arg)
            if not match:
                raise AsmError(f"bad ckpt field {arg!r}")
            fields[match.group(1)] = int(match.group(2))
        if set(fields) != {"slot", "color"}:
            raise AsmError("ckpt expects slot= and color= fields")
        return Instr(op, a=_parse_reg(args[0]), reg_index=fields["slot"],
                     color=fields["color"])
    if op is Opcode.MARK:
        need(1)
        match = _KV_RE.match(args[0])
        if not match or match.group(1) != "region":
            raise AsmError("mark expects region=<id>")
        return Instr(op, region=int(match.group(2)))
    if op in (Opcode.RET, Opcode.HALT, Opcode.NOP):
        need(0)
        return Instr(op)
    raise AsmError(f"unhandled opcode {mnemonic!r}")


def parse_program(text: str) -> MachineProgram:
    """Parse a full program (``.data`` section plus ``.func`` bodies)."""
    program = MachineProgram()
    section: Optional[str] = None
    current: Optional[MachineFunction] = None
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line == ".data":
            section = "data"
            current = None
            continue
        if line.startswith(".func"):
            parts = line.split()
            if len(parts) != 2:
                raise AsmError(f"bad function header {line!r}")
            current = MachineFunction(parts[1])
            program.add_function(current)
            section = "code"
            continue
        if section == "data":
            match = _DATA_RE.match(line)
            if not match:
                raise AsmError(f"bad data line {line!r}")
            init = None
            if match.group(3):
                init = [int(tok.strip(), 0) for tok in match.group(3).split(",")]
            program.add_data(match.group(1), int(match.group(2)), init)
            continue
        if section == "code" and current is not None:
            if line.endswith(":"):
                label = line[:-1].strip()
                if not re.fullmatch(r"\w+", label):
                    raise AsmError(f"bad label {label!r}")
                if label in current.labels:
                    raise AsmError(f"duplicate label {label!r} in {current.name}")
                current.labels[label] = len(current.body)
                continue
            current.body.append(parse_instr(line))
            continue
        raise AsmError(f"statement outside any section: {line!r}")
    return program
