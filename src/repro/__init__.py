"""GECKO reproduction: EMI attacks on JIT checkpointing, and the defense.

A full-system simulation reproduction of "Defending Against EMI Attacks on
Just-In-Time Checkpoint for Resilient Intermittent Systems" (MICRO 2024):

* :mod:`repro.lang`, :mod:`repro.ir`, :mod:`repro.compiler` — a MiniC
  compiler substrate (substituting for the paper's LLVM toolchain);
* :mod:`repro.core` — GECKO itself: idempotent regions, WCET splitting,
  checkpoint pruning, recovery blocks, 2-colored double buffering;
* :mod:`repro.energy`, :mod:`repro.analog`, :mod:`repro.emi` — the
  hardware substrates: capacitor/harvester models, voltage monitors, and
  the EMI attack channel;
* :mod:`repro.runtime` — NVP (JIT), Ratchet (rollback) and GECKO runtimes
  plus the whole-system intermittent simulator;
* :mod:`repro.workloads` — the eleven MiniC benchmark applications.

Quickstart::

    from repro import compile_gecko, simulate_program
    from repro.workloads import source

    program = compile_gecko(source("crc32"))
    result = simulate_program(program, duration_s=0.5)
"""

from .core import (
    CompiledProgram,
    CompileStats,
    compile_gecko,
    compile_nvp,
    compile_ratchet,
    compile_scheme,
)
from .errors import ReproError

__version__ = "1.0.0"


def simulate_program(compiled, duration_s: float = 0.5, runtime=None,
                     power=None, attack=None, path=None, device=None,
                     monitor_kind: str = "adc", config=None,
                     backend: str = "interpreter"):
    """One-call simulation: build a machine + runtime and run a window.

    Args:
        compiled: a :class:`~repro.core.CompiledProgram`.
        duration_s: simulated wall-clock seconds.
        runtime: crash-consistency runtime (defaults to the scheme's own).
        power: a :class:`~repro.energy.PowerSystem` (defaults to a bench
            supply and a 1 mF capacitor).
        attack: an :class:`~repro.emi.AttackSchedule` (default: silent).
        path: propagation path (default: 5 m remote).
        device: a :class:`~repro.emi.DeviceProfile` (default: FR5994).
        monitor_kind: ``"adc"`` or ``"comp"``.
        config: a :class:`~repro.runtime.SimConfig`.
        backend: execution backend, ``"interpreter"`` (reference) or
            ``"threaded"`` (precompiled blocks, ~10x faster, identical
            results) — see ``docs/execution-backends.md``.

    Returns:
        A :class:`~repro.runtime.SimResult`.
    """
    from .energy import PowerSystem
    from .runtime import IntermittentSimulator, Machine, runtime_for

    machine = Machine(compiled.linked)
    sim = IntermittentSimulator(
        machine=machine,
        runtime=runtime or runtime_for(compiled),
        power=power or PowerSystem(),
        attack=attack,
        path=path,
        device_profile=device,
        monitor_kind=monitor_kind,
        config=config,
        backend=backend,
    )
    return sim.run(duration_s)


__all__ = [
    "CompileStats", "CompiledProgram", "ReproError", "compile_gecko",
    "compile_nvp", "compile_ratchet", "compile_scheme", "simulate_program",
    "__version__",
]
