"""The power subsystem: harvester -> capacitor -> MCU, with thresholds.

Ties together a harvester and a capacitor and owns the voltage thresholds
of Figure 2:

* ``v_on``     — wake/reboot level (capacitor "fully charged" enough);
* ``v_backup`` — JIT checkpoint trigger;
* ``v_off``    — brownout: below this the core loses volatile state.

The spoofable window the paper names ``V_fail`` is ``(v_off, v_backup)``:
a forged wake-up there resumes execution without the energy to complete the
next checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .capacitor import Capacitor
from .harvester import ConstantSupply


@dataclass
class MCUPowerModel:
    """Active-power model of the core (MSP430FR-class defaults)."""

    clock_hz: float = 8e6
    active_power_w: float = 2.2e-3
    sleep_power_w: float = 0.8e-6

    @property
    def energy_per_cycle(self) -> float:
        return self.active_power_w / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz


@dataclass
class PowerSystem:
    """Energy balance between harvesting and the MCU."""

    capacitor: Capacitor = field(default_factory=Capacitor)
    harvester: object = field(default_factory=ConstantSupply)
    mcu: MCUPowerModel = field(default_factory=MCUPowerModel)
    v_on: float = 3.0
    v_backup: float = 2.6
    v_off: float = 2.2
    #: The backup power domain: once a checkpoint begins, the main supply
    #: path is cut and only this small reserve (board decoupling plus the
    #: NVP backup buffer, sized to barely cover one checkpoint from
    #: ``v_backup``) powers the stores.  A checkpoint started deeper in the
    #: ``V_fail`` window therefore runs out of energy mid-way — the paper's
    #: data-corruption mechanism (§IV-B2).
    backup_capacitance: float = 3.8e-8

    def __post_init__(self) -> None:
        if not self.v_off < self.v_backup < self.v_on <= self.capacitor.v_max:
            raise ValueError(
                "thresholds must satisfy v_off < v_backup < v_on <= v_max"
            )
        # Observability: counters resolved once at attach so the per-call
        # cost is a single identity check when telemetry is off.
        self._m_harvested = None
        self._m_active = None
        self._m_sleep = None

    def attach_obs(self, obs) -> None:
        """Wire energy-ledger counters into an observability bundle."""
        if obs.metrics.enabled:
            self._m_harvested = obs.metrics.counter("energy.harvested_j")
            self._m_active = obs.metrics.counter("energy.consumed_j",
                                                 mode="active")
            self._m_sleep = obs.metrics.counter("energy.consumed_j",
                                                mode="sleep")

    # ------------------------------------------------------------------
    @property
    def voltage(self) -> float:
        return self.capacitor.voltage

    def harvest(self, t: float, dt: float,
                extra_power_w: float = 0.0) -> float:
        """Charge from the harvester (plus e.g. harvested attack RF).

        Capacitor self-discharge is applied over the same interval, so a
        large, leaky buffer genuinely charges slower (Fig. 15).
        """
        power = self.harvester.power_at(t) + extra_power_w
        stored = self.capacitor.charge(power, dt)
        self.capacitor.leak(dt)
        if self._m_harvested is not None:
            self._m_harvested.inc(stored)
        return stored

    def consume_cycles(self, cycles: float) -> float:
        """Drain the energy of ``cycles`` of active execution."""
        drained = self.capacitor.discharge(cycles * self.mcu.energy_per_cycle)
        if self._m_active is not None:
            self._m_active.inc(drained)
        return drained

    def consume_sleep(self, dt: float) -> float:
        """Drain sleep current over ``dt`` seconds."""
        drained = self.capacitor.discharge(self.mcu.sleep_power_w * dt)
        if self._m_sleep is not None:
            self._m_sleep.inc(drained)
        return drained

    # ------------------------------------------------------------------
    def cycles_until(self, v_floor: float) -> float:
        """Cycles executable before the voltage sinks to ``v_floor``
        (zero harvest — the guaranteed budget)."""
        return self.capacitor.usable_energy(v_floor) / self.mcu.energy_per_cycle

    def guaranteed_cycles(self) -> float:
        """Worst-case cycles per charge: from ``v_backup`` down to ``v_off``.

        This is the buffered-energy bound GECKO sizes regions against
        (§VI-B step 3): even if the checkpoint trigger fires immediately
        after a region starts, the region still completes.
        """
        saved = self.capacitor.energy
        self.capacitor.reset(self.v_backup)
        cycles = self.cycles_until(self.v_off)
        self.capacitor.energy = saved
        return cycles

    def checkpoint_budget_cycles(self) -> float:
        """Cycles the backup domain can power a checkpoint started now."""
        v = self.voltage
        if v <= self.v_off:
            return 0.0
        reserve = 0.5 * self.backup_capacitance * (v * v - self.v_off * self.v_off)
        return reserve / self.mcu.energy_per_cycle

    @property
    def in_fail_window(self) -> bool:
        """Whether the voltage sits in the spoofable ``V_fail`` window."""
        return self.v_off < self.voltage < self.v_backup
