"""Capacitor energy buffer (E = 1/2 C V^2).

The capacitor is the energy store of Figure 1: harvested power charges it,
the MCU drains it, and the voltage monitor watches its voltage.  Charging
toward a source ceiling slows as the voltage approaches the ceiling
(matching the exponential tail that makes large capacitors slow to refill —
the effect behind Fig. 15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Capacitor:
    """An ideal capacitor tracked by stored energy.

    Attributes:
        capacitance: farads (the paper sweeps 1 mF .. 10 mF).
        v_max: ceiling voltage (harvester regulator output).
        voltage: current voltage; set via :meth:`reset` or charging.
    """

    capacitance: float = 1e-3
    v_max: float = 3.3
    #: Self-discharge, amps per farad (supercaps leak a few uA per mF).
    #: Leakage scales with capacitance, which is the dominant reason the
    #: paper's Fig. 15 sees total time grow with buffer size even though
    #: every size stores the same usable energy.
    leakage_a_per_f: float = 0.02
    energy: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError("capacitance must be positive")
        if self.energy == 0.0:
            self.energy = self.energy_at(self.v_max)

    # ------------------------------------------------------------------
    def energy_at(self, voltage: float) -> float:
        """Stored energy at a given voltage."""
        return 0.5 * self.capacitance * voltage * voltage

    @property
    def voltage(self) -> float:
        return math.sqrt(max(0.0, 2.0 * self.energy / self.capacitance))

    def reset(self, voltage: float) -> None:
        """Set the capacitor to an exact voltage."""
        self.energy = self.energy_at(min(voltage, self.v_max))

    # ------------------------------------------------------------------
    def charge(self, power_w: float, dt: float) -> float:
        """Add harvested energy over ``dt`` seconds; returns joules stored.

        Charging tapers near ``v_max``: the usable charging power scales
        with the remaining voltage headroom, approximating the RC tail.
        """
        if power_w <= 0 or dt <= 0:
            return 0.0
        headroom = max(0.0, 1.0 - self.voltage / self.v_max)
        taper = min(1.0, 4.0 * headroom)  # full-rate until ~75% of v_max
        delta = power_w * dt * taper
        ceiling = self.energy_at(self.v_max)
        delta = min(delta, ceiling - self.energy)
        self.energy += delta
        return delta

    def discharge(self, joules: float) -> float:
        """Drain energy; returns the amount actually drawn."""
        drawn = min(max(0.0, joules), self.energy)
        self.energy -= drawn
        return drawn

    @property
    def leakage_power_w(self) -> float:
        """Self-discharge power at the current voltage."""
        return self.leakage_a_per_f * self.capacitance * self.voltage

    def leak(self, dt: float) -> float:
        """Apply self-discharge over ``dt`` seconds; returns joules lost."""
        return self.discharge(self.leakage_power_w * dt)

    def usable_energy(self, v_floor: float) -> float:
        """Energy available before the voltage sinks to ``v_floor``."""
        return max(0.0, self.energy - self.energy_at(v_floor))

    def time_to_charge(self, v_from: float, v_to: float,
                       power_w: float) -> float:
        """Seconds to charge between two voltages at constant power.

        Uses the same taper as :meth:`charge`; returns ``inf`` when the
        harvested power cannot reach ``v_to``.
        """
        if power_w <= 0:
            return math.inf
        saved = self.energy
        self.reset(v_from)
        elapsed = 0.0
        step = 1e-3
        target = self.energy_at(min(v_to, self.v_max))
        while self.energy < target:
            if self.charge(power_w, step) <= 0:
                self.energy = saved
                return math.inf
            elapsed += step
            if elapsed > 3600:
                self.energy = saved
                return math.inf
        self.energy = saved
        return elapsed
