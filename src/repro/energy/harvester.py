"""Energy harvester models.

The paper powers its boards three ways and each has a model here:

* bench DC supply (attack experiments, §IV): :class:`ConstantSupply`;
* a GPIO power generator replaying an RF trace that cuts power at 1 Hz
  (§VII-B3): :class:`SquareWaveHarvester`;
* a Powercast P2110 RF harvester fed by a 3 W, 915 MHz transmitter
  (§VII-B4): :class:`RFHarvester`, using free-space path loss and a
  rectifier efficiency curve.

All models answer ``power_at(t)`` in watts; :class:`TraceHarvester` replays
arbitrary recorded samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

SPEED_OF_LIGHT = 299_792_458.0


def dbm_to_watts(dbm: float) -> float:
    """Convert dBm to watts."""
    return 10.0 ** (dbm / 10.0) / 1000.0


def watts_to_dbm(watts: float) -> float:
    """Convert watts to dBm (-inf for zero)."""
    if watts <= 0:
        return float("-inf")
    return 10.0 * math.log10(watts * 1000.0)


def friis_received_power(tx_power_w: float, frequency_hz: float,
                         distance_m: float, tx_gain: float = 1.0,
                         rx_gain: float = 1.0) -> float:
    """Free-space (Friis) received power in watts."""
    if distance_m <= 0:
        return tx_power_w
    wavelength = SPEED_OF_LIGHT / frequency_hz
    factor = (wavelength / (4.0 * math.pi * distance_m)) ** 2
    return tx_power_w * tx_gain * rx_gain * factor


@dataclass
class ConstantSupply:
    """A bench supply: effectively unlimited charging power."""

    power_w: float = 0.5

    def power_at(self, t: float) -> float:
        return self.power_w


@dataclass
class SquareWaveHarvester:
    """Periodic power with hard outages (the paper's 1 Hz RF trace replay).

    ``on_power_w`` flows for ``duty`` of each ``period_s``; the rest is a
    true outage (zero input).
    """

    on_power_w: float = 5e-3
    period_s: float = 1.0
    duty: float = 0.5

    def power_at(self, t: float) -> float:
        phase = (t % self.period_s) / self.period_s
        return self.on_power_w if phase < self.duty else 0.0


@dataclass
class RFHarvester:
    """Powercast-style RF harvesting: Friis path loss + rectifier efficiency.

    Defaults model the paper's §VII-B4 setup: a 3 W transmitter at 915 MHz
    a short distance from the board.
    """

    tx_power_w: float = 3.0
    frequency_hz: float = 915e6
    distance_m: float = 0.6
    rectifier_efficiency: float = 0.5
    tx_gain: float = 8.0   # patch-antenna transmitter

    def power_at(self, t: float) -> float:
        received = friis_received_power(
            self.tx_power_w, self.frequency_hz, self.distance_m,
            tx_gain=self.tx_gain,
        )
        return received * self.rectifier_efficiency

    def incident_power(self) -> float:
        """Raw RF power arriving at the antenna (pre-rectifier)."""
        return friis_received_power(
            self.tx_power_w, self.frequency_hz, self.distance_m,
            tx_gain=self.tx_gain,
        )


@dataclass
class TraceHarvester:
    """Replay recorded harvested-power samples at a fixed rate."""

    samples_w: Sequence[float] = field(default_factory=lambda: [1e-3])
    sample_period_s: float = 0.01
    loop: bool = True

    def power_at(self, t: float) -> float:
        index = int(t / self.sample_period_s)
        if self.loop:
            index %= len(self.samples_w)
        elif index >= len(self.samples_w):
            return 0.0
        return self.samples_w[index]


def synthetic_rf_trace(seed: int = 7, length: int = 200,
                       mean_power_w: float = 2e-3) -> List[float]:
    """A deterministic bursty RF power trace (weak-input regime, §III).

    A small LCG drives burst/fade alternation; mean power lands near
    ``mean_power_w`` with occasional deep fades, like a walk-by RF source.
    """
    state = seed & 0xFFFFFFFF
    samples: List[float] = []
    level = mean_power_w
    for _ in range(length):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        u = state / 0x7FFFFFFF
        if u < 0.1:
            level = 0.0                     # deep fade
        elif u < 0.3:
            level = mean_power_w * 0.25     # weak
        elif u < 0.9:
            level = mean_power_w            # nominal
        else:
            level = mean_power_w * 3.0      # burst
        samples.append(level)
    return samples
