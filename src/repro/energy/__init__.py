"""Energy substrate: capacitor buffer, harvesters, power-system balance."""

from .capacitor import Capacitor
from .harvester import (
    ConstantSupply,
    RFHarvester,
    SquareWaveHarvester,
    TraceHarvester,
    dbm_to_watts,
    friis_received_power,
    synthetic_rf_trace,
    watts_to_dbm,
)
from .power_system import MCUPowerModel, PowerSystem

__all__ = [
    "Capacitor", "ConstantSupply", "MCUPowerModel", "PowerSystem",
    "RFHarvester", "SquareWaveHarvester", "TraceHarvester", "dbm_to_watts",
    "friis_received_power", "synthetic_rf_trace", "watts_to_dbm",
]
