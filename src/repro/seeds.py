"""Seed-sequence spawning: uncorrelated child seeds from one root seed.

Every seeded subsystem in this repo fans one user-supplied seed out into
many child streams — one per fault model, per search chain, per torture
case.  Arithmetic derivations (``seed + i``, ``seed * AXIS + i``) are a
classic correlation trap: two axes that happen to derive overlapping
integers feed *identical* Mersenne Twister streams, so "independent"
draws move in lockstep and a sweep silently explores a lower-dimensional
space.  NumPy grew ``SeedSequence`` for exactly this reason; this module
is the dependency-free equivalent.

:func:`spawn_seed` hashes the root seed together with an arbitrary
*path* of labels (axis names, indices, case ids) through SHA-256 and
returns a 64-bit child seed.  Distinct paths give statistically
independent streams; the same path always gives the same child, so
campaign determinism (serial == parallel, rerun == rerun) is preserved.

>>> spawn_seed(0, "reg_flip", 3) != spawn_seed(0, "instr_skip", 3)
True
>>> spawn_seed(0, "case", 1) == spawn_seed(0, "case", 1)
True
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["spawn_rng", "spawn_seed"]

#: Path elements are labels (axis names) and integers (indices/ids).
PathElement = Union[str, int]


def spawn_seed(root: int, *path: PathElement) -> int:
    """A 64-bit child seed for ``path`` under ``root``.

    The encoding is injective: every element is length-prefixed and
    type-tagged, so ``("ab", "c")`` and ``("a", "bc")`` — or the label
    ``"1"`` and the index ``1`` — can never collide.
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro.seeds/1:")
    hasher.update(str(int(root)).encode())
    for element in path:
        if isinstance(element, bool) or not isinstance(element, (int, str)):
            raise TypeError(
                f"seed path elements must be str or int, got "
                f"{type(element).__name__!r}")
        tag = "i" if isinstance(element, int) else "s"
        data = str(element).encode()
        hasher.update(f"|{tag}{len(data)}:".encode())
        hasher.update(data)
    return int.from_bytes(hasher.digest()[:8], "big")


def spawn_rng(root: int, *path: PathElement) -> random.Random:
    """A :class:`random.Random` seeded by :func:`spawn_seed`."""
    return random.Random(spawn_seed(root, *path))
