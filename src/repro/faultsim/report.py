"""Vulnerability maps: where a scheme breaks, aggregated and serialized.

A :class:`VulnerabilityMap` is the fault-injection analogue of the
campaign engine's :class:`~repro.eval.campaign.CampaignResult`: every
injection becomes an :class:`InjectionRecord` (the fault, its outcome,
any execution error), and the map aggregates them into per
(fault-model × program-region) outcome histograms — the artifact that
makes §VII-B3's qualitative claim checkable at a glance.  Maps are plain
data: JSON round-trippable, mergeable across campaigns, and hashable via
:meth:`fingerprint` so serial and parallel sweeps can be proven
bit-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .classify import CORRUPTION_OUTCOMES, OUTCOME_ORDER, Outcome
from .models import FAULT_MODELS, FaultSpec


def _outcome_key(outcome) -> str:
    """Normalise Outcome members and raw strings to the JSON value
    (``str(enum)`` differs across Python versions, so never rely on it)."""
    return outcome.value if isinstance(outcome, Outcome) else str(outcome)


@dataclass
class InjectionRecord:
    """One injected run: the fault, what happened, and any sim failure."""

    fault: FaultSpec
    outcome: str
    error: Optional[str] = None
    #: The last bus events before the run ended (JSON-safe dicts from
    #: :attr:`SimResult.events`) — the excerpt that explains *why* an
    #: injection became an sdc/brick.  Empty when telemetry was off.
    events: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"fault": self.fault.to_dict(),
                "outcome": _outcome_key(self.outcome),
                "error": self.error,
                "events": self.events}

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionRecord":
        return cls(fault=FaultSpec.from_dict(data["fault"]),
                   outcome=data["outcome"],
                   error=data.get("error"),
                   events=[dict(e) for e in data.get("events", [])])


@dataclass
class VulnerabilityMap:
    """Per-scheme outcome histograms over (fault model × region)."""

    scheme: str
    workload: str
    seed: int = 0
    records: List[InjectionRecord] = field(default_factory=list)

    # -- building -------------------------------------------------------
    def add(self, fault: FaultSpec, outcome: Outcome,
            error: Optional[str] = None,
            events: Optional[List[dict]] = None) -> None:
        self.records.append(
            InjectionRecord(fault=fault, outcome=outcome, error=error,
                            events=list(events) if events else []))

    def merge(self, other: "VulnerabilityMap") -> None:
        """Fold another campaign's records in (same scheme + workload)."""
        self.records.extend(other.records)

    # -- queries --------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.records)

    def _select(self, model: Optional[str],
                region: Optional[str]) -> Iterable[InjectionRecord]:
        for record in self.records:
            if model is not None and record.fault.model != model:
                continue
            if region is not None and record.fault.region != region:
                continue
            yield record

    def histogram(self, model: Optional[str] = None,
                  region: Optional[str] = None) -> Dict[str, int]:
        """Outcome counts (every class present, zero-filled)."""
        counts = {outcome.value: 0 for outcome in OUTCOME_ORDER}
        for record in self._select(model, region):
            key = _outcome_key(record.outcome)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def count(self, *outcomes: Outcome, model: Optional[str] = None,
              region: Optional[str] = None) -> int:
        wanted = {_outcome_key(o) for o in outcomes}
        return sum(1 for r in self._select(model, region)
                   if _outcome_key(r.outcome) in wanted)

    def corruption_count(self, model: Optional[str] = None) -> int:
        """SDC-or-brick injections — the paper's failure criterion."""
        return self.count(*CORRUPTION_OUTCOMES, model=model)

    def failure_excerpts(self, last: int = 8
                         ) -> List[Tuple[InjectionRecord, List[dict]]]:
        """Each corrupting injection with its final ``last`` bus events —
        the per-fault narrative behind the histogram cells."""
        wanted = {_outcome_key(o) for o in CORRUPTION_OUTCOMES}
        return [(record, record.events[-last:]) for record in self.records
                if _outcome_key(record.outcome) in wanted and record.events]

    def cells(self) -> List[Tuple[str, str, Dict[str, int]]]:
        """(model, region, histogram) rows in canonical order."""
        seen: Dict[Tuple[str, str], None] = {}
        for record in self.records:
            seen.setdefault((record.fault.model, record.fault.region))
        model_rank = {m: i for i, m in enumerate(FAULT_MODELS)}
        keys = sorted(seen, key=lambda k: (model_rank.get(k[0], 99), k[1]))
        return [(m, r, self.histogram(model=m, region=r)) for m, r in keys]

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {"scheme": self.scheme, "workload": self.workload,
                "seed": self.seed,
                "records": [r.to_dict() for r in self.records]}

    @classmethod
    def from_dict(cls, data: dict) -> "VulnerabilityMap":
        return cls(scheme=data["scheme"], workload=data["workload"],
                   seed=data.get("seed", 0),
                   records=[InjectionRecord.from_dict(r)
                            for r in data.get("records", [])])

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "VulnerabilityMap":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON: the bit-identity check for
        serial-vs-parallel campaign equivalence."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- rendering ------------------------------------------------------
    def render(self) -> str:
        """An ASCII (model × region) → outcome-histogram table."""
        header = (f"{'model':14} {'region':16} "
                  + " ".join(f"{o.value[:4]:>5}" for o in OUTCOME_ORDER)
                  + f" {'total':>6}")
        lines = [f"vulnerability map: scheme={self.scheme} "
                 f"workload={self.workload} seed={self.seed} "
                 f"injections={self.total}",
                 header, "-" * len(header)]
        for model, region, histogram in self.cells():
            row_total = sum(histogram.values())
            counts = " ".join(f"{histogram[o.value]:5d}"
                              for o in OUTCOME_ORDER)
            lines.append(f"{model:14} {region:16} {counts} {row_total:6d}")
        totals = self.histogram()
        counts = " ".join(f"{totals[o.value]:5d}" for o in OUTCOME_ORDER)
        lines.append("-" * len(header))
        lines.append(f"{'all':14} {'':16} {counts} {self.total:6d}")
        return "\n".join(lines)
