"""The fault vocabulary: what can go wrong, where, and when.

The models follow Moro et al.'s EMI fault taxonomy (instruction skip,
register corruption) extended with the intermittent-specific faults the
paper's attack actually lands (§IV-B): corrupted and truncated JIT
checkpoint images in NVM, and forged/suppressed voltage-monitor signals.
A :class:`FaultSpec` is one concrete injection: a model, a target, and a
trigger — either an instruction count (architectural faults) or a
simulated time (energy/NVM/signal faults).  Specs are frozen plain data:
picklable, comparable, and usable as campaign sweep-axis values.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..isa.operands import NUM_REGS


class FaultSimError(ReproError):
    """An injection plan or classification that cannot be carried out."""


#: Register bit-flip: XOR one bit into one register before an instruction.
REG_FLIP = "reg_flip"
#: Instruction skip: fetch and charge one instruction, execute nothing.
INSTR_SKIP = "instr_skip"
#: In-flight checkpoint corruption: one image word is stored corrupted and
#: the commit markers never land (the ``V_fail`` glitch hits mid-backup).
CKPT_CORRUPT = "ckpt_corrupt"
#: Truncated checkpoint: the image write stops after ``target`` words, as
#: if the buffered energy ran out mid-backup.
CKPT_TRUNCATE = "ckpt_truncate"
#: Dropped monitor signal: the next genuine CHECKPOINT/WAKE event is lost.
SIGNAL_DROP = "signal_drop"
#: Spurious monitor signal: a forged CHECKPOINT (running) or WAKE
#: (sleeping) where the monitor saw nothing.
SIGNAL_SPURIOUS = "signal_spurious"

#: Every model, in canonical (map-row) order.
FAULT_MODELS = (REG_FLIP, INSTR_SKIP, CKPT_CORRUPT, CKPT_TRUNCATE,
                SIGNAL_DROP, SIGNAL_SPURIOUS)
#: Models triggered by an instruction count (machine hook).
STEP_MODELS = frozenset({REG_FLIP, INSTR_SKIP})
#: Models triggered at the next checkpoint after a time (runtime hook).
CKPT_MODELS = frozenset({CKPT_CORRUPT, CKPT_TRUNCATE})
#: Models triggered at the next monitor sample after a time.
SIGNAL_MODELS = frozenset({SIGNAL_DROP, SIGNAL_SPURIOUS})

#: Words of the JIT checkpoint image that exist for every program state:
#: 16 registers, the PC, the sensor cursor, and the output-buffer length.
#: (Buffered OUT words follow but vary per checkpoint, so sweeps target
#: the fixed prefix.)
IMAGE_PREFIX_WORDS = NUM_REGS + 3


def image_word_label(index: int) -> str:
    """Human-readable name of one checkpoint-image word."""
    if index < NUM_REGS:
        return f"reg{index}"
    if index == NUM_REGS:
        return "pc"
    if index == NUM_REGS + 1:
        return "sensor"
    if index == NUM_REGS + 2:
        return "outlen"
    return f"out{index - IMAGE_PREFIX_WORDS}"


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault injection, as data.

    ``target`` is model-dependent: a register index (``reg_flip``), a
    checkpoint-image word index (``ckpt_corrupt``), or the number of image
    words that land before the cut (``ckpt_truncate``).  ``region`` is a
    plan-time attribution label used as the vulnerability map's row key —
    a program region for step-triggered faults, an image-word or signal
    label for the others (see :mod:`repro.faultsim.explorer`).
    """

    model: str
    target: int = 0
    bit: int = 0
    trigger_step: Optional[int] = None
    trigger_time_s: Optional[float] = None
    region: str = "?"

    def __post_init__(self) -> None:
        if self.model not in FAULT_MODELS:
            raise FaultSimError(f"unknown fault model {self.model!r} "
                                f"(want one of {', '.join(FAULT_MODELS)})")
        if self.model in STEP_MODELS and self.trigger_step is None:
            raise FaultSimError(f"{self.model} needs trigger_step")
        if self.model not in STEP_MODELS and self.trigger_time_s is None:
            raise FaultSimError(f"{self.model} needs trigger_time_s")

    def describe(self) -> str:
        """A one-line label, e.g. for logs and map records."""
        if self.model == REG_FLIP:
            return (f"reg_flip r{self.target % NUM_REGS} bit{self.bit % 32} "
                    f"@step {self.trigger_step}")
        if self.model == INSTR_SKIP:
            return f"instr_skip @step {self.trigger_step}"
        if self.model == CKPT_CORRUPT:
            label = image_word_label(self.target % IMAGE_PREFIX_WORDS)
            return (f"ckpt_corrupt {label} bit{self.bit % 32} "
                    f"@t>={self.trigger_time_s:.4f}s")
        if self.model == CKPT_TRUNCATE:
            return (f"ckpt_truncate after {self.target % IMAGE_PREFIX_WORDS} "
                    f"words @t>={self.trigger_time_s:.4f}s")
        return f"{self.model} @t>={self.trigger_time_s:.4f}s"

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})
