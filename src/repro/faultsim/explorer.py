"""Systematic exploration of the injection space, fanned out as a campaign.

ARMORY's lesson is that fault *campaigns* — sweeps over the full
(time × model × target) injection space — are the correctness tool for
fault-tolerant firmware, not single hand-picked glitches.  This module
turns that sweep into campaign data:

* :func:`profile_execution` runs the victim once on stable power and
  records which idempotent region every instruction belongs to, so
  step-triggered faults carry a plan-time region attribution;
* :class:`FaultCampaignSpec` deterministically expands (seeded RNG) into
  a list of :class:`~repro.faultsim.models.FaultSpec` injections and an
  :class:`~repro.eval.campaign.ExperimentSpec` whose sweep axis is the
  fault itself;
* :func:`run_fault_campaign` rides the existing
  :class:`~repro.eval.campaign.CampaignRunner` — worker pool, compile
  cache, baseline dedup — so the golden fault-free reference is computed
  once and shared, then classifies every outcome into a
  :class:`~repro.faultsim.report.VulnerabilityMap`.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.campaign import (
    AttackSpec,
    CampaignResult,
    CampaignRunner,
    ExperimentSpec,
    PathSpec,
)
from ..eval.common import VictimConfig
from ..eval.resilient import RetryPolicy
from ..isa.operands import NUM_REGS
from ..runtime import Machine
from ..seeds import spawn_rng
from .classify import classify, golden_pattern
from .models import (
    CKPT_CORRUPT,
    CKPT_TRUNCATE,
    FAULT_MODELS,
    FaultSimError,
    FaultSpec,
    IMAGE_PREFIX_WORDS,
    INSTR_SKIP,
    REG_FLIP,
    SIGNAL_DROP,
    SIGNAL_SPURIOUS,
    STEP_MODELS,
    image_word_label,
)
from .report import VulnerabilityMap

#: Injections per fault model in a default exhaustive sweep.
DEFAULT_POINTS = 50

#: Bus events kept per injection record (the "what led up to it" excerpt).
EXCERPT_EVENTS = 12

#: Stable-power profiling stop: no bundled workload iteration comes close.
_PROFILE_STEP_CAP = 500_000


def fault_victim(workload: str = "crc16", scheme: str = "nvp",
                 duration_s: float = 0.25, **overrides) -> VictimConfig:
    """A victim whose window genuinely exercises the checkpoint machinery.

    Same shape as the Fig. 13 detection rig: a small storage capacitor on
    an outage-driven harvester, so JIT checkpoints, shutdowns, and reboots
    recur throughout the window instead of never happening on bench power.
    """
    victim = VictimConfig(
        workload=workload, scheme=scheme, duration_s=duration_s,
        capacitance=22e-6, supply_w=None, outage_period_s=0.05,
        outage_duty=0.4, outage_power_w=8e-3, sleep_min_s=1e-3, quantum=64,
    )
    return victim.with_overrides(**overrides) if overrides else victim


@dataclass
class ExecutionProfile:
    """Region occupancy of one stable-power reference execution.

    Region ids change only at MARK commits, so the per-step list collapses
    into a handful of runs; queries bisect the run boundaries (the same
    O(log n) treatment ``AttackSchedule.source_at`` got) instead of
    indexing a step-sized list per lookup.
    """

    regions: List[int] = field(default_factory=list)
    #: ISR activations of the profiling run: (vector, entry, exit) step
    #: ranges, entry-ordered.  Empty for programs without peripherals.
    isr_spans: List[Tuple[int, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        starts: List[int] = []
        values: List[int] = []
        for step, region in enumerate(self.regions):
            if not values or region != values[-1]:
                starts.append(step)
                values.append(region)
        self._starts = starts
        self._values = values

    @property
    def total_steps(self) -> int:
        return len(self.regions)

    def region_at(self, step: int) -> int:
        """The last-committed region when instruction ``step`` executes."""
        if not self.regions:
            return 0
        step %= len(self.regions)
        return self._values[bisect.bisect_right(self._starts, step) - 1]

    def isr_at(self, step: int) -> Optional[int]:
        """The vector whose handler is live at ``step``, if any."""
        if self.regions:
            step %= len(self.regions)
        for vector, entry, exit_ in self.isr_spans:
            if entry <= step < exit_:
                return vector
        return None

    def isr_steps(self) -> int:
        """Total profiled steps spent inside ISR activations."""
        return sum(exit_ - entry for _, entry, exit_ in self.isr_spans)


def profile_execution(linked,
                      max_steps: int = _PROFILE_STEP_CAP) -> ExecutionProfile:
    """One fault-free iteration, recording the region at every step."""
    machine = Machine(linked)
    regions: List[int] = []
    while not machine.halted and len(regions) < max_steps:
        regions.append(machine.read_word("__region_cur"))
        machine.step()
    if not machine.halted:
        raise FaultSimError(
            f"profiling run did not halt within {max_steps} steps")
    spans: List[Tuple[int, int, int]] = []
    if machine._periph is not None:
        for span in machine._periph.trace:
            exit_step = span.exit_step if span.closed \
                else machine.instr_count
            spans.append((span.vector, span.entry_step, exit_step))
    return ExecutionProfile(regions=regions, isr_spans=spans)


@dataclass
class FaultCampaignSpec:
    """A whole injection campaign as data: victim + models + density.

    ``points`` injections are drawn per fault model from a seeded RNG, so
    the same spec always expands to the same plan — the determinism the
    serial/parallel bit-identity guarantee rests on.

    ``isr_window`` restricts *step-triggered* injections to instruction
    steps where an interrupt handler is live (reactive workloads only),
    tagged ``isr:<vector>`` — the adversary who times faults to interrupt
    arrival.  Time-triggered models (checkpoint images, monitor signals)
    are not handler-localized and draw as usual.
    """

    victim: VictimConfig = field(default_factory=fault_victim)
    models: Tuple[str, ...] = FAULT_MODELS
    points: int = DEFAULT_POINTS
    seed: int = 0
    name: str = "faultsim"
    isr_window: bool = False

    def __post_init__(self) -> None:
        unknown = [m for m in self.models if m not in FAULT_MODELS]
        if unknown:
            raise FaultSimError(
                f"unknown fault models {unknown} "
                f"(want a subset of {', '.join(FAULT_MODELS)})")
        if self.points < 1:
            raise FaultSimError("points must be >= 1")

    # ------------------------------------------------------------------
    def plan(self, compiled=None) -> List[FaultSpec]:
        """The deterministic injection list (the campaign's sweep axis)."""
        profile: Optional[ExecutionProfile] = None
        if any(model in STEP_MODELS for model in self.models):
            compiled = compiled or self.victim.compile()
            profile = profile_execution(compiled.linked)
            if self.isr_window and not profile.isr_spans:
                raise FaultSimError(
                    f"isr_window campaign on {self.victim.workload!r}, but "
                    f"its profiling run delivered no interrupts")
        duration = self.victim.duration_s
        plan: List[FaultSpec] = []
        seen = set()
        for model in self.models:
            # One spawned child stream per model axis (not a shared
            # stream, not ``seed + i``): model lists of different
            # lengths or orders can never correlate the draws.
            rng = spawn_rng(self.seed, "faultsim", "model", model)
            for index in range(self.points):
                fault = self._draw(model, index, rng, profile, duration)
                # The RNG samples with replacement; a repeated draw is the
                # same injection and would be simulated (and counted) twice.
                if fault not in seen:
                    seen.add(fault)
                    plan.append(fault)
        return plan

    def _draw(self, model: str, index: int, rng: random.Random,
              profile: Optional[ExecutionProfile],
              duration: float) -> FaultSpec:
        if model in STEP_MODELS:
            if self.isr_window:
                step = self._draw_isr_step(rng, profile)
                region = f"isr:{profile.isr_at(step)}"
            else:
                step = rng.randrange(profile.total_steps)
                region = f"region:{profile.region_at(step)}"
            if model == REG_FLIP:
                return FaultSpec(model=model, trigger_step=step,
                                 target=rng.randrange(NUM_REGS),
                                 bit=rng.randrange(32), region=region)
            return FaultSpec(model=model, trigger_step=step, region=region)
        if model == CKPT_CORRUPT:
            target = rng.randrange(IMAGE_PREFIX_WORDS)
            # Even spread over the window so injections land after the
            # first committed checkpoint, where corruption can bite.
            t = duration * (index + 1) / (self.points + 1)
            return FaultSpec(model=model, trigger_time_s=t, target=target,
                             bit=rng.randrange(32),
                             region=f"img:{image_word_label(target)}")
        if model == CKPT_TRUNCATE:
            cut = rng.randrange(IMAGE_PREFIX_WORDS)
            t = duration * (index + 1) / (self.points + 1)
            return FaultSpec(model=model, trigger_time_s=t, target=cut,
                             region="img:partial")
        # Signal faults: anywhere in the window but its very end, where a
        # forged event could no longer change anything observable.
        t = rng.uniform(0.0, duration * 0.9)
        assert model in (SIGNAL_DROP, SIGNAL_SPURIOUS)
        return FaultSpec(model=model, trigger_time_s=t, region="signal")

    def _draw_isr_step(self, rng: random.Random,
                       profile: ExecutionProfile) -> int:
        """One step uniform over the union of ISR activation ranges."""
        flat = rng.randrange(max(1, profile.isr_steps()))
        for _, entry, exit_ in profile.isr_spans:
            width = exit_ - entry
            if flat < width:
                return entry + flat
            flat -= width
        return profile.isr_spans[-1][1]

    def experiment_spec(self,
                        plan: Optional[Sequence[FaultSpec]] = None,
                        compiled=None) -> ExperimentSpec:
        """The campaign grid: one silent-air run per injection, plus the
        shared golden baseline the classifier compares against."""
        plan = list(plan) if plan is not None else self.plan(compiled)
        return ExperimentSpec(
            name=f"{self.name}:{self.victim.workload}:{self.victim.scheme}",
            victim=self.victim,
            attack=AttackSpec.silent(),
            path=PathSpec.remote(),
            sweep={"fault": plan},
            baseline=True,
            telemetry=True,
        )


@dataclass
class FaultCampaign:
    """Everything one injection campaign produced."""

    spec: FaultCampaignSpec
    map: VulnerabilityMap
    campaign: CampaignResult

    @property
    def golden(self):
        return self.campaign.baselines[0].result

    def golden_outputs(self) -> List[int]:
        return golden_pattern(self.golden)


def run_fault_campaign(spec: FaultCampaignSpec, workers: int = 1,
                       runner: Optional[CampaignRunner] = None,
                       policy: Optional[RetryPolicy] = None
                       ) -> FaultCampaign:
    """Plan, fan out, classify: one vulnerability map per call.

    The compile cache is shared with any caller-provided runner, so a
    multi-scheme study (NVP vs. GECKO over the same workload) compiles
    each scheme exactly once across all of its campaigns.  A ``policy``
    adds per-injection timeouts and retries; injections that still fail
    are classified by their taxonomy tag (a ``timeout`` is a hang, a
    crash a brick) instead of losing the map.
    """
    runner = runner or CampaignRunner(workers=workers, policy=policy)
    key = spec.victim.compile_key()
    compiled = runner.compile_cache.get(key)
    if compiled is None:
        compiled = spec.victim.compile()
        runner.compile_cache[key] = compiled
    plan = spec.plan(compiled)
    campaign = runner.run(spec.experiment_spec(plan))

    vmap = VulnerabilityMap(scheme=spec.victim.scheme,
                            workload=spec.victim.workload, seed=spec.seed)
    for outcome in campaign.outcomes:
        fault = outcome.params["fault"]
        if outcome.baseline is None:
            raise FaultSimError(
                f"golden reference failed: "
                f"{campaign.baselines[0].error or 'missing baseline'}")
        events = outcome.result.events[-EXCERPT_EVENTS:] \
            if outcome.result is not None else []
        vmap.add(fault,
                 classify(outcome.result, outcome.baseline, outcome.error,
                          error_kind=outcome.error_kind),
                 error=outcome.error, events=events)
    return FaultCampaign(spec=spec, map=vmap, campaign=campaign)


def scheme_comparison(workload: str = "crc16",
                      schemes: Sequence[str] = ("nvp", "gecko"),
                      models: Sequence[str] = FAULT_MODELS,
                      points: int = DEFAULT_POINTS, seed: int = 0,
                      duration_s: float = 0.25, workers: int = 1,
                      runner: Optional[CampaignRunner] = None,
                      policy: Optional[RetryPolicy] = None,
                      backend: str = "interpreter"
                      ) -> Dict[str, FaultCampaign]:
    """The §VII-B3 experiment shape: one map per scheme, shared cache."""
    runner = runner or CampaignRunner(workers=workers, policy=policy)
    campaigns: Dict[str, FaultCampaign] = {}
    for scheme in schemes:
        spec = FaultCampaignSpec(
            victim=fault_victim(workload=workload, scheme=scheme,
                                duration_s=duration_s, backend=backend),
            models=tuple(models), points=points, seed=seed,
            name=f"faultsim-{scheme}",
        )
        campaigns[scheme] = run_fault_campaign(spec, runner=runner)
    return campaigns
