"""Systematic fault injection with outcome classification (ARMORY-style).

The subsystem answers the question the paper's evaluation answers by
hand in §VII-B3 — *which* induced faults does each crash-consistency
scheme survive? — by sweeping a binary's injection space
(time/step × fault model × target), classifying every injected run
against a golden fault-free reference, and aggregating the verdicts into
per-scheme vulnerability maps:

* :mod:`~repro.faultsim.models`   — the fault vocabulary (Moro-style
  register/skip faults plus checkpoint-image and monitor-signal faults);
* :mod:`~repro.faultsim.injector` — one-shot delivery through the
  runtime layer's explicit hook points;
* :mod:`~repro.faultsim.classify` — {masked, detected, hang, sdc, brick}
  against :attr:`SimResult.committed_outputs` ground truth;
* :mod:`~repro.faultsim.explorer` — deterministic planning and campaign
  fan-out over :class:`~repro.eval.campaign.CampaignRunner`;
* :mod:`~repro.faultsim.report`   — :class:`VulnerabilityMap` with JSON
  serialization, merge, and ASCII rendering.
"""

from .classify import (
    CORRUPTION_OUTCOMES,
    OUTCOME_ORDER,
    Outcome,
    classify,
    detection_signals,
    golden_pattern,
)
from .explorer import (
    DEFAULT_POINTS,
    ExecutionProfile,
    FaultCampaign,
    FaultCampaignSpec,
    fault_victim,
    profile_execution,
    run_fault_campaign,
    scheme_comparison,
)
from .injector import FaultInjector
from .models import (
    CKPT_CORRUPT,
    CKPT_MODELS,
    CKPT_TRUNCATE,
    FAULT_MODELS,
    FaultSimError,
    FaultSpec,
    IMAGE_PREFIX_WORDS,
    INSTR_SKIP,
    REG_FLIP,
    SIGNAL_DROP,
    SIGNAL_MODELS,
    SIGNAL_SPURIOUS,
    STEP_MODELS,
    image_word_label,
)
from .report import InjectionRecord, VulnerabilityMap

__all__ = [
    "CKPT_CORRUPT", "CKPT_MODELS", "CKPT_TRUNCATE", "CORRUPTION_OUTCOMES",
    "DEFAULT_POINTS", "ExecutionProfile", "FAULT_MODELS", "FaultCampaign",
    "FaultCampaignSpec", "FaultInjector", "FaultSimError", "FaultSpec",
    "IMAGE_PREFIX_WORDS", "INSTR_SKIP", "InjectionRecord", "OUTCOME_ORDER",
    "Outcome", "REG_FLIP", "SIGNAL_DROP", "SIGNAL_MODELS",
    "SIGNAL_SPURIOUS", "STEP_MODELS", "VulnerabilityMap", "classify",
    "detection_signals", "fault_victim", "golden_pattern",
    "image_word_label", "profile_execution", "run_fault_campaign",
    "scheme_comparison",
]
