"""Outcome classification against a golden fault-free reference.

Every injected run is judged the way ARMORY judges exhaustive fault
simulations: against the same victim's fault-free execution of the same
window.  Ground truth is :attr:`SimResult.committed_outputs` — the
externally observable I/O — plus the device's terminal state:

* ``brick``    — the device trapped and stayed dead (``final_state ==
  "failed"``); the paper's NVP-under-corruption end state (§VII-B3).
* ``hang``     — no corruption observed, but forward progress collapsed:
  zero completions, or under half the golden completion count.
* ``sdc``      — silent data corruption: some completed run committed
  output that differs from the golden pattern.
* ``detected`` — outputs correct, and the runtime visibly reacted: an
  attack detection, a checkpoint failure, or a rollback recovery beyond
  what the golden run needed.
* ``masked``   — the fault had no observable effect at all.

Precedence is severity order: brick > sdc > hang > detected > masked
(a corrupted output matters more than the slowdown around it; a run with
zero completions has no outputs, so ``hang`` still catches total stalls).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..runtime import SimResult
from .models import FaultSimError


class Outcome(str, enum.Enum):
    """Classification of one injected run (severity-ordered)."""

    MASKED = "masked"
    DETECTED = "detected"
    HANG = "hang"
    SDC = "sdc"
    BRICK = "brick"


#: Map-column order, benign to terminal.
OUTCOME_ORDER = (Outcome.MASKED, Outcome.DETECTED, Outcome.HANG,
                 Outcome.SDC, Outcome.BRICK)

#: Outcomes that violate the paper's correctness claim (§VII-B3).
CORRUPTION_OUTCOMES = frozenset({Outcome.SDC, Outcome.BRICK})


def golden_pattern(golden: SimResult) -> List[int]:
    """The per-completion output every run must reproduce exactly.

    The applications are deterministic loops (sensor replay included), so
    the golden run's completions all commit identical output; anything
    else means the reference itself is unusable.
    """
    if golden.machine_fault or golden.final_state == "failed":
        raise FaultSimError(
            f"golden reference is not fault-free: {golden.machine_fault}")
    if not golden.committed_outputs:
        raise FaultSimError(
            "golden reference completed no runs; lengthen the window")
    first = list(golden.committed_outputs[0])
    for outputs in golden.committed_outputs[1:]:
        if list(outputs) != first:
            raise FaultSimError(
                "golden reference output varies across iterations")
    return first


def detection_signals(result: SimResult, golden: SimResult) -> bool:
    """Did the runtime visibly react beyond the golden run's baseline?"""
    return (result.attacks_detected > golden.attacks_detected
            or result.jit_checkpoint_failures > golden.jit_checkpoint_failures
            or result.rollback_restores > golden.rollback_restores)


def classify(result: Optional[SimResult], golden: SimResult,
             error: Optional[str] = None,
             error_kind: Optional[str] = None) -> Outcome:
    """Classify one injected run against its golden reference.

    ``error`` covers runs the simulator itself gave up on (campaign-level
    failures): an exhausted slice budget is a stall, anything else a trap.
    ``error_kind`` is the campaign runner's taxonomy tag; a ``timeout``
    is a wall-clock stall and therefore a hang, like ``max_slices``.
    """
    pattern = golden_pattern(golden)
    if result is None:
        if error_kind == "timeout" or (error and "max_slices" in error):
            return Outcome.HANG
        return Outcome.BRICK
    if result.final_state == "failed" or result.machine_fault:
        return Outcome.BRICK
    for outputs in result.committed_outputs:
        if list(outputs) != pattern:
            return Outcome.SDC
    if result.completions * 2 < golden.completions:
        return Outcome.HANG
    if detection_signals(result, golden):
        return Outcome.DETECTED
    return Outcome.MASKED
