"""The injector: one :class:`FaultSpec` armed against one simulation.

A :class:`FaultInjector` implements all three hook surfaces the runtime
layer exposes — :meth:`Machine.attach`'s ``fault_hook`` (architectural
faults), :meth:`NVPRuntime.attach`'s ``fault_hook`` (checkpoint-image
faults), and the simulator's monitor-event filter (signal faults) — and
wires itself into exactly the surfaces its model needs when the
simulator calls :meth:`attach`.  Every fault fires at most once (the
one-shot ``fired`` flag is also what lets the threaded execution backend
resume whole-block execution after delivery); injectors are built
per-run inside campaign workers and never shared or pickled.
"""

from __future__ import annotations

from typing import List, Tuple

from ..analog.monitor import MonitorEvent
from ..isa.operands import MASK32, NUM_REGS, wrap32
from ..obs import FAULT_INJECTED
from .models import (
    CKPT_CORRUPT,
    CKPT_MODELS,
    CKPT_TRUNCATE,
    FaultSpec,
    REG_FLIP,
    SIGNAL_DROP,
    SIGNAL_MODELS,
    STEP_MODELS,
)

Write = Tuple[str, int, int]


class FaultInjector:
    """One-shot fault delivery through the runtime layer's hook points."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.fired = False
        self._sim = None

    @classmethod
    def from_spec(cls, spec) -> "FaultInjector":
        if isinstance(spec, dict):
            spec = FaultSpec.from_dict(spec)
        return cls(spec)

    # ------------------------------------------------------------------
    def attach(self, sim) -> None:
        """Wire into the hook surfaces this model needs (no patching).

        Checkpoint-image models need a runtime that actually JIT
        checkpoints; against a pure-rollback runtime (no ``fault_hook``
        attribute) they have no mechanism to land and stay unfired.
        """
        self._sim = sim
        model = self.spec.model
        if model in STEP_MODELS:
            sim.machine.attach(fault_hook=self)
        elif model in CKPT_MODELS and hasattr(sim.runtime, "fault_hook"):
            sim.runtime.attach(fault_hook=self)
        # SIGNAL_MODELS need no wiring: the simulator routes every monitor
        # event through filter_monitor_event itself.

    def _note_fired(self, detail: str) -> None:
        """Publish the injection on the simulation's event bus, if any —
        the excerpt fault reports quote to explain an sdc/brick outcome."""
        obs = getattr(self._sim, "obs", None)
        if obs is not None:
            obs.emit(FAULT_INJECTED, f"model={self.spec.model} {detail}")

    # -- Machine hook ---------------------------------------------------
    def before_step(self, machine) -> bool:
        """Fire a step-triggered fault; True means skip this instruction."""
        if self.fired or machine.instr_count < self.spec.trigger_step:
            return False
        self.fired = True
        if self.spec.model == REG_FLIP:
            index = self.spec.target % NUM_REGS
            flipped = (machine.regs[index] & MASK32) ^ (1 << (self.spec.bit % 32))
            machine.regs[index] = wrap32(flipped)
            self._note_fired(f"reg=R{index} bit={self.spec.bit % 32}")
            return False
        self._note_fired(f"step={machine.instr_count}")
        return True  # INSTR_SKIP

    # -- NVPRuntime hook ------------------------------------------------
    def on_checkpoint(self, writes: List[Write],
                      budget: int) -> Tuple[List[Write], int]:
        """Corrupt or truncate the in-flight checkpoint image.

        Both models cut the write sequence before the commit markers
        (``__jit_valid``, the ACK toggle): the glitch that corrupts the
        backup is the same glitch that keeps it from committing, exactly
        the ``V_fail``-window mechanism of §IV-B2.
        """
        spec = self.spec
        if self.fired or (self._sim is not None
                          and self._sim.t < spec.trigger_time_s):
            return writes, budget
        self.fired = True
        image_words = len(writes) - 2  # everything but the commit markers
        if image_words <= 0:
            return writes, budget
        if spec.model == CKPT_TRUNCATE:
            cut = spec.target % image_words
            self._note_fired(f"cut={cut}")
            return writes, min(budget, cut)
        # CKPT_CORRUPT: one bad store lands, then the backup dies.
        index = spec.target % image_words
        sym, off, value = writes[index]
        corrupted = wrap32((value & MASK32) ^ (1 << (spec.bit % 32)))
        writes = list(writes)
        writes[index] = (sym, off, corrupted)
        self._note_fired(f"word={index} bit={spec.bit % 32}")
        return writes, min(budget, image_words)

    # -- simulator (monitor) hook ---------------------------------------
    def filter_monitor_event(self, event: MonitorEvent, powered: bool,
                             t: float) -> MonitorEvent:
        """Drop the next genuine event, or forge one out of quiet air."""
        spec = self.spec
        if (self.fired or spec.model not in SIGNAL_MODELS
                or t < spec.trigger_time_s):
            return event
        if spec.model == SIGNAL_DROP:
            if event is not MonitorEvent.NONE:
                self.fired = True
                self._note_fired(f"dropped={event.name.lower()}")
                return MonitorEvent.NONE
            return event
        # SIGNAL_SPURIOUS: forge the signal that matters in this state.
        if event is MonitorEvent.NONE:
            self.fired = True
            forged = MonitorEvent.CHECKPOINT if powered else MonitorEvent.WAKE
            self._note_fired(f"forged={forged.name.lower()}")
            return forged
        return event
