"""Exception hierarchy for the GECKO reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch the library's failures without accidentally swallowing
unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class AsmError(ReproError):
    """Malformed assembly text or an ill-formed machine instruction."""


class LexError(ReproError):
    """Invalid character sequence in MiniC source."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class ParseError(ReproError):
    """MiniC source that does not conform to the grammar."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class SemanticError(ReproError):
    """MiniC source that parses but violates static semantics.

    Examples: use of an undeclared variable, calling an undefined function,
    recursion (unsupported on the static-frame call convention), or an array
    index on a scalar.
    """


class CompileError(ReproError):
    """A compiler pass could not produce a correct result."""


class WCETError(CompileError):
    """Worst-case execution time analysis failed.

    Raised when a loop has no derivable bound or when a region cannot be
    split below the power-on budget.
    """


class SimulationError(ReproError):
    """The intermittent-system simulator reached an inconsistent state."""


class MachineFault(ReproError):
    """The machine interpreter trapped (bad address, div by zero, bad PC)."""


class InvariantViolation(ReproError):
    """A torture-run invariant oracle failed.

    Raised by strict replay (:func:`repro.torture.engine.run_schedule`
    with ``strict=True``).  :mod:`repro.eval.resilient` classifies it as
    its own non-retryable ``invariant_violation`` error kind: retrying a
    deterministic oracle failure can only mask the finding.
    """
