"""The one canonical content digest every cache in the repo keys on.

Content addressing only works if every producer and consumer agrees on
the bytes being hashed.  Before this module, each cache rolled its own
key: the resilient executor hashed ``repr()`` output (unstable across
processes, dict construction order, and Python versions), while the
campaign journal hashed canonical JSON.  This module is the single
definition both now share:

* :func:`jsonable` — fold any value (dataclasses, tuples, mappings,
  primitives) into plain JSON types, deterministically;
* :func:`canonical_json` — the one serialization (sorted keys, no
  whitespace) whose bytes are the hashing contract;
* :func:`content_digest` — sha256 over those bytes;
* :func:`task_digest` / :func:`run_digest` — the two digest shapes used
  by the executor journal and the result store respectively.

A :class:`~repro.eval.campaign.RunSpec` digests identically no matter
which process, campaign, or client computed it — which is what lets the
result store memoize at run granularity across campaign boundaries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

__all__ = [
    "canonical_json",
    "content_digest",
    "jsonable",
    "run_digest",
    "task_digest",
]


def jsonable(value: Any) -> Any:
    """Fold ``value`` into plain JSON types, deterministically.

    Dataclasses become dicts, tuples become lists, mapping keys become
    strings; anything else falls back to ``repr()`` (callers wanting
    stable digests should stick to data — the declarative spec types are
    all dataclasses for exactly this reason).
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return repr(value)


def canonical_json(value: Any) -> str:
    """The canonical serialization: sorted keys, compact separators.

    Two structurally equal values — regardless of dict insertion order
    or tuple-vs-list spelling — produce byte-identical output.
    """
    return json.dumps(jsonable(value), sort_keys=True,
                      separators=(",", ":"))


def content_digest(value: Any) -> str:
    """sha256 hex digest of :func:`canonical_json` of ``value``."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def task_digest(index: int, payload: Any) -> str:
    """The executor's default journal digest: slot + payload content.

    Stable across processes and dict construction order — the property
    the old ``repr()``-based digest lacked.
    """
    return content_digest(["task", index, payload])


def run_digest(run: Any) -> str:
    """A :class:`~repro.eval.campaign.RunSpec`'s store key.

    Deliberately content-only: no campaign name, no grid index — so the
    same run submitted by different campaigns, clients, or processes
    lands on the same store entry.
    """
    return content_digest(run)
