"""The one canonical content digest every cache in the repo keys on.

Content addressing only works if every producer and consumer agrees on
the bytes being hashed.  Before this module, each cache rolled its own
key: the resilient executor hashed ``repr()`` output (unstable across
processes, dict construction order, and Python versions), while the
campaign journal hashed canonical JSON.  This module is the single
definition both now share:

* :func:`jsonable` — fold any value (dataclasses, tuples, mappings,
  primitives) into plain JSON types, deterministically;
* :func:`canonical_json` — the one serialization (sorted keys, no
  whitespace) whose bytes are the hashing contract;
* :func:`content_digest` — sha256 over those bytes;
* :func:`task_digest` / :func:`run_digest` — the two digest shapes used
  by the executor journal and the result store respectively.

A :class:`~repro.eval.campaign.RunSpec` digests identically no matter
which process, campaign, or client computed it — which is what lets the
result store memoize at run granularity across campaign boundaries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

__all__ = [
    "canonical_json",
    "content_digest",
    "jsonable",
    "run_digest",
    "task_digest",
]


#: Marks a coerced spelling in canonical JSON.  NUL never appears in
#: normal data, and plain strings that do contain it are themselves
#: tagged — so a coerced key or repr fallback can never produce the
#: same canonical bytes as an untouched value.
_TAG = "\x00"


def _fold_key(key: Any) -> str:
    """A mapping key's canonical string spelling.

    Plain strings pass through untouched (the common case, and what
    keeps existing digests stable); any other key — and any string
    starting with the tag byte — becomes the tag plus its own canonical
    JSON, so ``{1: x}`` and ``{"1": x}`` digest differently and two
    distinct keys cannot collapse onto one spelling.
    """
    if isinstance(key, str) and not key.startswith(_TAG):
        return key
    return _TAG + canonical_json(key)


def jsonable(value: Any) -> Any:
    """Fold ``value`` into plain JSON types, deterministically.

    Dataclasses become dicts, tuples become lists; mapping keys and
    unknown types are folded to *tagged* strings (see :data:`_TAG`) so
    structurally different values never share canonical bytes.  Callers
    wanting stable digests should still stick to data — the declarative
    spec types are all dataclasses for exactly this reason.
    """
    if isinstance(value, str):
        return _TAG + "s" + value if value.startswith(_TAG) else value
    if isinstance(value, (int, float, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        folded = {_fold_key(k): jsonable(v) for k, v in value.items()}
        if len(folded) != len(value):
            raise ValueError(
                f"mapping keys collide under canonical folding: "
                f"{sorted(map(repr, value))}")
        return folded
    return f"{_TAG}r{type(value).__qualname__}:{value!r}"


def canonical_json(value: Any) -> str:
    """The canonical serialization: sorted keys, compact separators.

    Two structurally equal values — regardless of dict insertion order
    or tuple-vs-list spelling — produce byte-identical output.
    """
    return json.dumps(jsonable(value), sort_keys=True,
                      separators=(",", ":"))


def content_digest(value: Any) -> str:
    """sha256 hex digest of :func:`canonical_json` of ``value``."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def task_digest(index: int, payload: Any) -> str:
    """The executor's default journal digest: slot + payload content.

    Stable across processes and dict construction order — the property
    the old ``repr()``-based digest lacked.
    """
    return content_digest(["task", index, payload])


def run_digest(run: Any) -> str:
    """A :class:`~repro.eval.campaign.RunSpec`'s store key.

    Deliberately content-only: no campaign name, no grid index — so the
    same run submitted by different campaigns, clients, or processes
    lands on the same store entry.
    """
    return content_digest(run)
