"""Content-addressed result store (:mod:`repro.store`).

Two layers:

* :mod:`repro.store.digest` — the canonical JSON content digest every
  cache in the repo keys on (executor journals, the result store, the
  serving layer);
* :mod:`repro.store.store` — :class:`ResultStore`, the sharded, crash-
  safe, on-disk store that serves any run ever executed from cache
  across campaigns and processes.

``repro-gecko store ls/stats/gc/import`` operates on a store directly;
:mod:`repro.serve` puts one behind a long-running service.
"""

from __future__ import annotations

from .digest import (
    canonical_json,
    content_digest,
    jsonable,
    run_digest,
    task_digest,
)
from .store import GCStats, ResultStore, StoreError, StoreStats

__all__ = [
    "GCStats",
    "ResultStore",
    "StoreError",
    "StoreStats",
    "canonical_json",
    "content_digest",
    "jsonable",
    "run_digest",
    "task_digest",
]
