"""Content-addressed result store: sharded JSONL segments on disk.

Every simulated run this repo ever journals is content-addressable (the
digest-keyed journal of :mod:`repro.eval.resilient` proved that); this
module makes the address durable and shared.  A :class:`ResultStore`
holds one entry per :func:`~repro.store.digest.run_digest`, so any
campaign, client, or process that resolves a run to the same digest is
served the recorded result instead of re-simulating it.

On-disk layout — sharded by digest prefix so no directory grows
unbounded and concurrent writers never contend on one file::

    root/
      .writers.lock                  # flock: shared per live writer,
                                     # exclusive during gc()
      buckets/
        <digest[:2]>/
          seg-<writer-id>.jsonl      # one append stream per writer
          seg-<writer-id>-gc.jsonl   # compacted replacement after gc()

Each line is one JSON entry ``{"digest", "value", "meta"}``.  Writes are
append-plus-flush; a crash can tear at most the trailing line of one
segment, and :meth:`ResultStore._scan_segment` recovers by truncating
the torn tail (own segments) or skipping it (segments another writer may
still be appending to).  The in-memory index maps digests to
``(segment, offset, length)`` so ``get`` is one seek+read — warm-store
serving runs at ≥10⁴ results/sec (``benchmarks/
bench_store_throughput.py``) without holding values in memory.

Concurrency model: one *writer id* (default: the pid) owns each segment
file, so parallel writer processes never interleave bytes; readers pick
up other writers' appends via :meth:`refresh`.  Every instance that has
appended holds a *shared* ``flock`` on ``root/.writers.lock`` until
:meth:`close`; ``gc()`` takes the *exclusive* side before touching any
segment, so it can never unlink a file a live writer is still appending
to — it raises :class:`StoreError` instead when other writers hold the
store open.  Concurrent readers stay safe throughout: gc compacts into
fresh segments and atomically replaces the old ones, and readers holding
old file handles keep reading the unlinked segments (POSIX semantics)
until their next :meth:`refresh`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import warnings
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

try:
    import fcntl
except ImportError:                       # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..errors import ReproError

__all__ = ["GCStats", "ResultStore", "StoreError", "StoreStats"]


class StoreError(ReproError):
    """A result-store layout, entry, or configuration problem."""


#: Open read handles kept per store (LRU-evicted); bounds fds, not data.
_READ_HANDLE_CAP = 64


@dataclasses.dataclass
class StoreStats:
    """One snapshot of store contents plus this instance's traffic."""

    entries: int = 0
    buckets: int = 0
    segments: int = 0
    bytes: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    duplicate_puts: int = 0
    torn_recovered: int = 0
    corrupt_skipped: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class GCStats:
    """What one :meth:`ResultStore.gc` pass did."""

    kept: int = 0
    dropped: int = 0
    duplicates_dropped: int = 0
    segments_compacted: int = 0
    bytes_reclaimed: int = 0
    dry_run: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class ResultStore:
    """A content-addressed, crash-safe, sharded on-disk result store.

    ``prefix_len`` controls the bucket fan-out (2 hex chars → 256
    buckets).  ``writer_id`` names this instance's append segments; it
    defaults to the pid, which is what makes parallel writer processes
    safe on one store.  ``fsync=True`` trades put throughput for
    power-loss durability (flush-only survives process crashes, which is
    the failure mode campaigns actually see).
    """

    def __init__(self, root: str, prefix_len: int = 2,
                 writer_id: Optional[str] = None,
                 fsync: bool = False) -> None:
        if not 1 <= prefix_len <= 8:
            raise StoreError(f"prefix_len must be in [1, 8], "
                             f"got {prefix_len}")
        self.root = root
        self.prefix_len = prefix_len
        self.writer_id = writer_id if writer_id is not None \
            else f"{os.getpid():x}"
        self.fsync = fsync
        self._lock = threading.RLock()
        #: digest -> (segment path, byte offset, byte length)
        self._index: Dict[str, Tuple[str, int, int]] = {}
        #: segment path -> bytes scanned so far (refresh resumes here)
        self._scanned: Dict[str, int] = {}
        self._write_handles: Dict[str, Any] = {}   # bucket -> own segment
        self._read_handles: Dict[str, Any] = {}    # path -> handle (LRU)
        self._lock_handle: Optional[Any] = None    # root/.writers.lock
        self._holds_writer_lock = False
        self._traffic = StoreStats()
        os.makedirs(self._buckets_dir(), exist_ok=True)
        self.refresh(repair=True)

    # -- paths ----------------------------------------------------------
    def _buckets_dir(self) -> str:
        return os.path.join(self.root, "buckets")

    def _writer_lock_path(self) -> str:
        return os.path.join(self.root, ".writers.lock")

    def _bucket_of(self, digest: str) -> str:
        if len(digest) <= self.prefix_len:
            raise StoreError(f"digest {digest!r} is shorter than the "
                             f"bucket prefix ({self.prefix_len})")
        return digest[:self.prefix_len]

    def _own_segment(self, bucket: str) -> str:
        return os.path.join(self._buckets_dir(), bucket,
                            f"seg-{self.writer_id}.jsonl")

    # -- loading and recovery -------------------------------------------
    def refresh(self, repair: bool = False) -> int:
        """Scan for entries appended since the last scan.

        Returns how many new entries were indexed.  ``repair=True``
        truncates a torn trailing line in place (done once at open, when
        no other writer can be mid-append on our own segments; plain
        refreshes skip the tail instead, because it may be another
        writer's in-flight append).
        """
        with self._lock:
            added = 0
            buckets_dir = self._buckets_dir()
            try:
                buckets = sorted(os.listdir(buckets_dir))
            except FileNotFoundError:
                return 0
            for bucket in buckets:
                bucket_dir = os.path.join(buckets_dir, bucket)
                if not os.path.isdir(bucket_dir):
                    continue
                for name in sorted(os.listdir(bucket_dir)):
                    if not name.endswith(".jsonl"):
                        continue
                    path = os.path.join(bucket_dir, name)
                    own = name == f"seg-{self.writer_id}.jsonl"
                    added += self._scan_segment(path,
                                                repair=repair and own)
            return added

    def _scan_segment(self, path: str, repair: bool) -> int:
        """Index entries past the scanned watermark; recover torn tails."""
        start = self._scanned.get(path, 0)
        added = 0
        try:
            handle = open(path, "rb")
        except OSError:
            return 0
        with handle:
            handle.seek(start)
            offset = start
            while True:
                line = handle.readline()
                if not line:
                    break
                length = len(line)
                if not line.endswith(b"\n"):
                    # Torn tail: a mid-write kill (or an in-flight append
                    # by another live writer).  Never index it; truncate
                    # only our own segments, and only at open time.
                    self._traffic.torn_recovered += 1
                    if repair:
                        with open(path, "r+b") as fix:
                            fix.truncate(offset)
                    break
                entry = self._parse_line(path, offset, line)
                offset += length
                self._scanned[path] = offset
                if entry is None:
                    continue
                self._index[entry["digest"]] = (path, offset - length,
                                                length)
                added += 1
        return added

    def _parse_line(self, path: str, offset: int,
                    line: bytes) -> Optional[dict]:
        try:
            entry = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            entry = None
        if not isinstance(entry, dict) or "digest" not in entry:
            self._traffic.corrupt_skipped += 1
            warnings.warn(
                f"result store {path}: skipping corrupt entry at byte "
                f"offset {offset}", RuntimeWarning, stacklevel=4)
            return None
        return entry

    # -- the API --------------------------------------------------------
    def contains(self, digest: str) -> bool:
        with self._lock:
            return digest in self._index

    def get(self, digest: str, default: Any = None) -> Optional[dict]:
        """The stored entry ``{"value", "meta"}`` for ``digest``, or
        ``default`` — one seek+read against the segment file."""
        with self._lock:
            location = self._index.get(digest)
            if location is None:
                self._traffic.misses += 1
                return default
            path, offset, length = location
            try:
                handle = self._reader(path)
                handle.seek(offset)
                entry = json.loads(handle.read(length))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                entry = None
            if not isinstance(entry, dict) \
                    or entry.get("digest") != digest:
                # Segment rewritten or unlinked under us (a gc by
                # another instance): drop its caches, rescan, retry.
                self._drop_reader(path)
                self._scanned.pop(path, None)
                self._index = {d: loc for d, loc in self._index.items()
                               if loc[0] != path}
                self.refresh()
                return self.get(digest, default)
            self._traffic.hits += 1
            return {"value": entry.get("value"),
                    "meta": entry.get("meta") or {}}

    def put(self, digest: str, value: Any,
            meta: Optional[dict] = None,
            fsync: Optional[bool] = None) -> bool:
        """Append one entry; returns False when the digest is already
        stored (content addressing makes re-puts no-ops).

        ``fsync`` overrides the store-wide durability default for this
        one put: ``True`` forces the entry to disk before returning (a
        killed writer then loses at most a torn tail after it, never
        this entry), ``False`` skips the sync, ``None`` defers to the
        constructor's ``fsync`` setting.  The torture corpus puts its
        repro cases with ``fsync=True`` — a shrunk failure is far more
        expensive to rediscover than an fsync costs.
        """
        with self._lock:
            if digest in self._index:
                self._traffic.duplicate_puts += 1
                return False
            bucket = self._bucket_of(digest)
            entry = {"digest": digest, "value": value,
                     "meta": dict(meta or {})}
            entry["meta"].setdefault("t", time.time())
            line = json.dumps(entry, sort_keys=True,
                              separators=(",", ":")) + "\n"
            self._acquire_writer_lock()
            handle = self._writer(bucket)
            offset = handle.tell()
            data = line.encode()
            handle.write(data)
            handle.flush()
            if self.fsync if fsync is None else fsync:
                os.fsync(handle.fileno())
            path = self._own_segment(bucket)
            self._index[digest] = (path, offset, len(data))
            self._scanned[path] = offset + len(data)
            self._traffic.puts += 1
            return True

    def stats(self) -> StoreStats:
        """Contents snapshot plus this instance's hit/miss traffic."""
        with self._lock:
            segments = set(loc[0] for loc in self._index.values())
            segments |= set(self._scanned)
            stats = dataclasses.replace(
                self._traffic,
                entries=len(self._index),
                buckets=len({self._bucket_of(d) for d in self._index}),
                segments=len(segments),
                bytes=sum(os.path.getsize(path) for path in segments
                          if os.path.exists(path)),
            )
            return stats

    def gc(self, keep: Optional[Callable[[str, dict], bool]] = None,
           max_age_s: Optional[float] = None,
           dry_run: bool = False) -> GCStats:
        """Compact segments: drop duplicate digests, stale entries
        (``max_age_s`` against ``meta["t"]``), and entries the ``keep``
        predicate rejects.  Atomic per segment (write-new + rename + old
        unlinked); concurrent readers keep their old handles until they
        :meth:`refresh`.

        Requires exclusive store access: raises :class:`StoreError` when
        another live writer (a running server, an in-flight campaign)
        holds this root open, because unlinking a segment a writer is
        still appending to would silently lose its subsequent puts.
        ``dry_run`` only reads and never takes the lock.
        """
        now = time.time()

        def retain(digest: str, entry: dict) -> bool:
            meta = entry.get("meta") or {}
            if max_age_s is not None \
                    and now - meta.get("t", now) > max_age_s:
                return False
            return keep is None or keep(digest, meta)

        with self._lock:
            result = GCStats(dry_run=dry_run)
            if not dry_run:
                # Exclusive before the scan: a writer appending between
                # scan and unlink would lose those entries otherwise.
                self._acquire_gc_lock()
            try:
                before = self.stats().bytes
                survivors: Dict[str, Tuple[str, dict]] = {}
                segment_paths: List[str] = []
                for bucket in sorted(os.listdir(self._buckets_dir())):
                    bucket_dir = os.path.join(self._buckets_dir(),
                                              bucket)
                    if not os.path.isdir(bucket_dir):
                        continue
                    for name in sorted(os.listdir(bucket_dir)):
                        if name.endswith(".jsonl"):
                            segment_paths.append(
                                os.path.join(bucket_dir, name))
                for path in segment_paths:
                    for _, _, entry in self._iter_segment(path):
                        digest = entry["digest"]
                        if digest in survivors:
                            result.duplicates_dropped += 1
                        elif retain(digest, entry):
                            survivors[digest] = \
                                (self._bucket_of(digest), entry)
                            result.kept += 1
                        else:
                            result.dropped += 1
                if dry_run:
                    return result

                # Write survivors into fresh per-bucket segments, then
                # atomically replace: rename over the gc name, unlink
                # every pre-existing segment (including stale gc files
                # from earlier passes and other — quiesced — writers,
                # which would otherwise resurrect dropped entries on
                # the next refresh), drop caches, and reindex.
                self._close_handles()
                by_bucket: Dict[str, List[dict]] = {}
                for digest, (bucket, entry) in survivors.items():
                    by_bucket.setdefault(bucket, []).append(entry)
                fresh: set = set()
                for bucket, entries in sorted(by_bucket.items()):
                    bucket_dir = os.path.join(self._buckets_dir(),
                                              bucket)
                    final = os.path.join(
                        bucket_dir, f"seg-{self.writer_id}-gc.jsonl")
                    tmp = final + ".tmp"
                    with open(tmp, "w") as handle:
                        for entry in sorted(entries,
                                            key=lambda e: e["digest"]):
                            handle.write(json.dumps(
                                entry, sort_keys=True,
                                separators=(",", ":")) + "\n")
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp, final)
                    fresh.add(final)
                    result.segments_compacted += 1
                for path in segment_paths:
                    if path not in fresh:
                        try:
                            os.unlink(path)
                        except FileNotFoundError:
                            pass
                self._index.clear()
                self._scanned.clear()
                self.refresh()
                result.bytes_reclaimed = max(
                    0, before - self.stats().bytes)
                return result
            finally:
                if not dry_run:
                    self._release_gc_lock()

    # -- ingest and iteration -------------------------------------------
    def import_journal(self, path: str,
                       meta: Optional[dict] = None) -> int:
        """Ingest a PR-5 :class:`~repro.eval.resilient.RunJournal` file:
        every successful journaled run becomes a store entry under its
        existing digest.  Returns how many entries were newly stored."""
        from ..eval.resilient import RunJournal  # local: avoid cycles

        imported = 0
        for digest, entry in RunJournal.load(path).items():
            if entry.get("result") is None:
                continue
            tags = {"src": "journal", "journal": os.path.basename(path)}
            tags.update(meta or {})
            if self.put(digest, entry["result"], meta=tags):
                imported += 1
        return imported

    def digests(self) -> List[str]:
        with self._lock:
            return sorted(self._index)

    def entries(self) -> Iterator[Tuple[str, dict]]:
        """Yield ``(digest, {"value", "meta"})`` in digest order."""
        for digest in self.digests():
            entry = self.get(digest)
            if entry is not None:
                yield digest, entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, digest: str) -> bool:
        return self.contains(digest)

    # -- the cross-process writer lock ----------------------------------
    def _acquire_writer_lock(self) -> None:
        """Hold the shared side of ``root/.writers.lock`` while this
        instance may have appended (first put acquires, :meth:`close`
        releases).  Blocks briefly while a gc holds the exclusive side,
        so a put can never land in a segment gc is about to unlink."""
        if fcntl is None or self._holds_writer_lock:
            return
        if self._lock_handle is None:
            self._lock_handle = open(self._writer_lock_path(), "a+b")
        fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_SH)
        self._holds_writer_lock = True

    def _acquire_gc_lock(self) -> None:
        """Take the exclusive side for the duration of a gc pass."""
        if fcntl is None:
            return
        if self._lock_handle is None:
            self._lock_handle = open(self._writer_lock_path(), "a+b")
        try:
            fcntl.flock(self._lock_handle.fileno(),
                        fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            raise StoreError(
                "gc needs exclusive store access, but another live "
                "writer holds this store open (a running server or "
                "in-flight campaign?); close or stop it, then retry"
            ) from None

    def _release_gc_lock(self) -> None:
        """Back to the pre-gc state: shared if this instance had
        written, unlocked otherwise."""
        if fcntl is None or self._lock_handle is None:
            return
        fcntl.flock(self._lock_handle.fileno(),
                    fcntl.LOCK_SH if self._holds_writer_lock
                    else fcntl.LOCK_UN)

    # -- handles --------------------------------------------------------
    def _writer(self, bucket: str):
        handle = self._write_handles.get(bucket)
        if handle is None:
            path = self._own_segment(bucket)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            handle = open(path, "ab")
            self._write_handles[bucket] = handle
        return handle

    def _reader(self, path: str):
        handle = self._read_handles.pop(path, None)
        if handle is None:
            handle = open(path, "rb")
            while len(self._read_handles) >= _READ_HANDLE_CAP:
                stale_path = next(iter(self._read_handles))
                self._read_handles.pop(stale_path).close()
        self._read_handles[path] = handle   # most-recently-used last
        return handle

    def _drop_reader(self, path: str) -> None:
        handle = self._read_handles.pop(path, None)
        if handle is not None:
            handle.close()

    def _iter_segment(self, path: str):
        """Yield ``(offset, length, entry)`` for every intact line."""
        try:
            handle = open(path, "rb")
        except OSError:
            return
        with handle:
            offset = 0
            while True:
                line = handle.readline()
                if not line or not line.endswith(b"\n"):
                    break
                try:
                    entry = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    entry = None
                if isinstance(entry, dict) and "digest" in entry:
                    yield offset, len(line), entry
                offset += len(line)

    def _close_handles(self) -> None:
        for handle in self._write_handles.values():
            handle.close()
        self._write_handles.clear()
        for handle in self._read_handles.values():
            handle.close()
        self._read_handles.clear()

    def close(self) -> None:
        with self._lock:
            self._close_handles()
            if self._lock_handle is not None:
                if fcntl is not None:
                    try:
                        fcntl.flock(self._lock_handle.fileno(),
                                    fcntl.LOCK_UN)
                    except OSError:
                        pass
                self._lock_handle.close()
                self._lock_handle = None
                self._holds_writer_lock = False

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
