"""The adversary's move set: a typed, bounded space of EMI attacks.

The paper evaluates GECKO against hand-picked attacks — fixed tones at
fixed minutes (Figs. 9/13).  Moro et al.'s EMFI fault model argues for
*parameterizing* the attack instead: the adversary's physical knobs form a
bounded space, and a search over that space measures the defense against
the worst attack the model admits, not the worst one a human thought of.

:class:`AttackCandidate` is one point of that space — carrier frequency,
transmit power, antenna distance, and a burst pattern (window start /
duration / duty cycle / hop period, all as fractions of the victim's run
window so the same candidate scales to any experiment length).
:class:`AttackSpace` bounds each knob (:class:`Bounds`), samples and
perturbs candidates with a caller-supplied seeded RNG, and encodes a
candidate into the existing harness vocabulary — an
:class:`~repro.eval.campaign.AttackSpec` + :class:`~repro.eval.campaign.
PathSpec` pair for campaigns, or a built :class:`~repro.emi.
AttackSchedule` + :class:`~repro.emi.RemotePath` for direct replay.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Sequence, Tuple

from ..emi import AttackSchedule, EMISource, RemotePath
from ..energy.harvester import dbm_to_watts
from ..errors import ReproError
from ..eval.campaign import AttackSpec, PathSpec

#: Bursts shorter than this fraction of the run are dropped as degenerate
#: (they would violate the AttackWindow start < end invariant once scaled).
MIN_BURST_FRAC = 1e-9


class AdversaryError(ReproError):
    """An attack space, strategy, or search that cannot be built or run."""


@dataclass(frozen=True)
class Bounds:
    """One closed parameter interval, optionally log-scaled.

    Log-scaled bounds sample and perturb in log10 space, which is the
    natural metric for distance (path loss is log-linear in it).
    """

    lo: float
    hi: float
    log: bool = False

    def __post_init__(self) -> None:
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise AdversaryError(f"bounds must be finite, got {self}")
        if not self.lo < self.hi:
            raise AdversaryError(f"bounds need lo < hi, got {self}")
        if self.log and self.lo <= 0:
            raise AdversaryError(f"log bounds need lo > 0, got {self}")

    def clip(self, value: float) -> float:
        return min(self.hi, max(self.lo, value))

    def sample(self, rng: random.Random) -> float:
        if self.log:
            return 10.0 ** rng.uniform(math.log10(self.lo),
                                       math.log10(self.hi))
        return rng.uniform(self.lo, self.hi)

    def grid(self, n: int) -> List[float]:
        """``n`` evenly spaced values, endpoints included."""
        if n < 1:
            raise AdversaryError("grid needs n >= 1")
        if n == 1:
            return [self.lo]
        if self.log:
            lo, hi = math.log10(self.lo), math.log10(self.hi)
            return [10.0 ** (lo + (hi - lo) * i / (n - 1)) for i in range(n)]
        return [self.lo + (self.hi - self.lo) * i / (n - 1)
                for i in range(n)]

    def neighbor(self, value: float, rng: random.Random,
                 scale: float) -> float:
        """A Gaussian perturbation of ``value``, clipped back in bounds."""
        if self.log:
            span = math.log10(self.hi) - math.log10(self.lo)
            moved = math.log10(max(value, self.lo)) \
                + rng.gauss(0.0, scale * span)
            return self.clip(10.0 ** moved)
        return self.clip(value + rng.gauss(0.0, scale * (self.hi - self.lo)))


@dataclass(frozen=True)
class AttackCandidate:
    """One fully-specified attack the adversary model admits.

    Timing fields are fractions of the victim's run window: the active
    interval is ``[start, start + duration)``, chopped into bursts of
    period ``hop_period`` transmitting for the first ``duty`` fraction of
    each (``duty >= 1`` collapses to one continuous window).
    """

    freq_mhz: float
    tx_dbm: float
    distance_m: float
    start: float
    duration: float
    duty: float
    hop_period: float

    # -- timeline ------------------------------------------------------
    def windows(self) -> Tuple[Tuple[float, float], ...]:
        """(start, end) transmission bursts as fractions of the run."""
        end = min(1.0, self.start + self.duration)
        if end - self.start <= MIN_BURST_FRAC:
            return ()
        if self.duty >= 1.0:
            return ((self.start, end),)
        period = max(self.hop_period, MIN_BURST_FRAC)
        bursts: List[Tuple[float, float]] = []
        t = self.start
        while t < end - MIN_BURST_FRAC:
            on_end = min(end, t + period * self.duty)
            if on_end - t > MIN_BURST_FRAC:
                bursts.append((t, on_end))
            t += period
        return tuple(bursts)

    def airtime_frac(self) -> float:
        return sum(end - start for start, end in self.windows())

    def airtime_s(self, duration_s: float) -> float:
        return self.airtime_frac() * duration_s

    def energy_j(self, duration_s: float) -> float:
        """The attacker's transmitted energy: P_tx × airtime."""
        return dbm_to_watts(self.tx_dbm) * self.airtime_s(duration_s)

    # -- encoding into the harness vocabulary --------------------------
    def source(self) -> EMISource:
        return EMISource(self.freq_mhz * 1e6, self.tx_dbm)

    def attack_spec(self) -> AttackSpec:
        return AttackSpec.bursts(self.windows(), freq_mhz=self.freq_mhz,
                                 tx_dbm=self.tx_dbm)

    def path_spec(self) -> PathSpec:
        return PathSpec.remote(distance_m=self.distance_m)

    def build(self, duration_s: float) -> Tuple[AttackSchedule, RemotePath]:
        """The replayable (schedule, path) pair at a concrete run length."""
        source = self.source()
        schedule = AttackSchedule.from_intervals(
            [(a * duration_s, b * duration_s) for a, b in self.windows()],
            source)
        return schedule, RemotePath(distance_m=self.distance_m)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "AttackCandidate":
        return cls(**{f.name: data[f.name] for f in fields(cls)})


#: The searchable knobs and their physical bounds: the paper's rig caps
#: power at 35 dBm (§III); the susceptible band sits below ~60 MHz
#: (§IV-A2); sub-meter standoff is not "remote" any more.
DEFAULT_BOUNDS: Dict[str, Bounds] = {
    "freq_mhz": Bounds(5.0, 60.0),
    "tx_dbm": Bounds(10.0, 35.0),
    "distance_m": Bounds(1.0, 10.0, log=True),
    "start": Bounds(0.0, 0.9),
    "duration": Bounds(0.05, 1.0),
    "duty": Bounds(0.1, 1.0),
    "hop_period": Bounds(0.02, 0.5),
}


@dataclass(frozen=True)
class AttackSpace:
    """Bounded candidate space with seeded sampling and perturbation."""

    bounds: Mapping[str, Bounds] = field(
        default_factory=lambda: dict(DEFAULT_BOUNDS))

    def __post_init__(self) -> None:
        want = {f.name for f in fields(AttackCandidate)}
        got = set(self.bounds)
        if want != got:
            raise AdversaryError(
                f"space must bound exactly the candidate fields; "
                f"missing {sorted(want - got)}, extra {sorted(got - want)}")

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> AttackCandidate:
        return AttackCandidate(**{name: bounds.sample(rng)
                                  for name, bounds in self.bounds.items()})

    def clip(self, candidate: AttackCandidate) -> AttackCandidate:
        return AttackCandidate(**{
            name: bounds.clip(getattr(candidate, name))
            for name, bounds in self.bounds.items()})

    def neighbor(self, candidate: AttackCandidate, rng: random.Random,
                 scale: float = 0.15) -> AttackCandidate:
        """Perturb every knob; the anneal strategy's proposal move."""
        return AttackCandidate(**{
            name: bounds.neighbor(getattr(candidate, name), rng, scale)
            for name, bounds in self.bounds.items()})

    def aggressive(self, freq_mhz: float) -> AttackCandidate:
        """The max-damage prior at one tone: full window, full power,
        closest standoff, continuous transmission."""
        return self.clip(AttackCandidate(
            freq_mhz=freq_mhz,
            tx_dbm=self.bounds["tx_dbm"].hi,
            distance_m=self.bounds["distance_m"].lo,
            start=self.bounds["start"].lo,
            duration=self.bounds["duration"].hi,
            duty=self.bounds["duty"].hi,
            hop_period=self.bounds["hop_period"].hi,
        ))

    def lattice(self, n_freq: int, n_power: int = 1) -> List[AttackCandidate]:
        """A (frequency × power) grid of aggressive candidates — the grid
        strategy's plan and the anneal strategy's warm start."""
        power = self.bounds["tx_dbm"]
        # Full power first (and only full power when n_power == 1): the
        # lattice is the *aggressive* prior, not a uniform grid.
        powers = [power.hi] if n_power == 1 \
            else list(reversed(power.grid(n_power)))
        out: List[AttackCandidate] = []
        for tx_dbm in powers:
            for freq in self.bounds["freq_mhz"].grid(n_freq):
                out.append(replace(self.aggressive(freq), tx_dbm=tx_dbm))
        return out
