"""Adaptive EMI attack synthesis: search the attack space, map the frontier.

The paper (and every harness in :mod:`repro.eval`) replays *hand-picked*
attacks; this subsystem measures each defense against the **worst attack
the adversary model admits**:

* :mod:`~repro.adversary.space` — a typed, bounded
  :class:`AttackSpace` over the adversary's physical knobs (tone,
  power, distance, burst timing), encoded into the existing
  campaign/schedule vocabulary;
* :mod:`~repro.adversary.objectives` — pluggable objectives: damage
  (progress loss, SDC, brick, rollback pressure), detectability, and
  attacker cost;
* :mod:`~repro.adversary.strategies` — seeded grid / random /
  simulated-annealing / successive-halving search;
* :mod:`~repro.adversary.search` — the orchestrator, fanning candidate
  evaluations through the campaign engine with energy-infeasibility
  pruning and deterministic serial == parallel fingerprints;
* :mod:`~repro.adversary.frontier` — Pareto frontiers over
  (damage, detectability, cost) and the robustness-domination order;
* :mod:`~repro.adversary.report` — :class:`RobustnessReport`: NVP vs
  GECKO under their own worst found attacks, JSON round-trippable, with
  found attacks replayable by the existing harnesses.

Quickstart::

    from repro.adversary import compare_defenses

    report = compare_defenses(workload="blink", budget=64, workers=4)
    print(report.render())
    assert report.more_robust("gecko", than="nvp")
"""

from .frontier import FrontierPoint, ParetoFrontier, more_robust
from .isrspace import (
    MAX_ARRIVALS,
    IsrPhaseCandidate,
    IsrPhaseSpace,
    isr_attack_space,
    render_isr_comparison,
    search_isr_defense,
)
from .objectives import (
    OBJECTIVES,
    AttackScores,
    ObjectiveWeights,
    corruption_rate,
    objective_fn,
    progress_loss,
    rollback_pressure,
    score,
    unsimulated,
)
from .report import (
    DefenseReport,
    FoundAttack,
    RobustnessReport,
    compare_defenses,
    replay,
)
from .search import (
    PRUNE_THRESHOLD_V,
    AdversaryResult,
    AdversarySearch,
    Evaluation,
    SearchStats,
    adversary_victim,
    search_defense,
)
from .space import (
    DEFAULT_BOUNDS,
    AdversaryError,
    AttackCandidate,
    AttackSpace,
    Bounds,
)
from .strategies import (
    STRATEGIES,
    AnnealStrategy,
    GridStrategy,
    HalvingStrategy,
    RandomStrategy,
    SearchStrategy,
    Trial,
    make_strategy,
)

__all__ = [
    "AdversaryError", "AdversaryResult", "AdversarySearch", "AnnealStrategy",
    "AttackCandidate", "AttackScores", "AttackSpace", "Bounds",
    "DEFAULT_BOUNDS", "DefenseReport", "Evaluation", "FoundAttack",
    "FrontierPoint", "GridStrategy", "HalvingStrategy",
    "IsrPhaseCandidate", "IsrPhaseSpace", "MAX_ARRIVALS", "OBJECTIVES",
    "ObjectiveWeights", "PRUNE_THRESHOLD_V", "ParetoFrontier",
    "RandomStrategy", "RobustnessReport", "STRATEGIES", "SearchStats",
    "SearchStrategy", "Trial", "adversary_victim", "compare_defenses",
    "corruption_rate", "isr_attack_space", "make_strategy", "more_robust",
    "objective_fn", "progress_loss", "render_isr_comparison", "replay",
    "rollback_pressure", "score", "search_defense", "search_isr_defense",
    "unsimulated",
]
