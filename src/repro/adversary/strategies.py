"""Seeded search strategies over the attack space.

Each strategy is a batch ask/tell loop: :meth:`SearchStrategy.ask` yields
the next batch of :class:`Trial` proposals (empty when the evaluation
budget is spent) and :meth:`SearchStrategy.tell` feeds back the scalar
objective values, in order.  The orchestrator owns the actual
simulations, so strategies stay pure, picklable, and deterministic: the
same (space, budget, seed) always proposes the same trials, which is
what the serial == parallel fingerprint guarantee rests on.

* :class:`GridStrategy` — an aggressive (frequency × power) lattice, the
  static-sweep baseline every adaptive strategy must beat;
* :class:`RandomStrategy` — uniform random search, the classic
  hard-to-beat baseline;
* :class:`AnnealStrategy` — parallel simulated-annealing chains warm
  started from the aggressive lattice, with a geometric temperature
  schedule and proposal scale that narrows as the search cools;
* :class:`HalvingStrategy` — successive halving: a wide cohort at low
  simulation fidelity (a prefix of the run window), with only the top
  half promoted to each higher rung, so the full-length budget is spent
  on candidates that already showed damage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

from ..seeds import spawn_rng
from .space import AdversaryError, AttackCandidate, AttackSpace


@dataclass(frozen=True)
class Trial:
    """One proposed evaluation: a candidate at a simulation fidelity.

    ``fidelity`` scales the simulated window (1.0 = the victim's full
    ``duration_s``); only full-fidelity evaluations feed the frontier.
    """

    candidate: AttackCandidate
    fidelity: float = 1.0


class SearchStrategy:
    """Base ask/tell strategy with budget accounting."""

    name = "strategy"

    def __init__(self, space: AttackSpace, budget: int, seed: int = 0,
                 batch: int = 8) -> None:
        if budget < 1:
            raise AdversaryError("search budget must be >= 1")
        if batch < 1:
            raise AdversaryError("batch size must be >= 1")
        self.space = space
        self.budget = budget
        self.batch = batch
        # Spawned per strategy name: two strategies sharing one root
        # seed (a portfolio search) draw uncorrelated streams instead of
        # replaying each other's candidates.
        self.rng = spawn_rng(seed, "adversary", "strategy", self.name)
        self.asked = 0

    @property
    def remaining(self) -> int:
        return self.budget - self.asked

    def _take(self, candidates: Sequence[AttackCandidate],
              fidelity: float = 1.0) -> List[Trial]:
        """Wrap candidates as trials, clamped to the remaining budget."""
        kept = list(candidates)[:max(0, self.remaining)]
        self.asked += len(kept)
        return [Trial(candidate=c, fidelity=fidelity) for c in kept]

    # ------------------------------------------------------------------
    def ask(self) -> List[Trial]:
        raise NotImplementedError

    def tell(self, trials: Sequence[Trial],
             values: Sequence[float]) -> None:
        """Feed back the scalar objective per trial (same order)."""


class GridStrategy(SearchStrategy):
    """Exhaustive aggressive lattice over (frequency × power)."""

    name = "grid"

    def __init__(self, space: AttackSpace, budget: int, seed: int = 0,
                 batch: int = 8) -> None:
        super().__init__(space, budget, seed, batch)
        n_power = 1 if budget < 16 else 2
        n_freq = max(1, math.ceil(budget / n_power))
        self._plan = space.lattice(n_freq, n_power)[:budget]
        self._cursor = 0

    def ask(self) -> List[Trial]:
        chunk = self._plan[self._cursor:self._cursor + self.batch]
        self._cursor += len(chunk)
        return self._take(chunk)


class RandomStrategy(SearchStrategy):
    """Uniform random sampling of the whole space."""

    name = "random"

    def ask(self) -> List[Trial]:
        n = min(self.batch, self.remaining)
        return self._take([self.space.sample(self.rng) for _ in range(n)])


class AnnealStrategy(SearchStrategy):
    """Parallel simulated-annealing chains with a warm start.

    Each of ``batch`` chains keeps its best-known candidate; every round
    proposes a Gaussian neighbor per chain and accepts uphill moves
    always, downhill moves with probability ``exp(Δ / T)``.  The first
    round seeds half the chains from the aggressive frequency lattice
    (attackers know published board resonances) and half at random.
    """

    name = "anneal"

    #: Initial temperature relative to the damage scale (~0..2).
    T0 = 0.25
    #: Geometric cooling per round.
    DECAY = 0.7
    T_MIN = 0.01
    #: Proposal scale tracks temperature: bold while hot, local when cold.
    SCALE_HOT = 0.25
    SCALE_COLD = 0.05

    def __init__(self, space: AttackSpace, budget: int, seed: int = 0,
                 batch: int = 8) -> None:
        super().__init__(space, budget, seed, batch)
        self.temperature = self.T0
        self._state: List[Tuple[AttackCandidate, float]] = []
        self._pending_chains: List[int] = []

    def _scale(self) -> float:
        warmth = (self.temperature - self.T_MIN) / (self.T0 - self.T_MIN)
        warmth = min(1.0, max(0.0, warmth))
        return self.SCALE_COLD + (self.SCALE_HOT - self.SCALE_COLD) * warmth

    def ask(self) -> List[Trial]:
        if self.remaining <= 0:
            return []
        if not self._state:
            seeds = self.space.lattice(max(1, self.batch // 2))
            while len(seeds) < self.batch:
                seeds.append(self.space.sample(self.rng))
            proposals = seeds[:self.batch]
        else:
            proposals = [self.space.neighbor(cand, self.rng, self._scale())
                         for cand, _ in self._state]
        trials = self._take(proposals)
        self._pending_chains = list(range(len(trials)))
        return trials

    def tell(self, trials: Sequence[Trial],
             values: Sequence[float]) -> None:
        if not self._state:
            self._state = [(t.candidate, v)
                           for t, v in zip(trials, values)]
        else:
            for chain, trial, value in zip(self._pending_chains, trials,
                                           values):
                current = self._state[chain][1]
                delta = value - current
                if delta >= 0 or self.rng.random() < \
                        math.exp(delta / max(self.temperature, 1e-9)):
                    self._state[chain] = (trial.candidate, value)
        self.temperature = max(self.T_MIN, self.temperature * self.DECAY)


class HalvingStrategy(SearchStrategy):
    """Successive halving over simulation fidelity.

    Rung fidelities are prefixes of the run window; between rungs only
    the top ``1/eta`` of the cohort survives.  Candidates that cannot
    even couple (energy-infeasible) are scored without simulation by the
    orchestrator, so they are pruned before the first promotion — the
    budget flows to candidates that already demonstrated damage.
    """

    name = "halving"

    FIDELITIES = (0.25, 0.5, 1.0)
    ETA = 2

    def __init__(self, space: AttackSpace, budget: int, seed: int = 0,
                 batch: int = 8) -> None:
        super().__init__(space, budget, seed, batch)
        self._rungs = self._plan_rungs(budget)
        self._rung = 0
        self._cohort = self._initial_cohort(self._rungs[0][1])
        self._scored: List[Tuple[AttackCandidate, float]] = []

    def _plan_rungs(self, budget: int) -> List[Tuple[float, int]]:
        """(fidelity, cohort size) per rung, fitted to the budget."""
        for rungs in (self.FIDELITIES, self.FIDELITIES[1:],
                      self.FIDELITIES[2:]):
            # n0 halves per promotion: total = sum(n0 // eta**i).
            n0 = budget
            while n0 > 1 and sum(max(1, n0 // self.ETA ** i)
                                 for i in range(len(rungs))) > budget:
                n0 -= 1
            sizes = [max(1, n0 // self.ETA ** i) for i in range(len(rungs))]
            if sum(sizes) <= budget and sizes[0] >= self.ETA ** \
                    (len(rungs) - 1):
                return list(zip(rungs, sizes))
        return [(1.0, budget)]

    def _initial_cohort(self, n: int) -> List[AttackCandidate]:
        cohort = self.space.lattice(max(1, n // 2))
        while len(cohort) < n:
            cohort.append(self.space.sample(self.rng))
        return cohort[:n]

    def ask(self) -> List[Trial]:
        if self._rung >= len(self._rungs) or not self._cohort:
            return []
        fidelity, _ = self._rungs[self._rung]
        return self._take(self._cohort, fidelity=fidelity)

    def tell(self, trials: Sequence[Trial],
             values: Sequence[float]) -> None:
        self._scored.extend(
            (t.candidate, v) for t, v in zip(trials, values))
        if len(self._scored) < len(self._cohort):
            return
        self._rung += 1
        if self._rung >= len(self._rungs):
            self._cohort = []
            return
        _, size = self._rungs[self._rung]
        ranked = sorted(enumerate(self._scored),
                        key=lambda item: (-item[1][1], item[0]))
        self._cohort = [cand for _, (cand, _) in ranked[:size]]
        self._scored = []


#: Strategy registry, keyed by CLI name.
STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    GridStrategy.name: GridStrategy,
    RandomStrategy.name: RandomStrategy,
    AnnealStrategy.name: AnnealStrategy,
    HalvingStrategy.name: HalvingStrategy,
}


def make_strategy(name: str, space: AttackSpace, budget: int,
                  seed: int = 0, batch: int = 8) -> SearchStrategy:
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise AdversaryError(
            f"unknown strategy {name!r} "
            f"(choose from {', '.join(sorted(STRATEGIES))})")
    return cls(space, budget, seed=seed, batch=batch)
