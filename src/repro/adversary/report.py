"""Robustness reports: defenses compared by their worst found attacks.

A :class:`RobustnessReport` is the artifact the whole subsystem exists to
produce: per defense, the Pareto frontier of found attacks and the
worst-case attack itself — serialized round-trippably
(:class:`FoundAttack` carries the built
:class:`~repro.emi.AttackSchedule`), so a discovered attack replays
through the existing harnesses (:func:`replay`,
``repro-gecko adversary --replay``) long after the search that found it.

Because each defense's search explores its own trajectory, frontiers from
independent searches are not directly comparable point-by-point.
:func:`compare_defenses` therefore **cross-evaluates** the union of all
discovered frontier attacks against every defense — the same attack, both
victims — and :meth:`RobustnessReport.more_robust` decides domination on
that matched matrix: defense A is strictly more robust than B when every
union attack does at most as much damage to A as to B (within a small
tolerance) and A's worst case is strictly less damaging.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..emi import AttackSchedule, RemotePath
from ..eval.campaign import CampaignRunner, ExperimentSpec
from ..eval.common import VictimConfig, run_attack
from ..eval.resilient import RetryPolicy
from ..obs import Observability
from ..runtime import SimResult
from .frontier import ParetoFrontier, more_robust
from .objectives import AttackScores, ObjectiveWeights, score
from .search import (
    AdversaryResult,
    AdversarySearch,
    adversary_victim,
    Evaluation,
)
from .space import AdversaryError, AttackCandidate, AttackSpace

#: Cap on the cross-evaluation attack set; the head-to-head matrix costs
#: ``len(union) × len(schemes)`` extra simulations.
CROSS_MAX = 8

#: Matched-attack damage slack: sub-tolerance differences between two
#: defenses under the *same* attack are measurement noise (checkpoint
#: phase jitter at near-zero damage), not a robustness signal.
DAMAGE_TOL = 0.05


@dataclass
class FoundAttack:
    """One discovered attack, frozen for replay.

    The schedule is the candidate *built* at the search's run length, so
    replay does not depend on the adversary package's encoding staying
    stable — ``AttackSchedule.from_dict`` is the only contract.
    """

    candidate: AttackCandidate
    scores: AttackScores
    schedule: dict
    distance_m: float
    duration_s: float

    @classmethod
    def from_evaluation(cls, evaluation: Evaluation,
                        duration_s: float) -> "FoundAttack":
        schedule, path = evaluation.candidate.build(duration_s)
        return cls(candidate=evaluation.candidate,
                   scores=evaluation.scores,
                   schedule=schedule.to_dict(),
                   distance_m=path.distance_m,
                   duration_s=duration_s)

    def to_schedule(self) -> Tuple[AttackSchedule, RemotePath]:
        """The replayable (schedule, path) pair."""
        return (AttackSchedule.from_dict(self.schedule),
                RemotePath(distance_m=self.distance_m))

    def to_dict(self) -> dict:
        return {"candidate": self.candidate.to_dict(),
                "scores": self.scores.to_dict(),
                "schedule": self.schedule,
                "distance_m": self.distance_m,
                "duration_s": self.duration_s}

    @classmethod
    def from_dict(cls, data: dict) -> "FoundAttack":
        return cls(candidate=AttackCandidate.from_dict(data["candidate"]),
                   scores=AttackScores.from_dict(data["scores"]),
                   schedule=data["schedule"],
                   distance_m=data["distance_m"],
                   duration_s=data["duration_s"])


@dataclass
class DefenseReport:
    """One defense's robustness measurement."""

    scheme: str
    workload: str
    frontier: ParetoFrontier
    worst_case: Optional[FoundAttack]
    evaluations: int
    simulations: int
    pruned: int
    fingerprint: str

    @classmethod
    def from_result(cls, result: AdversaryResult) -> "DefenseReport":
        worst = result.worst_case()
        return cls(
            scheme=result.scheme, workload=result.workload,
            frontier=result.frontier,
            worst_case=FoundAttack.from_evaluation(worst, result.duration_s)
            if worst is not None else None,
            evaluations=result.stats.evaluations,
            simulations=result.stats.simulations,
            pruned=result.stats.pruned,
            fingerprint=result.fingerprint(),
        )

    @property
    def worst_damage(self) -> float:
        point = self.frontier.worst_case()
        return point.damage if point is not None else 0.0

    def to_dict(self) -> dict:
        return {"scheme": self.scheme, "workload": self.workload,
                "frontier": self.frontier.to_dict(),
                "worst_case": self.worst_case.to_dict()
                if self.worst_case else None,
                "evaluations": self.evaluations,
                "simulations": self.simulations,
                "pruned": self.pruned,
                "fingerprint": self.fingerprint}

    @classmethod
    def from_dict(cls, data: dict) -> "DefenseReport":
        return cls(scheme=data["scheme"], workload=data["workload"],
                   frontier=ParetoFrontier.from_dict(data["frontier"]),
                   worst_case=FoundAttack.from_dict(data["worst_case"])
                   if data["worst_case"] else None,
                   evaluations=data["evaluations"],
                   simulations=data["simulations"],
                   pruned=data["pruned"],
                   fingerprint=data["fingerprint"])


@dataclass
class RobustnessReport:
    """The cross-defense comparison: NVP vs GECKO under their own worst
    found attacks, JSON round-trippable."""

    workload: str
    strategy: str
    budget: int
    seed: int
    duration_s: float
    defenses: Dict[str, DefenseReport] = field(default_factory=dict)
    #: Union of every defense's frontier attacks, replayed head-to-head.
    cross_attacks: List[AttackCandidate] = field(default_factory=list)
    #: Damage per scheme, aligned with ``cross_attacks``.
    cross_damage: Dict[str, List[float]] = field(default_factory=dict)

    def more_robust(self, scheme: str, than: str,
                    damage_tol: float = DAMAGE_TOL) -> bool:
        """Is ``scheme`` strictly more robust than ``than``?

        When the head-to-head matrix is available (it is, whenever
        :func:`compare_defenses` found any attack), the verdict is decided
        on matched attacks: every union attack must do at most as much
        damage to ``scheme`` as to ``than`` (within ``damage_tol``), and
        the worst case against ``scheme`` must be strictly smaller.
        Without cross data, falls back to frontier domination
        (:func:`~repro.adversary.frontier.more_robust`).
        """
        ours = self.cross_damage.get(scheme)
        theirs = self.cross_damage.get(than)
        if ours and theirs:
            return (max(ours) < max(theirs)
                    and all(a <= b + damage_tol
                            for a, b in zip(ours, theirs)))
        return more_robust(self.defenses[scheme].frontier,
                           self.defenses[than].frontier)

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        lines = [f"adversary search: {self.workload}  "
                 f"strategy={self.strategy}  budget={self.budget}  "
                 f"seed={self.seed}"]
        for scheme, report in self.defenses.items():
            lines.append("")
            lines.append(
                f"{scheme}: worst damage {report.worst_damage:.3f}  "
                f"({report.simulations} simulated, {report.pruned} pruned; "
                f"frontier size {len(report.frontier)})  "
                f"[fingerprint {report.fingerprint[:16]}]")
            for point in report.frontier:
                bar = "#" * int(round(min(point.damage, 2.0) * 15))
                lines.append(
                    f"  damage={point.damage:6.3f}  "
                    f"det={point.detectability:4.0f}  "
                    f"cost={point.cost_j:8.3f}J  {bar}")
            worst = report.worst_case
            if worst is not None:
                c = worst.candidate
                lines.append(
                    f"  worst attack: {c.freq_mhz:.1f} MHz @ "
                    f"{c.tx_dbm:.1f} dBm, {c.distance_m:.1f} m, "
                    f"window [{c.start:.2f}, "
                    f"{min(1.0, c.start + c.duration):.2f}] "
                    f"duty {c.duty:.2f}")
        if self.cross_attacks and self.cross_damage:
            lines.append("")
            lines.append("head-to-head: damage per defense over the union "
                         "of frontier attacks")
            lines.append("  " + "attack".ljust(46) + "".join(
                scheme.rjust(8) for scheme in self.cross_damage))
            for i, c in enumerate(self.cross_attacks):
                label = (f"{c.freq_mhz:5.1f} MHz @{c.tx_dbm:4.1f} dBm "
                         f"{c.distance_m:4.1f} m  "
                         f"[{c.start:.2f}, "
                         f"{min(1.0, c.start + c.duration):.2f}] "
                         f"duty {c.duty:.2f}")
                lines.append("  " + label.ljust(46) + "".join(
                    f"{damages[i]:8.3f}"
                    for damages in self.cross_damage.values()))
        schemes = list(self.defenses)
        for scheme in schemes:
            for other in schemes:
                if scheme != other and self.more_robust(scheme, other):
                    lines.append("")
                    lines.append(
                        f"{scheme} is strictly more robust than {other}: "
                        f"every found attack does no more damage to it, "
                        f"and its worst case is strictly smaller.")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"workload": self.workload, "strategy": self.strategy,
                "budget": self.budget, "seed": self.seed,
                "duration_s": self.duration_s,
                "defenses": {scheme: report.to_dict()
                             for scheme, report in self.defenses.items()},
                "cross_attacks": [c.to_dict() for c in self.cross_attacks],
                "cross_damage": {scheme: list(damages)
                                 for scheme, damages
                                 in self.cross_damage.items()}}

    @classmethod
    def from_dict(cls, data: dict) -> "RobustnessReport":
        return cls(workload=data["workload"], strategy=data["strategy"],
                   budget=data["budget"], seed=data["seed"],
                   duration_s=data["duration_s"],
                   defenses={scheme: DefenseReport.from_dict(report)
                             for scheme, report
                             in data["defenses"].items()},
                   cross_attacks=[AttackCandidate.from_dict(c)
                                  for c in data.get("cross_attacks", [])],
                   cross_damage={scheme: list(damages)
                                 for scheme, damages
                                 in data.get("cross_damage", {}).items()})

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "RobustnessReport":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def compare_defenses(workload: str = "blink",
                     schemes: Sequence[str] = ("nvp", "gecko"),
                     strategy: str = "anneal",
                     budget: int = 32,
                     seed: int = 0,
                     duration_s: float = 0.05,
                     batch: int = 8,
                     objective: str = "damage",
                     weights: Optional[ObjectiveWeights] = None,
                     space: Optional[AttackSpace] = None,
                     workers: int = 1,
                     runner: Optional[CampaignRunner] = None,
                     policy: Optional[RetryPolicy] = None,
                     obs: Optional[Observability] = None,
                     backend: str = "interpreter"
                     ) -> RobustnessReport:
    """Search each defense with the same strategy/budget/seed and compare.

    The runner (and with it the compile cache and worker pool) is shared
    across defenses, so a two-scheme comparison compiles each scheme
    exactly once.  After the per-defense searches, the union of every
    frontier's attacks (capped at :data:`CROSS_MAX`, strongest first) is
    replayed against *every* defense, so robustness is judged on matched
    attacks rather than on each search's private trajectory.
    """
    runner = runner or CampaignRunner(workers=workers, policy=policy)
    weights = weights or ObjectiveWeights()
    report = RobustnessReport(workload=workload, strategy=strategy,
                              budget=budget, seed=seed,
                              duration_s=duration_s)
    victims: Dict[str, VictimConfig] = {}
    results: Dict[str, AdversaryResult] = {}
    for scheme in schemes:
        victim = adversary_victim(workload=workload, scheme=scheme,
                                  duration_s=duration_s, backend=backend)
        victims[scheme] = victim
        results[scheme] = AdversarySearch(
            victim, space=space, strategy=strategy, objective=objective,
            budget=budget, seed=seed, batch=batch, weights=weights,
            runner=runner, obs=obs).run()
        report.defenses[scheme] = DefenseReport.from_result(results[scheme])
    _cross_evaluate(report, victims, results, runner, weights)
    return report


def _union_attacks(results: Dict[str, AdversaryResult]
                   ) -> List[AttackCandidate]:
    """Union of all frontiers' candidates, strongest first, deduped and
    capped — the deterministic head-to-head attack set."""
    seen = set()
    union: List[Tuple[float, str, AttackCandidate]] = []
    for result in results.values():
        for point in result.frontier:
            candidate = result.evaluations[point.index].candidate
            key = json.dumps(candidate.to_dict(), sort_keys=True)
            if key not in seen:
                seen.add(key)
                union.append((point.damage, key, candidate))
    union.sort(key=lambda item: (-item[0], item[1]))
    return [candidate for _, _, candidate in union[:CROSS_MAX]]


def _cross_evaluate(report: RobustnessReport,
                    victims: Dict[str, VictimConfig],
                    results: Dict[str, AdversaryResult],
                    runner: CampaignRunner,
                    weights: ObjectiveWeights) -> None:
    """Fill the report's head-to-head matrix: every union attack replayed
    against every defense through the shared runner."""
    attacks = _union_attacks(results)
    if not attacks:
        return
    report.cross_attacks = attacks
    for scheme, victim in victims.items():
        spec = ExperimentSpec(
            name=f"adversary-cross:{victim.workload}:{scheme}",
            victim=victim, baseline=False,
            sweep={"*": [{"attack": c.attack_spec(),
                          "path": c.path_spec()} for c in attacks]},
        )
        damages: List[float] = []
        for candidate, outcome in zip(attacks, runner.run(spec).outcomes):
            if outcome.error or outcome.result is None:
                raise AdversaryError(
                    f"cross-evaluation failed: {outcome.error}")
            damages.append(score(candidate, outcome.result,
                                 results[scheme].golden,
                                 victim.duration_s, 1.0, weights).damage)
        report.cross_damage[scheme] = damages


def replay(found: FoundAttack, workload: str, scheme: str,
           duration_s: Optional[float] = None,
           backend: str = "interpreter") -> SimResult:
    """Re-run a discovered attack through the standard harness."""
    schedule, path = found.to_schedule()
    victim = adversary_victim(
        workload=workload, scheme=scheme,
        duration_s=duration_s if duration_s is not None
        else found.duration_s, backend=backend)
    return run_attack(victim, schedule, path=path)
