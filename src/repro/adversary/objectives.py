"""What the adversary is optimizing: pluggable objectives over outcomes.

Every candidate evaluation reduces a :class:`~repro.runtime.SimResult`
(against the defense's golden, attack-free reference run) to an
:class:`AttackScores` record along three axes:

* **damage** — what the attack cost the victim: forward-progress loss
  (§IV-A2's R), silent data corruption and bricking (the §VII-B3 end
  states, scored like :mod:`repro.faultsim` classifies them), and
  rollback pressure (restores forced beyond the golden run's);
* **detectability** — how visibly the runtime reacted
  (:attr:`SimResult.attacks_detected`, the Fig. 13 detector);
* **cost** — the attacker's transmitted energy (power × airtime).

Search strategies rank candidates by a *scalarized* objective
(:data:`OBJECTIVES`: raw damage, detection-penalized stealth, or
energy-normalized efficiency) while the Pareto frontier keeps all three
axes (:mod:`repro.adversary.frontier`), so one search yields the whole
damage / detectability / cost trade surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Optional

from ..runtime import SimResult
from ..runtime.metrics import check_outputs, forward_progress_rate
from .space import AdversaryError, AttackCandidate


@dataclass(frozen=True)
class ObjectiveWeights:
    """How the damage components combine, and how scalarization trades
    damage against detectability and attacker cost."""

    progress_loss: float = 1.0
    sdc: float = 1.0
    brick: float = 2.0
    rollback: float = 0.1
    #: Scalarization penalties (per detection / per joule transmitted).
    detection_penalty: float = 0.02
    cost_penalty_per_j: float = 0.0


@dataclass(frozen=True)
class AttackScores:
    """One candidate's full scorecard (the frontier's raw material)."""

    damage: float
    progress_loss: float
    corruption_rate: float
    bricked: bool
    rollback_pressure: float
    detections: int
    cost_j: float
    airtime_s: float

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "AttackScores":
        return cls(**{f.name: data[f.name] for f in fields(cls)})


def progress_loss(result: SimResult, golden: SimResult,
                  fidelity: float = 1.0) -> float:
    """1 - R: the fraction of golden forward progress the attack erased.

    Low-fidelity rungs (successive halving) simulate a prefix of the run;
    the golden cycle count scales by ``fidelity`` so rungs stay comparable.
    """
    if golden.executed_cycles <= 0:
        return 0.0
    if fidelity >= 1.0:
        return 1.0 - forward_progress_rate(result, golden)
    scaled = golden.executed_cycles * fidelity
    return 1.0 - min(1.0, result.executed_cycles / scaled) \
        if scaled > 0 else 0.0


def corruption_rate(result: SimResult, golden: SimResult) -> float:
    """Fraction of completed iterations that committed corrupt output."""
    if not result.committed_outputs:
        return 0.0
    golden_run = golden.committed_outputs[0] if golden.committed_outputs \
        else []
    return check_outputs(result, golden_run).corruption_rate


def rollback_pressure(result: SimResult, golden: SimResult) -> float:
    """Extra rollback restores the attack forced, per golden completion."""
    extra = result.rollback_restores - golden.rollback_restores
    if extra <= 0:
        return 0.0
    return extra / max(1, golden.completions)


def score(candidate: AttackCandidate, result: SimResult, golden: SimResult,
          duration_s: float, fidelity: float = 1.0,
          weights: Optional[ObjectiveWeights] = None) -> AttackScores:
    """Reduce one evaluated candidate to its :class:`AttackScores`."""
    weights = weights or ObjectiveWeights()
    loss = progress_loss(result, golden, fidelity)
    sdc = corruption_rate(result, golden)
    bricked = result.final_state == "failed"
    rollback = rollback_pressure(result, golden)
    damage = (weights.progress_loss * loss
              + weights.sdc * sdc
              + weights.brick * (1.0 if bricked else 0.0)
              + weights.rollback * min(1.0, rollback))
    window_s = duration_s * fidelity
    return AttackScores(
        damage=damage,
        progress_loss=loss,
        corruption_rate=sdc,
        bricked=bricked,
        rollback_pressure=rollback,
        detections=result.attacks_detected,
        cost_j=candidate.energy_j(window_s),
        airtime_s=candidate.airtime_s(window_s),
    )


def unsimulated(candidate: AttackCandidate, duration_s: float,
                fidelity: float = 1.0) -> AttackScores:
    """The scorecard of a pruned (energy-infeasible) candidate: the tone
    never couples, so it does zero damage — but still costs energy."""
    window_s = duration_s * fidelity
    return AttackScores(
        damage=0.0, progress_loss=0.0, corruption_rate=0.0, bricked=False,
        rollback_pressure=0.0, detections=0,
        cost_j=candidate.energy_j(window_s),
        airtime_s=candidate.airtime_s(window_s),
    )


# ----------------------------------------------------------------------
# Scalarized objectives (what a search strategy ranks by).
# ----------------------------------------------------------------------
def damage_objective(scores: AttackScores,
                     weights: ObjectiveWeights) -> float:
    """Pure damage: the worst-case-attack search."""
    return scores.damage


def stealth_objective(scores: AttackScores,
                      weights: ObjectiveWeights) -> float:
    """Damage discounted by how loudly the runtime reacted."""
    return scores.damage - weights.detection_penalty * scores.detections \
        - weights.cost_penalty_per_j * scores.cost_j


def efficiency_objective(scores: AttackScores,
                         weights: ObjectiveWeights) -> float:
    """Damage per joule transmitted (log-compressed to stay bounded)."""
    if scores.cost_j <= 0:
        return 0.0
    return scores.damage / (1.0 + math.log10(1.0 + scores.cost_j * 1e3))


#: The pluggable objective registry; external code may register more.
OBJECTIVES: Dict[str, Callable[[AttackScores, ObjectiveWeights], float]] = {
    "damage": damage_objective,
    "stealth": stealth_objective,
    "efficiency": efficiency_objective,
}


def objective_fn(name: str) -> Callable[[AttackScores, ObjectiveWeights],
                                        float]:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise AdversaryError(
            f"unknown objective {name!r} "
            f"(choose from {', '.join(sorted(OBJECTIVES))})")
