"""The adaptive adversary: strategy-driven search fanned out as campaigns.

:class:`AdversarySearch` closes the loop between a seeded
:class:`~repro.adversary.strategies.SearchStrategy` and the campaign
engine: every ``ask`` batch becomes one
:class:`~repro.eval.campaign.ExperimentSpec` whose paired ``"*"`` axis
carries (attack, path, duration) per candidate, executed by a shared
:class:`~repro.eval.campaign.CampaignRunner` — so candidate evaluations
reuse the compile cache and worker pool, and a serial search and a pooled
search of the same seed produce bit-identical evaluations (asserted via
:meth:`AdversaryResult.fingerprint`).

Candidates whose tone cannot physically couple into the victim's monitor
(induced amplitude below :data:`PRUNE_THRESHOLD_V` at their frequency,
power, and distance) are *pruned*: scored as zero-damage without burning
a simulation, the ARMORY lesson that exhaustive campaigns only scale when
the infeasible bulk is cut early.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..eval.campaign import (
    AttackSpec,
    CampaignRunner,
    ExperimentSpec,
    PathSpec,
)
from ..eval.resilient import RetryPolicy
from ..eval.common import VictimConfig
from ..obs import ADVERSARY_CANDIDATE, ADVERSARY_ROUND, Observability
from ..runtime import SimResult
from .frontier import FrontierPoint, ParetoFrontier
from .objectives import (
    AttackScores,
    ObjectiveWeights,
    objective_fn,
    score,
    unsimulated,
)
from .space import AdversaryError, AttackCandidate, AttackSpace
from .strategies import SearchStrategy, Trial, make_strategy

#: Induced-amplitude floor below which a tone cannot flip any monitor
#: reading (the ADC quantization step is ~3 mV); such candidates are
#: pruned without simulation.
PRUNE_THRESHOLD_V = 0.005

#: Full-fidelity evaluations feed the frontier; halving rungs do not.
FULL_FIDELITY = 1.0 - 1e-9


def adversary_victim(workload: str = "blink", scheme: str = "nvp",
                     duration_s: float = 0.05,
                     **overrides) -> VictimConfig:
    """The Fig. 13 detection rig as the search target: an outage-driven
    harvester and a small storage capacitor, so checkpoints, shutdowns,
    and (for GECKO) the detection protocol run throughout the window."""
    victim = VictimConfig(
        workload=workload, scheme=scheme, duration_s=duration_s,
        capacitance=22e-6, supply_w=None, outage_period_s=0.05,
        outage_duty=0.4, outage_power_w=8e-3, sleep_min_s=1e-3, quantum=64,
        region_budget=20_000,
    )
    return victim.with_overrides(**overrides) if overrides else victim


@dataclass
class Evaluation:
    """One scored candidate: what was tried, at what fidelity, and how
    it went.  ``pruned`` evaluations never reached the simulator;
    ``failed`` ones reached it but died there (timeout, crashed worker,
    or simulation error after the runner's retries) and are scored as
    zero-damage so the search continues on the surviving batch."""

    index: int
    round: int
    candidate: AttackCandidate
    fidelity: float
    scores: AttackScores
    objective: float
    pruned: bool = False
    failed: bool = False

    def to_dict(self) -> dict:
        return {"index": self.index, "round": self.round,
                "candidate": self.candidate.to_dict(),
                "fidelity": self.fidelity,
                "scores": self.scores.to_dict(),
                "objective": self.objective,
                "pruned": self.pruned,
                "failed": self.failed}

    @classmethod
    def from_dict(cls, data: dict) -> "Evaluation":
        return cls(index=data["index"], round=data["round"],
                   candidate=AttackCandidate.from_dict(data["candidate"]),
                   fidelity=data["fidelity"],
                   scores=AttackScores.from_dict(data["scores"]),
                   objective=data["objective"],
                   pruned=data["pruned"],
                   failed=data.get("failed", False))


@dataclass
class SearchStats:
    """Cost accounting for one search."""

    evaluations: int = 0
    simulations: int = 0
    pruned: int = 0
    failures: int = 0
    rounds: int = 0
    workers: int = 1
    wall_time_s: float = 0.0


@dataclass
class AdversaryResult:
    """Everything one search against one defense produced."""

    workload: str
    scheme: str
    strategy: str
    objective: str
    budget: int
    seed: int
    duration_s: float
    evaluations: List[Evaluation] = field(default_factory=list)
    frontier: ParetoFrontier = field(default_factory=ParetoFrontier)
    stats: SearchStats = field(default_factory=SearchStats)
    golden: Optional[SimResult] = None

    def worst_case(self) -> Optional[Evaluation]:
        """The frontier's maximum-damage attack, as a full evaluation."""
        point = self.frontier.worst_case()
        return self.evaluations[point.index] if point is not None else None

    def best_damage(self) -> float:
        point = self.frontier.worst_case()
        return point.damage if point is not None else 0.0

    def fingerprint(self) -> str:
        """sha256 over the canonical JSON of evaluations + frontier —
        equal between serial and pooled runs of the same seed."""
        payload = {
            "evaluations": [e.to_dict() for e in self.evaluations],
            "frontier": self.frontier.to_dict(),
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


class AdversarySearch:
    """Search one defense for its worst admissible EMI attack."""

    def __init__(self, victim: VictimConfig,
                 space: Optional[AttackSpace] = None,
                 strategy: str = "anneal",
                 objective: str = "damage",
                 budget: int = 32,
                 seed: int = 0,
                 batch: int = 8,
                 weights: Optional[ObjectiveWeights] = None,
                 workers: int = 1,
                 runner: Optional[CampaignRunner] = None,
                 policy: Optional[RetryPolicy] = None,
                 obs: Optional[Observability] = None,
                 prune_threshold_v: float = PRUNE_THRESHOLD_V) -> None:
        self.victim = victim
        self.space = space if space is not None else AttackSpace()
        self.strategy_name = strategy
        self.objective_name = objective
        self.objective = objective_fn(objective)
        self.budget = budget
        self.seed = seed
        self.batch = batch
        self.weights = weights or ObjectiveWeights()
        self.runner = runner or CampaignRunner(workers=workers,
                                               policy=policy)
        self.obs = obs
        self.prune_threshold_v = prune_threshold_v
        self._curve = victim.profile().curve_for(victim.monitor_kind)

    # ------------------------------------------------------------------
    def feasible(self, candidate: AttackCandidate) -> bool:
        """Can this tone induce anything the monitor could even quantize?"""
        if not candidate.windows():
            return False
        source = candidate.source()
        received = candidate.path_spec().build().received_power_w(source)
        amplitude = self._curve.induced_amplitude(source.frequency_hz,
                                                  received)
        return amplitude >= self.prune_threshold_v

    def _golden(self) -> SimResult:
        spec = ExperimentSpec(
            name=f"adversary-golden:{self.victim.workload}:"
                 f"{self.victim.scheme}",
            victim=self.victim, attack=AttackSpec.silent(),
            path=PathSpec.remote(), baseline=False,
        )
        outcome = self.runner.run(spec).outcomes[0]
        if outcome.error or outcome.result is None:
            raise AdversaryError(
                f"golden reference run failed: {outcome.error}")
        return outcome.result

    def _evaluate_batch(self, trials: Sequence[Trial],
                        round_index: int) -> List[Optional[SimResult]]:
        """Simulate one ask-batch; a candidate whose run still fails after
        the runner's retries yields ``None`` rather than aborting the
        search — partial batches keep the remaining candidates."""
        points = [{
            "attack": trial.candidate.attack_spec(),
            "path": trial.candidate.path_spec(),
            "duration_s": self.victim.duration_s * trial.fidelity,
        } for trial in trials]
        spec = ExperimentSpec(
            name=f"adversary:{self.victim.workload}:{self.victim.scheme}:"
                 f"r{round_index}",
            victim=self.victim, baseline=False, sweep={"*": points},
        )
        results: List[Optional[SimResult]] = []
        for outcome in self.runner.run(spec).outcomes:
            if outcome.error or outcome.result is None:
                results.append(None)
            else:
                results.append(outcome.result)
        return results

    def _emit(self, kind: str, detail: str, t: float) -> None:
        if self.obs is not None:
            self.obs.emit(kind, detail, t=t)

    # ------------------------------------------------------------------
    def run(self) -> AdversaryResult:
        start = time.perf_counter()
        strategy: SearchStrategy = make_strategy(
            self.strategy_name, self.space, self.budget,
            seed=self.seed, batch=self.batch)
        golden = self._golden()
        result = AdversaryResult(
            workload=self.victim.workload, scheme=self.victim.scheme,
            strategy=self.strategy_name, objective=self.objective_name,
            budget=self.budget, seed=self.seed,
            duration_s=self.victim.duration_s, golden=golden,
            stats=SearchStats(workers=self.runner.workers),
        )
        stats = result.stats
        while True:
            trials = strategy.ask()
            if not trials:
                break
            feasible = [t for t in trials if self.feasible(t.candidate)]
            sims = self._evaluate_batch(feasible, stats.rounds) \
                if feasible else []
            sim_results = dict(zip((id(t) for t in feasible), sims))
            values: List[float] = []
            for trial in trials:
                index = len(result.evaluations)
                pruned = id(trial) not in sim_results
                failed = (not pruned) and sim_results[id(trial)] is None
                if pruned or failed:
                    scores = unsimulated(trial.candidate,
                                         self.victim.duration_s,
                                         trial.fidelity)
                    if failed:
                        stats.failures += 1
                    else:
                        stats.pruned += 1
                else:
                    scores = score(trial.candidate,
                                   sim_results[id(trial)], golden,
                                   self.victim.duration_s, trial.fidelity,
                                   self.weights)
                    stats.simulations += 1
                value = self.objective(scores, self.weights)
                values.append(value)
                evaluation = Evaluation(
                    index=index, round=stats.rounds,
                    candidate=trial.candidate, fidelity=trial.fidelity,
                    scores=scores, objective=value, pruned=pruned,
                    failed=failed)
                result.evaluations.append(evaluation)
                stats.evaluations += 1
                if not pruned and not failed \
                        and trial.fidelity >= FULL_FIDELITY:
                    result.frontier.add(FrontierPoint(
                        damage=scores.damage,
                        detectability=float(scores.detections),
                        cost_j=scores.cost_j, index=index))
                self._emit(
                    ADVERSARY_CANDIDATE,
                    f"{self.victim.scheme} #{index} "
                    f"damage={scores.damage:.3f} det={scores.detections} "
                    f"cost={scores.cost_j:.3f}J"
                    f"{' pruned' if pruned else ''}"
                    f"{' failed' if failed else ''}",
                    t=float(index))
            strategy.tell(trials, values)
            stats.rounds += 1
            self._emit(
                ADVERSARY_ROUND,
                f"{self.victim.scheme} round {stats.rounds} "
                f"best={result.best_damage():.3f}",
                t=float(stats.rounds))
        stats.wall_time_s = time.perf_counter() - start
        return result


def search_defense(workload: str = "blink", scheme: str = "nvp",
                   duration_s: float = 0.05,
                   **kwargs) -> AdversaryResult:
    """One-shot convenience: search one (workload, scheme) victim."""
    victim = adversary_victim(workload=workload, scheme=scheme,
                              duration_s=duration_s)
    return AdversarySearch(victim, **kwargs).run()
