"""The ISR-timing attack axis: EMI bursts phase-locked to interrupt arrival.

Reactive firmware concentrates its work in interrupt handlers, so an
adversary who has profiled the victim's interrupt cadence doesn't sweep
burst timing blindly — it *locks* bursts to the handlers: every burst
sits at the same phase offset around an expected arrival.  The search
then runs over a much smaller, much sharper space: the usual physical
knobs (tone, power, standoff) plus just ``phase`` and ``width``.

:class:`IsrPhaseCandidate` carries the profiled arrival pattern as frozen
data, so candidates stay picklable, comparable, and replayable like any
:class:`~repro.adversary.space.AttackCandidate`; it duck-types the full
candidate protocol (``windows`` / ``attack_spec`` / ``path_spec`` /
``energy_j`` / ``to_dict``), so :class:`~repro.adversary.search.
AdversarySearch` and every strategy run over it unchanged — pass an
:class:`IsrPhaseSpace` as the ``space`` argument.

:func:`isr_attack_space` builds the space from a victim's own golden
trace (:func:`repro.periph.attack.isr_trace`): one stable-power iteration
is profiled, its arrivals tiled across the attack window at the profiled
iteration period — the cadence model an attacker builds from a bench
capture.  :func:`search_isr_defense` cross-evaluates NVP vs GECKO, each
scheme searched with a space profiled from its *own* binary (the
schemes' instrumentation shifts the cadence).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import random

from ..emi import AttackSchedule, EMISource, RemotePath
from ..energy.harvester import dbm_to_watts
from ..eval.campaign import AttackSpec, CampaignRunner, PathSpec
from ..periph.attack import MCU_CLOCK_HZ, isr_arrivals, isr_trace, \
    phase_locked_windows
from .search import AdversaryResult, AdversarySearch, adversary_victim
from .space import AdversaryError, Bounds

#: Burst count cap: tiling a short iteration over a long window can
#: produce thousands of arrivals; past this the schedule is clipped (the
#: attacker's transmitter duty-cycles out anyway).
MAX_ARRIVALS = 256

#: The searchable knobs.  ``phase`` and ``width`` are fractions of the
#: run window, re-bounded per space from the profiled interrupt period.
_PHYSICAL_KNOBS = ("freq_mhz", "tx_dbm", "distance_m")
_TIMING_KNOBS = ("phase", "width")


@dataclass(frozen=True)
class IsrPhaseCandidate:
    """One phase-locked attack: physical knobs + (phase, width) offsets.

    ``arrivals`` is the profiled interrupt-arrival pattern (fractions of
    the run window) — fixed per space, carried on the candidate so a
    serialized evaluation replays without the profiling run.
    """

    freq_mhz: float
    tx_dbm: float
    distance_m: float
    phase: float
    width: float
    arrivals: Tuple[float, ...] = ()

    # -- timeline ------------------------------------------------------
    def windows(self) -> Tuple[Tuple[float, float], ...]:
        """Merged (start, end) bursts around every expected arrival."""
        return phase_locked_windows(self.arrivals, self.phase, self.width)

    def airtime_frac(self) -> float:
        return sum(end - start for start, end in self.windows())

    def airtime_s(self, duration_s: float) -> float:
        return self.airtime_frac() * duration_s

    def energy_j(self, duration_s: float) -> float:
        return dbm_to_watts(self.tx_dbm) * self.airtime_s(duration_s)

    # -- encoding into the harness vocabulary --------------------------
    def source(self) -> EMISource:
        return EMISource(self.freq_mhz * 1e6, self.tx_dbm)

    def attack_spec(self) -> AttackSpec:
        return AttackSpec.bursts(self.windows(), freq_mhz=self.freq_mhz,
                                 tx_dbm=self.tx_dbm)

    def path_spec(self) -> PathSpec:
        return PathSpec.remote(distance_m=self.distance_m)

    def build(self, duration_s: float) -> Tuple[AttackSchedule, RemotePath]:
        schedule = AttackSchedule.from_intervals(
            [(a * duration_s, b * duration_s) for a, b in self.windows()],
            self.source())
        return schedule, RemotePath(distance_m=self.distance_m)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        data = {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}
        data["arrivals"] = list(self.arrivals)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "IsrPhaseCandidate":
        fields = {f.name for f in dataclasses.fields(cls)}
        kept = {k: v for k, v in data.items() if k in fields}
        kept["arrivals"] = tuple(kept.get("arrivals", ()))
        return cls(**kept)


@dataclass(frozen=True)
class IsrPhaseSpace:
    """Bounded phase-locked candidate space over a fixed arrival pattern.

    Implements the same protocol as :class:`~repro.adversary.space.
    AttackSpace` (``sample`` / ``clip`` / ``neighbor`` / ``aggressive`` /
    ``lattice``), so every search strategy runs over it unchanged.
    """

    arrivals: Tuple[float, ...]
    bounds: Mapping[str, Bounds]

    def __post_init__(self) -> None:
        if not self.arrivals:
            raise AdversaryError("isr phase space needs >= 1 arrival")
        want = set(_PHYSICAL_KNOBS) | set(_TIMING_KNOBS)
        got = set(self.bounds)
        if want != got:
            raise AdversaryError(
                f"isr phase space must bound exactly {sorted(want)}; "
                f"missing {sorted(want - got)}, extra {sorted(got - want)}")

    def _make(self, knobs: Dict[str, float]) -> IsrPhaseCandidate:
        return IsrPhaseCandidate(arrivals=self.arrivals, **knobs)

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> IsrPhaseCandidate:
        return self._make({name: bounds.sample(rng)
                           for name, bounds in self.bounds.items()})

    def clip(self, candidate: IsrPhaseCandidate) -> IsrPhaseCandidate:
        return self._make({name: bounds.clip(getattr(candidate, name))
                           for name, bounds in self.bounds.items()})

    def neighbor(self, candidate: IsrPhaseCandidate, rng: random.Random,
                 scale: float = 0.15) -> IsrPhaseCandidate:
        return self._make({
            name: bounds.neighbor(getattr(candidate, name), rng, scale)
            for name, bounds in self.bounds.items()})

    def aggressive(self, freq_mhz: float) -> IsrPhaseCandidate:
        """Max-damage prior at one tone: full power, closest standoff,
        widest burst, centered on the arrival itself."""
        return self.clip(self._make({
            "freq_mhz": freq_mhz,
            "tx_dbm": self.bounds["tx_dbm"].hi,
            "distance_m": self.bounds["distance_m"].lo,
            "phase": 0.0,
            "width": self.bounds["width"].hi,
        }))

    def lattice(self, n_freq: int,
                n_power: int = 1) -> List[IsrPhaseCandidate]:
        power = self.bounds["tx_dbm"]
        powers = [power.hi] if n_power == 1 \
            else list(reversed(power.grid(n_power)))
        out: List[IsrPhaseCandidate] = []
        for tx_dbm in powers:
            for freq in self.bounds["freq_mhz"].grid(n_freq):
                out.append(dataclasses.replace(self.aggressive(freq),
                                               tx_dbm=tx_dbm))
        return out


def isr_attack_space(linked, duration_s: float,
                     vector: Optional[int] = None,
                     clock_hz: float = MCU_CLOCK_HZ,
                     freq_bounds: Bounds = Bounds(5.0, 60.0),
                     power_bounds: Bounds = Bounds(10.0, 35.0),
                     distance_bounds: Bounds = Bounds(1.0, 10.0, log=True)
                     ) -> IsrPhaseSpace:
    """Build the phase-locked space from one golden trace of ``linked``.

    One stable-power iteration is profiled; its arrivals are tiled across
    the ``duration_s`` attack window at the iteration period (clipped to
    :data:`MAX_ARRIVALS` bursts).  Phase spans ± half the median
    inter-arrival gap; width spans up to one gap, so even the widest
    burst stays interrupt-scale rather than window-scale.
    """
    spans, total_cycles = isr_trace(linked)
    base = isr_arrivals(spans, total_cycles, vector=vector)
    if not base:
        raise AdversaryError(
            "golden trace delivered no interrupts"
            + (f" on vector {vector}" if vector is not None else ""))
    window_cycles = duration_s * clock_hz
    if window_cycles <= 0:
        raise AdversaryError("attack window must be positive")
    # Tile one iteration's arrival pattern across the whole window.
    period = total_cycles / window_cycles  # iteration length, as a fraction
    arrivals: List[float] = []
    tile = 0
    while len(arrivals) < MAX_ARRIVALS:
        offset = tile * period
        if offset >= 1.0:
            break
        for a in base:
            t = offset + a * period
            if t < 1.0 and len(arrivals) < MAX_ARRIVALS:
                arrivals.append(t)
        tile += 1
    gaps = sorted(b - a for a, b in zip(arrivals, arrivals[1:])) \
        or [period or 1.0]
    gap = max(gaps[len(gaps) // 2], 1e-9)
    return IsrPhaseSpace(
        arrivals=tuple(arrivals),
        bounds={
            "freq_mhz": freq_bounds,
            "tx_dbm": power_bounds,
            "distance_m": distance_bounds,
            "phase": Bounds(-gap / 2.0, gap / 2.0),
            "width": Bounds(gap / 16.0, gap),
        },
    )


def search_isr_defense(workload: str,
                       schemes: Tuple[str, ...] = ("nvp", "gecko"),
                       duration_s: float = 0.05,
                       strategy: str = "anneal",
                       budget: int = 16,
                       seed: int = 0,
                       batch: int = 4,
                       workers: int = 1,
                       runner: Optional[CampaignRunner] = None,
                       vector: Optional[int] = None,
                       **victim_overrides
                       ) -> Dict[str, AdversaryResult]:
    """NVP-vs-GECKO cross-evaluation on the ISR-timing axis.

    Each scheme is searched with a phase-locked space profiled from its
    *own* compiled binary — the schemes' instrumentation shifts interrupt
    cadence, and a realistic attacker profiles the deployed image.  The
    shared runner means both schemes compile once and reuse workers.
    """
    runner = runner or CampaignRunner(workers=workers)
    results: Dict[str, AdversaryResult] = {}
    for scheme in schemes:
        victim = adversary_victim(workload=workload, scheme=scheme,
                                  duration_s=duration_s,
                                  **victim_overrides)
        key = victim.compile_key()
        compiled = runner.compile_cache.get(key)
        if compiled is None:
            compiled = victim.compile()
            runner.compile_cache[key] = compiled
        space = isr_attack_space(compiled.linked, duration_s,
                                 vector=vector)
        search = AdversarySearch(victim, space=space, strategy=strategy,
                                 budget=budget, seed=seed, batch=batch,
                                 runner=runner)
        results[scheme] = search.run()
    return results


def render_isr_comparison(results: Mapping[str, AdversaryResult]) -> str:
    """A compact NVP-vs-GECKO table over the ISR-timing frontier."""
    lines = [f"{'scheme':8s} {'worst damage':>12s} {'detections':>10s} "
             f"{'cost (J)':>9s}  worst attack"]
    for scheme, result in results.items():
        worst = result.worst_case()
        if worst is None:
            lines.append(f"{scheme:8s} {'-':>12s} {'-':>10s} {'-':>9s}  "
                         f"(no damaging attack found)")
            continue
        c = worst.candidate
        lines.append(
            f"{scheme:8s} {worst.scores.damage:12.3f} "
            f"{worst.scores.detections:10d} "
            f"{worst.scores.cost_j:9.3f}  "
            f"{c.freq_mhz:.1f} MHz @ {c.tx_dbm:.1f} dBm, "
            f"phase {c.phase:+.2e}, width {c.width:.2e}")
    return "\n".join(lines)
