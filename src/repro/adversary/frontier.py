"""Pareto frontiers over (damage, detectability, attacker cost).

One search against one defense yields many scored attacks; the attacker
only cares about the *non-dominated* ones — maximum damage for a given
visibility and energy budget.  :class:`ParetoFrontier` maintains that
set, and frontier-vs-frontier comparison is how robustness is stated:
defense A is **more robust** than defense B when every attack achievable
against A is weakly dominated (from the attacker's perspective) by one
achievable against B, and A's worst case is strictly less damaging —
i.e. the adversary always does at least as well attacking B.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated attack: the three Pareto axes plus a back-pointer
    (``index``) into the search's evaluation list."""

    damage: float
    detectability: float
    cost_j: float
    index: int

    def dominates(self, other: "FrontierPoint") -> bool:
        """Attacker-perspective dominance: at least as much damage for at
        most the visibility and energy, strictly better somewhere."""
        if self.damage < other.damage \
                or self.detectability > other.detectability \
                or self.cost_j > other.cost_j:
            return False
        return (self.damage > other.damage
                or self.detectability < other.detectability
                or self.cost_j < other.cost_j)

    def weakly_dominates(self, other: "FrontierPoint") -> bool:
        return (self.damage >= other.damage
                and self.detectability <= other.detectability
                and self.cost_j <= other.cost_j)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FrontierPoint":
        return cls(**{f.name: data[f.name] for f in fields(cls)})


class ParetoFrontier:
    """The non-dominated attack set against one defense.

    Points are kept sorted by (-damage, detectability, cost, index) so
    iteration order — and with it every serialized frontier and
    fingerprint — is deterministic regardless of insertion order.
    """

    def __init__(self, points: Optional[List[FrontierPoint]] = None) -> None:
        self.points: List[FrontierPoint] = []
        for point in points or []:
            self.add(point)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    # ------------------------------------------------------------------
    def add(self, point: FrontierPoint) -> bool:
        """Insert if non-dominated; evict anything the point dominates.

        Returns True when the point made the frontier.
        """
        for existing in self.points:
            if existing.weakly_dominates(point):
                return False
        self.points = [p for p in self.points if not point.dominates(p)]
        self.points.append(point)
        self.points.sort(key=lambda p: (-p.damage, p.detectability,
                                        p.cost_j, p.index))
        return True

    def worst_case(self) -> Optional[FrontierPoint]:
        """The maximum-damage attack (ties: stealthiest, then cheapest)."""
        return self.points[0] if self.points else None

    # -- frontier-vs-frontier comparisons ------------------------------
    def attacker_dominated_by(self, other: "ParetoFrontier") -> bool:
        """True when every point here is weakly dominated by some point of
        ``other`` — the adversary always does at least as well on the
        other frontier.  An empty frontier is trivially dominated."""
        return all(any(theirs.weakly_dominates(ours) for theirs in other)
                   for ours in self)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"points": [p.to_dict() for p in self.points]}

    @classmethod
    def from_dict(cls, data: dict) -> "ParetoFrontier":
        frontier = cls()
        # Already non-dominated and sorted, but re-adding re-verifies both.
        for point in data["points"]:
            frontier.add(FrontierPoint.from_dict(point))
        return frontier


def more_robust(defense: ParetoFrontier, reference: ParetoFrontier) -> bool:
    """Is ``defense`` strictly more robust than ``reference``?

    Every attack achievable against ``defense`` must be weakly dominated
    by one achievable against ``reference``, and the worst case against
    ``defense`` must be strictly less damaging.  A defense with an empty
    frontier (no feasible attack found) is more robust than any reference
    with a damaging worst case.
    """
    if not defense.attacker_dominated_by(reference):
        return False
    ours, theirs = defense.worst_case(), reference.worst_case()
    if theirs is None:
        return False
    if ours is None:
        return theirs.damage > 0.0
    return ours.damage < theirs.damage
