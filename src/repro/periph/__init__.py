"""Deterministic peripheral models and the interrupt controller.

Reactive intermittent firmware — the glucose-monitor class of
applications — spends its life in interrupt handlers, so a faithful
reproduction needs interrupts that (a) arrive deterministically, (b)
survive snapshot/restore and power failure, and (c) behave identically
under the interpreter and the threaded backend.  This package provides:

* :class:`~repro.periph.hub.PeriphHub` — the interrupt controller plus
  four cycle-driven peripheral models (timer, sensor ADC, GPIO edge
  detector, DMA engine), all of whose state lives in linker-allocated
  NVM words so checkpoint/rollback machinery sees it for free;
* :mod:`~repro.periph.attack` — golden-trace extraction and the
  ISR-aware attack vocabulary: EMI bursts phase-locked to interrupt
  arrival, and fault injections targeted inside handler bodies.
"""

from .attack import (
    MCU_CLOCK_HZ,
    PeriphError,
    isr_arrivals,
    isr_fault_specs,
    isr_trace,
    phase_locked_windows,
    spans_seconds,
)
from .hub import IsrSpan, PeriphHub

__all__ = [
    "IsrSpan", "MCU_CLOCK_HZ", "PeriphError", "PeriphHub", "isr_arrivals",
    "isr_fault_specs", "isr_trace", "phase_locked_windows", "spans_seconds",
]
